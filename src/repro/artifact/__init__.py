"""Content-addressed run bundles: executions as portable artifacts.

A *run bundle* captures everything semantically observable about one
execution -- the per-node delivery logs (ordered stable tags carrying
group numbers and annotation fields), the fingerprint, the measured
window headroom, and (for production runs) the partial recording that
makes the bundle replayable -- in one canonically-serialized JSON file
whose name is its own SHA-256.  Two bundles with the same hash are the
same execution; two bundles with different hashes can be handed to the
first-divergence engine (:mod:`repro.diff`) to find out exactly where
they part ways.

Environment metadata (python version, platform) rides along *outside*
the hashed section: the whole point of Theorem 1 is that the execution
is a function of the workload, not of the machine, so the CI parity job
asserts byte-equal hashes across interpreter versions.
"""

from repro.artifact.bundle import (
    BUNDLE_FORMAT,
    RunBundle,
    canonical_json,
    environment_metadata,
)

__all__ = [
    "BUNDLE_FORMAT",
    "RunBundle",
    "canonical_json",
    "environment_metadata",
]
