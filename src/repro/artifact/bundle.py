"""The :class:`RunBundle` file format.

Layout of a ``.run`` file (JSON, one object)::

    {
      "format": "defined-run-bundle-v1",
      "run": { ... },          # the hashed, semantic section
      "env": { ... },          # informational only, outside the hash
      "sha256": "<hex>"        # sha256 over canonical_json(run)
    }

The ``run`` section holds only execution *semantics*: role (production
or replay), mode, the context that reproduces the cell (scenario, seed,
jitter, window), the fingerprint, the per-node delivery logs, counters,
headroom stats, and -- when available -- the embedded partial recording.
Wall-clock times, hostnames and interpreter details are banned from it:
they would split hashes between identical executions.

``canonical_json`` is the one serialization the hash is defined over:
sorted keys, compact separators, ASCII-escaped.  Anything that
round-trips through it is hash-stable across interpreters.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.recorder import Recording

BUNDLE_FORMAT = "defined-run-bundle-v1"

#: Filename hash prefix length: 12 hex chars (48 bits) is plenty for a
#: directory of archived divergences and keeps names readable.
NAME_HASH_CHARS = 12


def canonical_json(value: Any) -> str:
    """The canonical serialization the content address is defined over."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def environment_metadata() -> Dict[str, str]:
    """Informational environment stamp (never hashed)."""
    return {
        "python": platform.python_version(),
        "implementation": sys.implementation.name,
        "platform": platform.platform(),
    }


@dataclass
class RunBundle:
    """One execution as a content-addressed artifact."""

    run: Dict[str, Any]
    env: Dict[str, str] = field(default_factory=environment_metadata)

    # -- construction ---------------------------------------------------
    @classmethod
    def from_production(
        cls,
        result,
        context: Optional[Dict[str, Any]] = None,
        include_recording: bool = True,
    ) -> "RunBundle":
        """Bundle a :class:`~repro.harness.ProductionResult`.

        ``context`` is the cell identity that reproduces the run
        (scenario, seed, jitter_us, window_us, ...); it is hashed, so two
        runs of different cells never collide even when their logs agree.
        """
        run: Dict[str, Any] = {
            "role": "production",
            "mode": result.mode,
            "context": dict(context or {}),
            "fingerprint": result.fingerprint,
            "logs": {node: list(log) for node, log in result.logs.items()},
            "late_deliveries": result.late_deliveries,
            "rollbacks": result.rollbacks,
            "headroom": (
                result.headroom.to_dict() if result.headroom is not None else None
            ),
            "recording": (
                json.loads(result.recording.to_json())
                if include_recording and result.recording is not None
                else None
            ),
        }
        return cls(run=run)

    @classmethod
    def from_replay(
        cls, result, context: Optional[Dict[str, Any]] = None
    ) -> "RunBundle":
        """Bundle a :class:`~repro.harness.ReplayResult`."""
        run: Dict[str, Any] = {
            "role": "replay",
            "mode": "defined-ls",
            "context": dict(context or {}),
            "fingerprint": result.fingerprint,
            "logs": {node: list(log) for node, log in result.logs.items()},
            "late_deliveries": 0,
            "rollbacks": 0,
            "headroom": None,
            "recording": None,
        }
        return cls(run=run)

    # -- identity -------------------------------------------------------
    @property
    def sha256(self) -> str:
        """The content address: sha256 over the canonical ``run`` section."""
        return hashlib.sha256(canonical_json(self.run).encode("ascii")).hexdigest()

    @property
    def fingerprint(self) -> str:
        return self.run.get("fingerprint", "")

    @property
    def role(self) -> str:
        return self.run.get("role", "unknown")

    def logs(self) -> Dict[str, Tuple[str, ...]]:
        return {
            node: tuple(entries) for node, entries in self.run["logs"].items()
        }

    def recording(self) -> Optional[Recording]:
        """The embedded partial recording (production bundles only)."""
        doc = self.run.get("recording")
        if doc is None:
            return None
        return Recording.from_json(json.dumps(doc))

    def default_name(self) -> str:
        """Content-addressed filename: ``<role>-<sha12>.run``."""
        return f"{self.role}-{self.sha256[:NAME_HASH_CHARS]}.run"

    # -- (de)serialization ----------------------------------------------
    def to_json(self) -> str:
        doc = {
            "format": BUNDLE_FORMAT,
            "run": self.run,
            "env": self.env,
            "sha256": self.sha256,
        }
        return json.dumps(doc, indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunBundle":
        doc = json.loads(text)
        if doc.get("format") != BUNDLE_FORMAT:
            raise ValueError("not a DEFINED run bundle")
        bundle = cls(run=doc["run"], env=doc.get("env", {}))
        stored = doc.get("sha256")
        if stored is not None and stored != bundle.sha256:
            raise ValueError(
                f"run bundle corrupt: stored sha256 {stored[:12]}... does "
                f"not match content {bundle.sha256[:12]}..."
            )
        return bundle

    def save(self, path: str) -> str:
        """Write the bundle; a directory path gets the content-addressed
        default name.  Returns the file path written."""
        if os.path.isdir(path):
            path = os.path.join(path, self.default_name())
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
        return path

    @classmethod
    def load(cls, path: str) -> "RunBundle":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
