"""Shared-memory result streaming for very large sweep grids.

The original :class:`~repro.sweep.SweepRunner` moved every finished
:class:`~repro.sweep.CellResult` back to the parent as a pickled object
inside a :class:`concurrent.futures.Future`.  That is fine for dozens of
cells, but on 1000+-cell grids it keeps a future (plus queue buffers and
a pickle) alive per cell in the parent, and results only become visible
at the executor's pace, not the workers'.

This module replaces that hop with a bounded **shared-memory ring** of
fixed-width records:

* the parent creates one :class:`multiprocessing.shared_memory`
  segment sized ``capacity x RECORD_SIZE`` plus a small header
  (write/read cursors, capacity, a writers-closed flag);
* each worker, having finished a cell, serializes the result's payload
  into one :data:`RECORD` struct and appends it under a shared lock --
  blocking briefly (with a timeout) when the ring is full;
* the parent polls the cursors and copies completed records out in
  write order -- which is cell *completion* order -- so progress is
  live and the parent's transport state never exceeds the ring.

The record intentionally carries only the cell *index* plus the result
payload: the parent already holds the grid, so scenario names (which can
be arbitrarily long compositions) never need to fit a fixed-width field.

Concurrency notes: writers serialize record-write + cursor-bump under
the lock; the parent is the only writer of the read cursor and only
advances it after copying records out.  Cross-process visibility of the
parent's unlocked cursor loads rides on the lock's acquire/release
barriers on the writer side plus 8-byte-aligned cursor stores; cursors
are monotonically increasing, so a stale read only delays consumption by
one poll interval, never corrupts it.
"""

from __future__ import annotations

import struct
import time
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

from repro.core.history import WindowHeadroomStats

#: Header layout: write cursor, read cursor (both monotonically
#: increasing record counts), capacity, record size, writers-closed flag.
_HEADER = struct.Struct("<QQIIB")
#: Records start at a fixed offset so header and data never share a
#: cache line.
_DATA_OFFSET = 64

_FP_BYTES = 64     # sha256 hexdigest length (see repro.core.fingerprint)
_ERROR_BYTES = 256

#: Per-node headroom slots riding the fixed-width record: the *worst*
#: offenders by max deficit (then node id, for determinism).  A cell
#: with more late nodes than slots streams only the worst ones -- the
#: envelope's per-node suggestions cover exactly the nodes that would
#: otherwise inflate the global recommendation, and everything that did
#: not make a slot is clean enough for the global number.
NODE_HEADROOM_SLOTS = 8
_NODE_ID_BYTES = 24
#: node id + late count + unmeasured count + window + max/p50/p90/p99.
_NODE_SLOT = struct.Struct(f"<{_NODE_ID_BYTES}sIIQQQQQ")

#: One streamed cell result: index + flags + counters + fingerprints +
#: (truncated) error text.  ``<`` keeps the layout packed and
#: platform-independent.
RECORD = struct.Struct(
    "<I"                 # cell index in the submitted grid
    "B"                  # flags (see _F_* bits)
    "B"                  # fingerprint length
    "B"                  # replay fingerprint length
    "x"                  # pad
    "H"                  # error length (post-truncation, bytes)
    "B"                  # per-node headroom slots used
    "x"                  # pad
    "I"                  # late deliveries
    "I"                  # rollbacks
    "Q"                  # deliveries
    "Q"                  # recording bytes
    "d"                  # wall seconds
    "Q"                  # headroom: effective window (us)
    "I"                  # headroom: late count
    "I"                  # headroom: unmeasured count
    "Q"                  # headroom: max deficit (us)
    "Q"                  # headroom: p50 deficit (us)
    "Q"                  # headroom: p90 deficit (us)
    "Q"                  # headroom: p99 deficit (us)
    f"{NODE_HEADROOM_SLOTS * _NODE_SLOT.size}s"  # per-node headroom slots
    f"{_FP_BYTES}s"      # fingerprint (utf-8 hex)
    f"{_FP_BYTES}s"      # replay fingerprint (utf-8 hex)
    f"{_ERROR_BYTES}s"   # error message (utf-8, truncated)
)
RECORD_SIZE = RECORD.size

_F_ERROR = 1 << 0
_F_INVARIANT_PRESENT = 1 << 1
_F_INVARIANT_OK = 1 << 2
_F_EXPECTED_PRESENT = 1 << 3
_F_EXPECTED_OK = 1 << 4
_F_RECORDING_PRESENT = 1 << 5
_F_REPLAY_PRESENT = 1 << 6
_F_HEADROOM_PRESENT = 1 << 7


def _fp_bytes(fingerprint: Optional[str], field: str) -> bytes:
    if not fingerprint:
        return b""
    raw = fingerprint.encode("utf-8")
    if len(raw) > _FP_BYTES:
        raise ValueError(
            f"{field} is {len(raw)} bytes, exceeding the fixed-width "
            f"record field ({_FP_BYTES}); widen _FP_BYTES in "
            "repro.sweep_stream"
        )
    return raw


def _encode_node_headroom(node_headroom) -> Tuple[int, bytes]:
    """Pack the worst :data:`NODE_HEADROOM_SLOTS` nodes into slot bytes."""
    if not node_headroom:
        return 0, b"\x00" * (NODE_HEADROOM_SLOTS * _NODE_SLOT.size)
    worst = sorted(
        node_headroom.items(),
        key=lambda item: (-item[1].max_deficit_us, -item[1].late_count, item[0]),
    )[:NODE_HEADROOM_SLOTS]
    chunks = []
    for node_id, hr in worst:
        raw_id = node_id.encode("utf-8")[:_NODE_ID_BYTES]
        chunks.append(_NODE_SLOT.pack(
            raw_id, hr.late_count, hr.unmeasured_count, hr.window_us,
            hr.max_deficit_us, hr.p50_deficit_us, hr.p90_deficit_us,
            hr.p99_deficit_us,
        ))
    block = b"".join(chunks)
    block += b"\x00" * (NODE_HEADROOM_SLOTS * _NODE_SLOT.size - len(block))
    return len(worst), block


def _decode_node_headroom(count: int, block: bytes) -> Dict[str, WindowHeadroomStats]:
    out: Dict[str, WindowHeadroomStats] = {}
    for i in range(count):
        raw_id, late, unmeasured, window, mx, p50, p90, p99 = (
            _NODE_SLOT.unpack_from(block, i * _NODE_SLOT.size)
        )
        node_id = raw_id.rstrip(b"\x00").decode("utf-8", errors="replace")
        out[node_id] = WindowHeadroomStats(
            window_us=window,
            late_count=late,
            max_deficit_us=mx,
            p50_deficit_us=p50,
            p90_deficit_us=p90,
            p99_deficit_us=p99,
            unmeasured_count=unmeasured,
        )
    return out


def encode_result(index: int, result) -> bytes:
    """Pack a :class:`~repro.sweep.CellResult` payload into one record."""
    flags = 0
    error = b""
    if result.error is not None:
        flags |= _F_ERROR
        error = result.error.encode("utf-8", errors="replace")
        if len(error) > _ERROR_BYTES:
            error = error[: _ERROR_BYTES - 3] + b"..."
    if result.invariant_ok is not None:
        flags |= _F_INVARIANT_PRESENT
        if result.invariant_ok:
            flags |= _F_INVARIANT_OK
    if result.expected_ok is not None:
        flags |= _F_EXPECTED_PRESENT
        if result.expected_ok:
            flags |= _F_EXPECTED_OK
    if result.recording_bytes is not None:
        flags |= _F_RECORDING_PRESENT
    headroom = getattr(result, "headroom", None)
    if headroom is not None:
        flags |= _F_HEADROOM_PRESENT
    node_count, node_block = _encode_node_headroom(
        getattr(result, "node_headroom", None)
    )
    fingerprint = _fp_bytes(result.fingerprint, "fingerprint")
    replay = b""
    if result.replay_fingerprint is not None:
        flags |= _F_REPLAY_PRESENT
        replay = _fp_bytes(result.replay_fingerprint, "replay fingerprint")
    return RECORD.pack(
        index,
        flags,
        len(fingerprint),
        len(replay),
        len(error),
        node_count,
        result.late_deliveries,
        result.rollbacks,
        result.deliveries,
        result.recording_bytes or 0,
        result.wall_seconds,
        headroom.window_us if headroom is not None else 0,
        headroom.late_count if headroom is not None else 0,
        headroom.unmeasured_count if headroom is not None else 0,
        headroom.max_deficit_us if headroom is not None else 0,
        headroom.p50_deficit_us if headroom is not None else 0,
        headroom.p90_deficit_us if headroom is not None else 0,
        headroom.p99_deficit_us if headroom is not None else 0,
        node_block,
        fingerprint,
        replay,
        error,
    )


def decode_record(raw: bytes) -> Tuple[int, Dict]:
    """Unpack one record into ``(cell_index, CellResult field dict)``."""
    (
        index,
        flags,
        fp_len,
        replay_len,
        error_len,
        node_count,
        late,
        rollbacks,
        deliveries,
        recording_bytes,
        wall_seconds,
        hr_window,
        hr_late,
        hr_unmeasured,
        hr_max,
        hr_p50,
        hr_p90,
        hr_p99,
        node_block,
        fingerprint,
        replay,
        error,
    ) = RECORD.unpack(raw)
    headroom = (
        WindowHeadroomStats(
            window_us=hr_window,
            late_count=hr_late,
            max_deficit_us=hr_max,
            p50_deficit_us=hr_p50,
            p90_deficit_us=hr_p90,
            p99_deficit_us=hr_p99,
            unmeasured_count=hr_unmeasured,
        )
        if flags & _F_HEADROOM_PRESENT
        else None
    )
    return index, {
        "fingerprint": fingerprint[:fp_len].decode("utf-8"),
        "replay_fingerprint": (
            replay[:replay_len].decode("utf-8")
            if flags & _F_REPLAY_PRESENT
            else None
        ),
        "invariant_ok": (
            bool(flags & _F_INVARIANT_OK)
            if flags & _F_INVARIANT_PRESENT
            else None
        ),
        "expected_ok": (
            bool(flags & _F_EXPECTED_OK)
            if flags & _F_EXPECTED_PRESENT
            else None
        ),
        "late_deliveries": late,
        "rollbacks": rollbacks,
        "deliveries": deliveries,
        "recording_bytes": (
            recording_bytes if flags & _F_RECORDING_PRESENT else None
        ),
        "headroom": headroom,
        "node_headroom": _decode_node_headroom(node_count, node_block) or None,
        "wall_seconds": wall_seconds,
        "error": (
            error[:error_len].decode("utf-8", errors="replace")
            if flags & _F_ERROR
            else None
        ),
    }


#: Adaptive ring sizing (see :func:`adaptive_ring_capacity`): never fewer
#: slots than this, however wide the record grows.
RING_CAPACITY_FLOOR = 16
#: ...and never more shared memory than this for the ring's data area,
#: however large the grid -- the ring exists to keep the parent's
#: transport state flat, so its own footprint must stay bounded too.
RING_CAPACITY_BUDGET_BYTES = 1 << 20


def adaptive_ring_capacity(grid_cells: int, record_size: int = RECORD_SIZE) -> int:
    """Ring slots for a grid of ``grid_cells`` results of ``record_size``.

    The parent drains continuously, so the ring only needs to absorb
    bursts: a grid never needs more slots than cells, small grids get a
    ring exactly their size (min 2 -- the ring machinery needs a slot to
    wrap), and large grids are clamped by a fixed shared-memory budget
    so a 100k-cell sweep does not allocate a 50 MB segment.  The floor
    guarantees burst absorption even if the record ever grows past the
    budget-implied slot count.
    """
    if grid_cells < 1:
        raise ValueError("grid must have at least one cell")
    if record_size < 1:
        raise ValueError("record size must be positive")
    ceiling = max(RING_CAPACITY_FLOOR, RING_CAPACITY_BUDGET_BYTES // record_size)
    return max(2, min(grid_cells, ceiling))


class RingClosedError(RuntimeError):
    """The consumer marked the ring closed; writers must stop."""


class ResultPushError(RuntimeError):
    """A finished cell's record could not be pushed into the ring.

    This is a *transport* failure carrying the worker's completed work:
    the cell executed to a result, the result encoded into a record, and
    only the final hop -- the ring append -- failed (full ring with a
    stalled consumer, or a ring closed under the writer).  The encoded
    record rides the exception back through the worker's future, so the
    parent can :func:`decode_record` it and recover the result without
    re-executing the cell.

    Raised by :func:`run_streamed_cell`; classified retryable by
    :mod:`repro.supervise.classify` (the error text embeds the original
    ring failure, whose markers the classifier knows).
    """

    def __init__(self, index: int, record: bytes, cause: str) -> None:
        super().__init__(
            f"result ring push failed for cell {index}: {cause}"
        )
        self.index = index
        self.record = record
        self.cause = cause

    def __reduce__(self):
        # exceptions pickle via args by default; our signature differs,
        # and this exception must cross the process boundary intact
        return (ResultPushError, (self.index, self.record, self.cause))


class ResultRing:
    """A bounded multi-producer, single-consumer ring of fixed-width
    records in shared memory.

    The parent :meth:`create`\\ s it and :meth:`pop_all`\\ s records;
    workers :meth:`attach` by name and :meth:`push`.  All producers
    share one :class:`multiprocessing.Lock`; the consumer takes the lock
    only to read/advance cursors, never while copying record bytes.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        capacity: int,
        lock,
        owner: bool,
    ) -> None:
        self.shm = shm
        self.capacity = capacity
        self.lock = lock
        self._owner = owner

    # -- construction --------------------------------------------------
    @classmethod
    def create(cls, capacity: int, lock) -> "ResultRing":
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        size = _DATA_OFFSET + capacity * RECORD_SIZE
        shm = shared_memory.SharedMemory(create=True, size=size)
        _HEADER.pack_into(shm.buf, 0, 0, 0, capacity, RECORD_SIZE, 0)
        return cls(shm, capacity, lock, owner=True)

    @classmethod
    def attach(cls, name: str, lock) -> "ResultRing":
        # Attaching re-registers the segment with the resource tracker
        # (bpo-38119), but pool workers inherit the parent's tracker
        # process, whose cache is a set -- the duplicate registration is
        # idempotent and the parent's unlink clears it exactly once.
        shm = shared_memory.SharedMemory(name=name)
        _w, _r, capacity, record_size, _closed = _HEADER.unpack_from(shm.buf, 0)
        if record_size != RECORD_SIZE:
            raise ValueError(
                f"ring record size {record_size} != expected {RECORD_SIZE} "
                "(parent and worker run different code?)"
            )
        return cls(shm, capacity, lock, owner=False)

    @property
    def name(self) -> str:
        return self.shm.name

    # -- header accessors ----------------------------------------------
    def _cursors(self) -> Tuple[int, int, bool]:
        write, read, _cap, _rs, closed = _HEADER.unpack_from(self.shm.buf, 0)
        return write, read, bool(closed)

    def _set_write(self, value: int) -> None:
        struct.pack_into("<Q", self.shm.buf, 0, value)

    def _set_read(self, value: int) -> None:
        struct.pack_into("<Q", self.shm.buf, 8, value)

    def close_for_writers(self) -> None:
        """Tell producers to stop (consumer is abandoning the ring)."""
        struct.pack_into("<B", self.shm.buf, 24, 1)

    # -- producer side -------------------------------------------------
    def push(
        self,
        record: bytes,
        poll_interval: float = 0.001,
        timeout: float = 30.0,
    ) -> None:
        """Append one record, blocking while the ring is full.

        ``timeout`` bounds the wait so a dead consumer turns into a
        visible error in the worker instead of a silent hang.
        """
        if len(record) != RECORD_SIZE:
            raise ValueError(
                f"record is {len(record)} bytes, expected {RECORD_SIZE}"
            )
        deadline = time.monotonic() + timeout
        while True:
            # acquire with a bound: a sibling worker hard-killed *inside*
            # its critical section leaves a non-robust POSIX semaphore
            # locked forever; a bounded wait turns that deadlock into a
            # visible TimeoutError in this worker
            if self.lock.acquire(timeout=poll_interval * 50):
                try:
                    write, read, closed = self._cursors()
                    if closed:
                        raise RingClosedError("result ring closed by consumer")
                    if write - read < self.capacity:
                        offset = _DATA_OFFSET + (write % self.capacity) * RECORD_SIZE
                        self.shm.buf[offset:offset + RECORD_SIZE] = record
                        self._set_write(write + 1)
                        return
                finally:
                    self.lock.release()
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    "result ring full and consumer not draining "
                    f"(capacity {self.capacity})"
                )
            time.sleep(poll_interval)

    # -- consumer side -------------------------------------------------
    def pop_all(self, lock_timeout: float = 1.0) -> List[bytes]:
        """Copy out every completed record, in write (completion) order.

        Lock acquisition is bounded: if a hard-killed worker took the
        (non-robust) lock to its grave, the consumer must degrade to
        "no records this poll" -- the sweep then finishes via the
        broken-pool path -- rather than deadlock forever.
        """
        if not self.lock.acquire(timeout=lock_timeout):
            return []
        try:
            write, read, _closed = self._cursors()
        finally:
            self.lock.release()
        if write == read:
            return []
        out = []
        for cursor in range(read, write):
            offset = _DATA_OFFSET + (cursor % self.capacity) * RECORD_SIZE
            out.append(bytes(self.shm.buf[offset:offset + RECORD_SIZE]))
        # only advance the cursor once the bytes are copied: a slot is
        # reusable by writers the moment read moves past it
        if self.lock.acquire(timeout=lock_timeout):
            try:
                self._set_read(write)
            finally:
                self.lock.release()
        else:
            # writers are wedged anyway (lock lost with a dead worker);
            # advancing without the lock is safe for the data -- only
            # the parent writes the read cursor -- and lets any live
            # readers of the header see progress
            self._set_read(write)
        return out

    # -- lifecycle ------------------------------------------------------
    def destroy(self) -> None:
        """Close, and unlink if this end owns the segment."""
        try:
            self.shm.close()
        finally:
            if self._owner:
                try:
                    self.shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass


# ----------------------------------------------------------------------
# worker-process plumbing (module-level so it pickles by reference)
# ----------------------------------------------------------------------

_WORKER_RING: Optional[ResultRing] = None


def stream_worker_init(ring_name: str, lock, capacity: int) -> None:
    """Process-pool initializer: attach this worker to the result ring."""
    global _WORKER_RING
    ring = ResultRing.attach(ring_name, lock)
    if ring.capacity != capacity:
        raise ValueError("ring capacity mismatch between parent and worker")
    _WORKER_RING = ring


def run_streamed_cell(index: int, cell) -> int:
    """Execute one grid cell and stream its result record to the parent.

    The returned index rides the (tiny) future purely as an ack; the
    payload travels through the ring.  A push failure -- ring full past
    the timeout, or closed by the consumer -- raises
    :class:`ResultPushError` carrying the encoded record, so the
    finished work survives the transport failure.
    """
    from repro.sweep import run_cell

    result = run_cell(cell)
    assert _WORKER_RING is not None, "worker not attached to a result ring"
    record = encode_result(index, result)
    try:
        _WORKER_RING.push(record)
    except (TimeoutError, RingClosedError) as exc:
        raise ResultPushError(
            index, record, f"{type(exc).__name__}: {exc}"
        ) from exc
    return index
