"""Machine-readable performance baselines (``repro bench``).

Measures the three throughput numbers the perf trajectory tracks and
emits them as JSON, so every PR from here on can be compared against a
committed baseline (``BENCH_5.json``) instead of anecdotes:

* **checkpoint**: per-op cost of ``DefinedShim._take_checkpoint`` on a
  settled flap-storm@40 network, under both snapshot mechanisms.  This
  is the per-delivery hot path; the COW store must beat the deepcopy
  fallback by a wide margin (the acceptance bar is 5x; in practice it is
  an order of magnitude or two).
* **run**: end-to-end wall time of a rollback-heavy production cell
  under both mechanisms, with the fingerprints cross-checked -- the
  differential guarantee and the speedup in one number.
* **sweep**: grid cells per second through :class:`~repro.sweep.SweepRunner`
  (the unit every envelope/fuzz/sweep campaign is billed in).
* **fingerprint**: per-delivery identity-tag + digest cost
  (``fingerprint_us``), cached interned tags (the shipping path) vs
  per-delivery repr rebuild (the pre-interning reference the
  differential grid pins against).  The acceptance bar is 2x on this
  metric; end-to-end wall is dominated by SPF and the checkpoint write
  barrier, so the **run** number moves only a few percent.

Wall-clock numbers are host-dependent: the committed baseline records
the machine that produced it, and the CI comparison *warns* (rather than
fails) beyond the tolerance, because runner hardware drifts.
"""

from __future__ import annotations

import json
import platform
import statistics
import sys
import time
from typing import Any, Dict, List, Optional

from repro.harness import build_ospf_network, run_production
from repro.simnet.engine import SECOND


def _settled_defined_network(scenario_name: str, seed: int, snapshots: str,
                             warm_events: int = 2):
    """A DEFINED-RB network with populated daemon state: booted, beaconed,
    and driven through the scenario's first few external events."""
    from repro.sweep import get_scenario

    scenario = get_scenario(scenario_name)
    graph = scenario.topology(seed)
    schedule = scenario.schedule(graph, seed)
    daemon_factory = scenario.daemon(graph) if scenario.daemon else None
    net, _recorder, beacons, _ = build_ospf_network(
        graph,
        mode="defined",
        seed=seed,
        jitter_us=scenario.jitter_us,
        ordering=scenario.ordering,
        daemon_factory=daemon_factory,
        snapshots=snapshots,
    )
    assert beacons is not None
    beacons.start()
    net.start()
    for event in schedule.sorted()[:warm_events]:
        net.run(until_us=event.time_us)
        net.apply_event(event)
    net.run(until_us=net.sim.now + SECOND)
    return net, beacons


def checkpoint_bench(
    scenario: str = "flap-storm@40", seed: int = 1, iters: int = 300
) -> Dict[str, Any]:
    """Per-op ``_take_checkpoint`` cost, COW vs deepcopy, on ``scenario``."""
    out: Dict[str, Any] = {"scenario": scenario, "seed": seed, "iters": iters}
    for snapshots in ("cow", "deepcopy"):
        net, beacons = _settled_defined_network(scenario, seed, snapshots)
        shim = max(
            (node.stack for node in net.nodes.values()),
            key=lambda stack: len(stack.delivery_log),
        )
        samples: List[float] = []
        for _ in range(iters):
            t0 = time.perf_counter_ns()
            shim._take_checkpoint()
            samples.append((time.perf_counter_ns() - t0) / 1000.0)
        beacons.stop()
        out[snapshots] = {
            "mean_us": round(statistics.fmean(samples), 3),
            "median_us": round(statistics.median(samples), 3),
            "p90_us": round(sorted(samples)[int(0.9 * len(samples))], 3),
            "state_bytes": shim._store.live_bytes() if shim._store else None,
            # per-namespace COW journal traffic on the busiest node:
            # which tables actually pay the write barrier
            "dirty_keys": (
                {ns: n for ns, n in shim._store.dirty_key_counts().items() if n}
                if shim._store else None
            ),
        }
    out["speedup"] = round(
        out["deepcopy"]["median_us"] / max(out["cow"]["median_us"], 1e-9), 2
    )
    return out


def run_bench(scenario: str = "flap-storm", seed: int = 1) -> Dict[str, Any]:
    """End-to-end production wall time under both snapshot mechanisms,
    with the differential fingerprint check folded in."""
    from repro.sweep import get_scenario

    sc = get_scenario(scenario)
    graph = sc.topology(seed)
    schedule = sc.schedule(graph, seed)
    daemon_factory = sc.daemon(graph) if sc.daemon else None
    out: Dict[str, Any] = {"scenario": scenario, "seed": seed}
    fingerprints = {}
    for snapshots in ("cow", "deepcopy"):
        result = run_production(
            graph,
            schedule,
            mode="defined",
            seed=seed,
            jitter_us=sc.jitter_us,
            ordering=sc.ordering,
            daemon_factory=daemon_factory,
            measure_convergence=False,
            settle_us=sc.settle_us,
            tail_us=sc.tail_us,
            snapshots=snapshots,
        )
        fingerprints[snapshots] = result.fingerprint
        out[snapshots] = {
            "wall_s": round(result.wall_seconds, 3),
            "rollbacks": result.rollbacks,
            "deliveries": sum(len(log) for log in result.logs.values()),
        }
    out["speedup"] = round(
        out["deepcopy"]["wall_s"] / max(out["cow"]["wall_s"], 1e-9), 2
    )
    out["fingerprints_match"] = fingerprints["cow"] == fingerprints["deepcopy"]
    return out


def fingerprint_bench(
    scenario: str = "flap-storm@40", seed: int = 1, repeats: int = 20
) -> Dict[str, Any]:
    """Per-delivery tag + digest cost, cached vs repr rebuild.

    Harvests the history entries of a settled DEFINED-RB network, then
    replays the fingerprint pipeline over them under both settings of
    the tag cache: the cached pass serves interned tags and folds the
    per-node :class:`~repro.core.fingerprint.DeliveryLog` digests; the
    rebuild pass re-renders ``repr(payload)`` on every delivery and
    hashes a plain list at the end (the pre-PR-8 behaviour).  Both
    passes must agree on the fingerprint bit-for-bit.
    """
    from repro.core.fingerprint import DeliveryLog, execution_fingerprint
    from repro.core.history import set_tag_cache

    # drive deeper into the schedule than the checkpoint bench does: a
    # handful of flap cycles leaves ~500 retained deliveries with real
    # LSA payloads, enough to amortize the per-node combine overhead out
    # of the per-delivery number.
    net, beacons = _settled_defined_network(scenario, seed, "cow",
                                            warm_events=12)
    entries = {
        node_id: list(node.stack.history.entries)
        for node_id, node in net.nodes.items()
    }
    beacons.stop()
    deliveries = sum(len(node_entries) for node_entries in entries.values())

    def cached_pass() -> str:
        logs: Dict[str, DeliveryLog] = {}
        for node_id, node_entries in entries.items():
            log = DeliveryLog()
            for entry in node_entries:
                log.append(entry.tag())
            logs[node_id] = log
        return execution_fingerprint(logs)

    def rebuild_pass() -> str:
        logs: Dict[str, List[str]] = {}
        for node_id, node_entries in entries.items():
            logs[node_id] = [entry.tag() for entry in node_entries]
        return execution_fingerprint(logs)

    out: Dict[str, Any] = {
        "scenario": scenario, "seed": seed,
        "deliveries": deliveries, "repeats": repeats,
    }
    fingerprints: Dict[str, str] = {}
    old = set_tag_cache(True)
    try:
        cached_pass()  # warm every cached_tag before timing
        for label, passer, cache_on in (
            ("cached", cached_pass, True),
            ("rebuild", rebuild_pass, False),
        ):
            set_tag_cache(cache_on)
            samples: List[float] = []
            for _ in range(repeats):
                t0 = time.perf_counter_ns()
                fingerprints[label] = passer()
                samples.append((time.perf_counter_ns() - t0) / 1000.0)
            per_pass = statistics.median(samples)
            out[label] = {
                "fingerprint_us": round(per_pass / max(deliveries, 1), 4),
                "pass_ms": round(per_pass / 1000.0, 3),
            }
    finally:
        set_tag_cache(old)
    out["speedup"] = round(
        out["rebuild"]["fingerprint_us"]
        / max(out["cached"]["fingerprint_us"], 1e-9), 2
    )
    out["fingerprints_match"] = fingerprints["cached"] == fingerprints["rebuild"]
    return out


def sweep_bench(
    scenarios=("flap-storm", "partition"), seeds=(1,), workers: int = 1
) -> Dict[str, Any]:
    """Grid throughput in cells/second (defined mode, Theorem-1 checks on)."""
    from repro.sweep import SweepRunner

    runner = SweepRunner(
        scenarios=list(scenarios),
        seeds=list(seeds),
        modes=("defined",),
        workers=workers,
    )
    report = runner.run()
    cells = len(report.cells)
    return {
        "scenarios": list(scenarios),
        "cells": cells,
        "ok": report.ok(),
        "wall_s": round(report.wall_seconds, 3),
        "cells_per_s": round(cells / max(report.wall_seconds, 1e-9), 3),
    }


def collect(quick: bool = False) -> Dict[str, Any]:
    """Run the whole bench suite and return the JSON-able report."""
    report: Dict[str, Any] = {
        "bench_format": 1,
        "env": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "checkpoint": checkpoint_bench(
            scenario="flap-storm@20" if quick else "flap-storm@40",
            iters=100 if quick else 300,
        ),
        "run": run_bench(),
        "sweep": sweep_bench(),
        "fingerprint": fingerprint_bench(
            scenario="flap-storm@20" if quick else "flap-storm@40",
            repeats=5 if quick else 20,
        ),
    }
    return report


#: (json-path, human name) of the numbers the regression gate watches.
#: Higher-is-better metrics are marked so the comparison signs flip.
WATCHED = (
    (("checkpoint", "cow", "median_us"), "checkpoint cow median_us", False),
    (("checkpoint", "speedup"), "checkpoint speedup", True),
    (("run", "cow", "wall_s"), "cow run wall_s", False),
    (("sweep", "cells_per_s"), "sweep cells_per_s", True),
    # absent from baselines older than bench_format 1 + PR 8;
    # compare() skips watched metrics the baseline does not carry.
    (("fingerprint", "cached", "fingerprint_us"),
     "fingerprint cached per-delivery us", False),
    (("fingerprint", "speedup"), "fingerprint tag-cache speedup", True),
)


def _dig(doc: Dict[str, Any], path) -> Optional[float]:
    node: Any = doc
    for part in path:
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def compare(current: Dict[str, Any], baseline: Dict[str, Any],
            tolerance: float = 0.25) -> List[str]:
    """Regressions of watched metrics beyond ``tolerance``, as messages.

    Lower-is-better metrics regress when current > baseline * (1 + tol);
    higher-is-better ones when current < baseline * (1 - tol).
    """
    problems: List[str] = []
    for path, label, higher_is_better in WATCHED:
        base = _dig(baseline, path)
        cur = _dig(current, path)
        if base is None or cur is None or base == 0:
            continue
        if higher_is_better:
            if cur < base * (1 - tolerance):
                problems.append(
                    f"{label} regressed: {cur} vs baseline {base} "
                    f"(-{(1 - cur / base) * 100:.0f}%)"
                )
        elif cur > base * (1 + tolerance):
            problems.append(
                f"{label} regressed: {cur} vs baseline {base} "
                f"(+{(cur / base - 1) * 100:.0f}%)"
            )
    return problems


def main_bench(json_out: Optional[str], baseline_path: Optional[str],
               tolerance: float, quick: bool) -> int:
    """CLI body for ``repro bench`` (kept here so it is importable)."""
    report = collect(quick=quick)
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if json_out:
        with open(json_out, "w") as fh:
            fh.write(text + "\n")
        print(f"\nbench report written to {json_out}", file=sys.stderr)
    if baseline_path:
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        problems = compare(report, baseline, tolerance=tolerance)
        for problem in problems:
            # "::warning::" renders as an annotation on GitHub runners and
            # is harmless noise elsewhere; bench hosts vary, so regressions
            # warn rather than fail.
            print(f"::warning::bench regression vs {baseline_path}: {problem}")
        if not problems:
            print(f"bench within {tolerance:.0%} of {baseline_path}",
                  file=sys.stderr)
    return 0
