"""Experiment drivers: one entry point per evaluation activity.

The benchmark suite (and the examples) are thin wrappers around this
module.  Three layers:

* :func:`build_ospf_network` / :func:`attach_*` -- wire a topology, a
  daemon and one of the four stacks (vanilla / DEFINED-RB / DDOS /
  comprehensive-logging);
* :func:`run_production` -- drive an external-event workload through a
  production network, measuring per-event convergence times and
  per-node/per-event packet overheads (Figures 6a/6b, 8a/8b/8d), and
  capturing the DEFINED partial recording;
* :func:`run_ls_replay` -- replay a recording through a DEFINED-LS
  debugging network, measuring per-step response times (Figures 6c/8c)
  and returning the replay fingerprint for Theorem-1 checks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.baselines.ddos import DdosStack
from repro.baselines.logging_replay import ComprehensiveLog, LoggingStack
from repro.core.checkpoint import (
    CheckpointStrategy,
    baseline_processing_model,
    strategy_by_name,
)
from repro.core.groups import BeaconService
from repro.core.history import WindowHeadroomStats
from repro.core.lockstep import LockstepCoordinator
from repro.core.ordering import OrderingFunction, make_ordering
from repro.core.recorder import Recorder, Recording
from repro.core.shim import DefinedShim
from repro.routing.ospf import OspfDaemon
from repro.routing.spf import expected_distances
from repro.simnet.engine import SECOND
from repro.simnet.events import EventSchedule, ExternalEvent
from repro.simnet.network import Network
from repro.simnet.node import Node, VanillaStack
from repro.topology import TopologyGraph, to_network

#: Convergence polling resolution.  Simulated control planes converge in
#: tens of milliseconds (failure detection is instantaneous here), so the
#: resolution must be fine enough to expose DEFINED-RB's rollback tail.
SLICE_US = 10_000

#: Per-event convergence deadline before we declare non-convergence.
CONVERGENCE_TIMEOUT_US = 30 * SECOND


@dataclass
class ProductionResult:
    """Everything a production-network run produces."""

    mode: str
    network: Network
    recording: Optional[Recording]
    fingerprint: str
    logs: Dict[str, Tuple[str, ...]]
    convergence_times_us: List[int] = field(default_factory=list)
    unconverged_events: int = 0
    packets_per_node_per_event: List[int] = field(default_factory=list)
    late_deliveries: int = 0
    rollbacks: int = 0
    #: Slack-deficit distribution pooled across every DEFINED-RB node
    #: (``defined`` mode only): the measured history-window headroom.
    headroom: Optional[WindowHeadroomStats] = None
    #: Per-node headroom for the nodes that actually went late: the
    #: envelope mapper uses these to recommend per-node windows instead
    #: of letting one noisy node inflate everyone's.
    node_headroom: Dict[str, WindowHeadroomStats] = field(default_factory=dict)
    comprehensive_log: Optional[ComprehensiveLog] = None
    wall_seconds: float = 0.0

    def processing_samples(self) -> List[int]:
        return self.network.run_stats.all_processing_samples()

    def rollback_samples(self) -> List[int]:
        return self.network.run_stats.all_rollback_samples()


def ospf_daemon_factory(
    graph: TopologyGraph,
    hello_interval_units: int = 4,
    retransmit_units: int = 4,
    forward_delay_units: int = 0,
) -> Callable:
    """Daemon factory closing over the topology's static adjacency."""
    adjacency = {n: sorted(peers) for n, peers in graph.adjacency().items()}

    def factory(node_id: str, stack) -> OspfDaemon:
        return OspfDaemon(
            node_id,
            stack,
            neighbors=adjacency[node_id],
            hello_interval_units=hello_interval_units,
            retransmit_units=retransmit_units,
            forward_delay_units=forward_delay_units,
        )

    return factory


def build_ospf_network(
    graph: TopologyGraph,
    mode: str = "defined",
    seed: int = 0,
    jitter_us: int = 200,
    ordering: str = "OO",
    strategy: str = "MI",
    daemon_factory: Optional[Callable] = None,
    window_us: Optional[int] = None,
    snapshots: str = "cow",
    tuning=None,
) -> Tuple[Network, Optional[Recorder], Optional[BeaconService], Optional[ComprehensiveLog]]:
    """Instantiate a production network in one of the four modes.

    Modes: ``vanilla`` (uninstrumented baseline), ``defined``
    (DEFINED-RB), ``ddos`` (stop-and-wait baseline), ``logging``
    (vanilla + comprehensive recording).  ``snapshots`` selects the
    checkpoint *mechanism* for DEFINED-RB shims (``cow``: store-version
    snapshots; ``deepcopy``: the full-copy fallback); ``strategy``
    selects the checkpoint *cost model* (MI/TF/PF/TM).  ``tuning`` is an
    optional :class:`repro.simnet.faults.NetworkTuning` (chaos DSL clock
    skew / link faults), installed before the mode-specific lossless
    checks so gray-failure windows are rejected for instrumented modes.
    """
    net = to_network(graph, seed=seed, jitter_us=jitter_us)
    net.install_tuning(tuning)
    factory = daemon_factory or ospf_daemon_factory(graph)
    recorder: Optional[Recorder] = None
    beacons: Optional[BeaconService] = None
    comp_log: Optional[ComprehensiveLog] = None

    if mode == "vanilla":
        net.attach_vanilla(factory, timer_jitter_us=20_000)
        for node in net.nodes.values():
            assert isinstance(node.stack, VanillaStack)
            node.stack.proc_model = baseline_processing_model
    elif mode == "logging":
        comp_log = ComprehensiveLog()

        def logging_stack(node: Node) -> LoggingStack:
            stack = LoggingStack(node, comp_log, timer_jitter_us=20_000)
            stack.proc_model = baseline_processing_model
            return stack

        net.attach(logging_stack, factory)
    elif mode == "defined":
        net.assert_lossless("DEFINED-RB")
        recorder = Recorder()
        order_fn: OrderingFunction = make_ordering(ordering)
        strat: CheckpointStrategy = strategy_by_name(strategy)

        def defined_stack(node: Node) -> DefinedShim:
            return DefinedShim(
                node,
                ordering=make_ordering(ordering),
                strategy=strategy_by_name(strategy),
                recorder=recorder,
                window_us=window_us,
                snapshots=snapshots,
            )

        del order_fn, strat  # factories build per-node instances
        net.attach(defined_stack, factory)
        beacons = BeaconService(net, recorder=recorder)
        recorder.group_provider = lambda: beacons.group
        net.event_tap = lambda event: recorder.record_topology(event)
        # the recording must carry the shims' per-hop estimate and the
        # measured link-delay configuration to the replay
        any_stack = next(iter(net.nodes.values())).stack
        recorder.hop_cost_us = any_stack.hop_cost_us
        recorder.spill_bound_us = any_stack.spill_bound_us
        for link in net.links.values():
            recorder.delay_estimates[f"{link.a}>{link.b}"] = link.avg_delay_us(link.a)
            recorder.delay_estimates[f"{link.b}>{link.a}"] = link.avg_delay_us(link.b)
    elif mode == "ddos":
        net.assert_lossless("stop-and-wait determinism")
        order = make_ordering(ordering)

        def ddos_stack(node: Node) -> DdosStack:
            return DdosStack(node, ordering=order)

        net.attach(ddos_stack, factory)
        beacons = BeaconService(net)
        for node in net.nodes.values():
            node.stack.group_provider = lambda: beacons.group
    else:
        raise ValueError(f"unknown mode {mode!r}")
    return net, recorder, beacons, comp_log


def _expected_routing(net: Network, graph: TopologyGraph) -> Dict[str, Dict[str, int]]:
    """Ground-truth SPF distances for every live router (computed once per
    topology change; polling then only compares dicts)."""
    link_state = {}
    for a, b, _d in graph.edges:
        link = net.link_between(a, b)
        link_state[(a, b)] = bool(link and link.up)
    nodes = [n for n in graph.nodes if net.nodes[n].up]
    return {
        node_id: expected_distances(link_state, nodes, node_id)
        for node_id in nodes
    }


def _network_converged(net: Network, expected: Dict[str, Dict[str, int]]) -> bool:
    """Every live router's SPF distances equal ground truth."""
    for node_id, want in expected.items():
        daemon = net.nodes[node_id].daemon
        if daemon is None:
            continue
        if daemon.routing_distances() != want:
            return False
    return True


def run_production(
    graph: TopologyGraph,
    schedule: EventSchedule,
    mode: str = "defined",
    seed: int = 0,
    jitter_us: int = 200,
    ordering: str = "OO",
    strategy: str = "MI",
    daemon_factory: Optional[Callable] = None,
    measure_convergence: bool = True,
    settle_us: int = 3 * SECOND,
    tail_us: int = 2 * SECOND,
    window_us: Optional[int] = None,
    snapshots: str = "cow",
    tuning=None,
) -> ProductionResult:
    """Drive one workload through one production network.

    Events are applied at their scheduled times; after each event the
    network is polled (at :data:`SLICE_US` resolution) until it
    re-converges, yielding the Figure 6b/8b/8d convergence samples and the
    Figure 6a/8a per-node packet deltas.
    """
    wall_start = time.perf_counter()
    net, recorder, beacons, comp_log = build_ospf_network(
        graph,
        mode=mode,
        seed=seed,
        jitter_us=jitter_us,
        ordering=ordering,
        strategy=strategy,
        daemon_factory=daemon_factory,
        window_us=window_us,
        snapshots=snapshots,
        tuning=tuning,
    )
    if beacons is not None:
        beacons.start()
    # Simultaneous cold boot: all origins send "at roughly the same
    # time", which is precisely the regime the delay-sensitive ordering
    # is optimized for (Section 2.2).  Staggering boots would make boot
    # LSAs systematically late relative to their d_i estimates and turn
    # the initial flood into a rollback storm.
    net.start()
    events = schedule.sorted()
    if events:
        settle_us = min(settle_us, events[0].time_us)
    net.run(until_us=settle_us)

    convergence: List[int] = []
    unconverged = 0
    packet_deltas: List[int] = []
    for i, event in enumerate(events):
        if event.time_us < net.sim.now:
            raise ValueError(
                f"event at {event.time_us}us is in the past (now={net.sim.now})"
            )
        net.run(until_us=event.time_us)
        before = {
            nid: net.run_stats.node(nid).total_packets() for nid in net.node_ids()
        }
        net.apply_event(event)
        next_deadline = (
            events[i + 1].time_us if i + 1 < len(events) else event.time_us + CONVERGENCE_TIMEOUT_US
        )
        deadline = min(event.time_us + CONVERGENCE_TIMEOUT_US, next_deadline)
        if measure_convergence:
            expected = _expected_routing(net, graph)
            converged_at = None
            while net.sim.now < deadline:
                net.run(until_us=min(net.sim.now + SLICE_US, deadline))
                if _network_converged(net, expected):
                    converged_at = net.sim.now
                    break
            if converged_at is None:
                unconverged += 1
            else:
                convergence.append(converged_at - event.time_us)
        for nid in net.node_ids():
            packet_deltas.append(
                net.run_stats.node(nid).total_packets() - before[nid]
            )

    net.run(until_us=net.sim.now + tail_us)
    if beacons is not None:
        beacons.stop()
        if mode == "defined":
            # Drain to full quiescence: with delivery jitter above the
            # beacon interval, a one-interval grace period leaves
            # horizon-group traffic in flight when the sim halts -- the
            # replay (which always quiesces every group) would then
            # deliver messages production's truncated log never saw.
            # Once beaconing stops, virtual time is frozen (no timers
            # fire), so the remaining cascades are finite.
            net.run()
        else:
            # let in-flight beacons and any final rollbacks settle
            net.run(until_us=net.sim.now + net.time_unit_us)

    late = 0
    rollbacks = net.run_stats.total_rollbacks()
    effective_window: Optional[int] = None
    deficit_samples: List[int] = []
    unmeasured = 0
    node_headroom: Dict[str, WindowHeadroomStats] = {}
    for node_id in sorted(net.nodes):
        stack = net.nodes[node_id].stack
        if isinstance(stack, (DefinedShim, DdosStack)):
            late += stack.late_deliveries
        if isinstance(stack, DefinedShim):
            deficit_samples.extend(stack.deficit_samples_us)
            unmeasured += stack.deficit_unmeasured
            w = stack.window_us()
            effective_window = w if effective_window is None else max(effective_window, w)
            if stack.late_deliveries:
                node_headroom[node_id] = stack.headroom_stats()
    headroom = (
        WindowHeadroomStats.from_samples(
            effective_window, deficit_samples, unmeasured_count=unmeasured
        )
        if effective_window is not None
        else None
    )

    logs = net.delivery_logs()
    return ProductionResult(
        mode=mode,
        network=net,
        recording=recorder.recording() if recorder is not None else None,
        fingerprint=net.execution_fingerprint(),
        logs=logs,
        convergence_times_us=convergence,
        unconverged_events=unconverged,
        packets_per_node_per_event=packet_deltas,
        late_deliveries=late,
        rollbacks=rollbacks,
        headroom=headroom,
        node_headroom=node_headroom,
        comprehensive_log=comp_log,
        wall_seconds=time.perf_counter() - wall_start,
    )


@dataclass
class ReplayResult:
    """Everything a DEFINED-LS replay produces."""

    coordinator: LockstepCoordinator
    network: Network
    fingerprint: str
    logs: Dict[str, Tuple[str, ...]]
    step_times_us: List[int]
    cycles: int
    wall_seconds: float = 0.0


def run_ls_replay(
    graph: TopologyGraph,
    recording: Recording,
    ordering: str = "OO",
    seed: int = 1_000,
    jitter_us: int = 200,
    daemon_factory: Optional[Callable] = None,
    max_cycles: int = 10_000_000,
    snapshots: str = "cow",
) -> ReplayResult:
    """Replay a partial recording in a lockstep debugging network."""
    wall_start = time.perf_counter()
    net = to_network(graph, seed=seed, jitter_us=jitter_us)
    coordinator = LockstepCoordinator(net, recording, ordering=make_ordering(ordering))
    coordinator.attach(
        daemon_factory or ospf_daemon_factory(graph), snapshots=snapshots
    )
    coordinator.start()
    cycles = coordinator.run_all(max_cycles=max_cycles)
    logs = net.delivery_logs()
    return ReplayResult(
        coordinator=coordinator,
        network=net,
        fingerprint=net.execution_fingerprint(),
        logs=logs,
        step_times_us=list(net.run_stats.step_times_us),
        cycles=cycles,
        wall_seconds=time.perf_counter() - wall_start,
    )


def flappable_links(graph: TopologyGraph) -> List[Tuple[str, str]]:
    """Links whose endpoints both keep another adjacency when it drops --
    the eligibility rule shared by every flap-workload generator."""
    degree: Dict[str, int] = {}
    for a, b, _d in graph.edges:
        degree[a] = degree.get(a, 0) + 1
        degree[b] = degree.get(b, 0) + 1
    return [(a, b) for a, b, _d in graph.edges if degree[a] >= 2 and degree[b] >= 2]


def burst_schedule(
    graph: TopologyGraph,
    events_per_second: int,
    n_events: int,
    start_us: int = 2 * SECOND,
    seed: int = 0,
) -> EventSchedule:
    """A fixed-rate link-flap burst for the Figure 8d event-rate sweep."""
    import random as _random

    rng = _random.Random(f"burst|{graph.name}|{events_per_second}|{seed}")
    eligible = flappable_links(graph)
    if not eligible:
        raise ValueError("no flappable links")
    gap = SECOND // events_per_second
    schedule = EventSchedule()
    down: set = set()
    t = start_us
    for _ in range(n_events):
        flappable_up = [lk for lk in eligible if lk not in down]
        if flappable_up and (not down or rng.random() < 0.5):
            link = flappable_up[rng.randrange(len(flappable_up))]
            schedule.add(ExternalEvent(time_us=t, kind="link_down", target=link))
            down.add(link)
        else:
            link = sorted(down)[rng.randrange(len(down))]
            schedule.add(ExternalEvent(time_us=t, kind="link_up", target=link))
            down.discard(link)
        t += gap
    # repair everything so the network can converge after the burst
    for link in sorted(down):
        schedule.add(ExternalEvent(time_us=t, kind="link_up", target=link))
        t += gap
    return schedule


def measure_burst_convergence(
    graph: TopologyGraph,
    events_per_second: int,
    n_events: int = 10,
    mode: str = "defined",
    seed: int = 0,
    **kwargs,
) -> int:
    """Figure 8d's metric: time from the last event of a fixed-rate burst
    until the whole network has re-converged."""
    schedule = burst_schedule(graph, events_per_second, n_events, seed=seed)
    net, recorder, beacons, _ = build_ospf_network(
        graph, mode=mode, seed=seed, **kwargs
    )
    if beacons is not None:
        beacons.start()
    net.start()
    net.run(until_us=2 * SECOND)
    last_t = 0
    for event in schedule.sorted():
        net.run(until_us=event.time_us)
        net.apply_event(event)
        last_t = event.time_us
    expected = _expected_routing(net, graph)
    deadline = last_t + CONVERGENCE_TIMEOUT_US
    while net.sim.now < deadline:
        net.run(until_us=min(net.sim.now + SLICE_US, deadline))
        if _network_converged(net, expected):
            if beacons is not None:
                beacons.stop()
            return net.sim.now - last_t
    if beacons is not None:
        beacons.stop()
    return CONVERGENCE_TIMEOUT_US
