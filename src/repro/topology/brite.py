"""BRITE-style synthetic topology generators.

The paper's scalability study (Section 5.3) uses graphs from the BRITE
topology generator at sizes 20–80.  BRITE's two classic router-level
models are reimplemented here:

* :func:`waxman` -- nodes uniform on a plane, edge probability decaying
  exponentially with distance (Waxman 1988):
  ``P(u,v) = alpha * exp(-d(u,v) / (beta * L))``;
* :func:`barabasi_albert` -- incremental growth with preferential
  attachment (the heavy-tailed-degree model).

Both guarantee connectivity (Waxman adds nearest-neighbor patch links if
the random draw leaves components) and embed link delays geographically,
as BRITE does.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Tuple

from repro.topology import TopologyGraph

US_PER_KM = 5.0
PLANE_KM = (3_000.0, 3_000.0)


def _delay_us(a: Tuple[float, float], b: Tuple[float, float]) -> int:
    """Geographic delay plus a deterministic fiber-detour term keyed on the
    endpoints, keeping link delays distinct (see
    :func:`repro.topology.rocketfuel._delay_us` for why that matters)."""
    detour = random.Random(f"detour|{a}|{b}").randrange(200, 900)
    return max(300, int(math.hypot(a[0] - b[0], a[1] - b[1]) * US_PER_KM)) + detour


def _place(n: int, rng: random.Random) -> Tuple[List[str], Dict[str, Tuple[float, float]]]:
    nodes = [f"n{i:03d}" for i in range(n)]
    coords = {
        node: (rng.uniform(0, PLANE_KM[0]), rng.uniform(0, PLANE_KM[1]))
        for node in nodes
    }
    return nodes, coords


def _connect_components(
    nodes: List[str],
    coords: Dict[str, Tuple[float, float]],
    edges: List[Tuple[str, str, int]],
) -> None:
    """Patch disconnected components with their closest cross-pair link."""
    parent = {n: n for n in nodes}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        parent[find(a)] = find(b)

    for a, b, _d in edges:
        union(a, b)
    while True:
        roots = {find(n) for n in nodes}
        if len(roots) == 1:
            break
        components: Dict[str, List[str]] = {}
        for n in nodes:
            components.setdefault(find(n), []).append(n)
        comp_list = sorted(components.values(), key=len, reverse=True)
        main, rest = comp_list[0], comp_list[1]
        best = min(
            ((a, b) for a in main for b in rest),
            key=lambda ab: (_delay_us(coords[ab[0]], coords[ab[1]]), ab),
        )
        edges.append((best[0], best[1], _delay_us(coords[best[0]], coords[best[1]])))
        union(best[0], best[1])


def waxman(
    n: int,
    alpha: float = 0.15,
    beta: float = 0.2,
    seed: int = 0,
) -> TopologyGraph:
    """Waxman random graph with geographic delays.

    BRITE's defaults are alpha=0.15, beta=0.2; larger alpha means denser,
    larger beta reduces the distance penalty.
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    rng = random.Random(f"waxman|{n}|{alpha}|{beta}|{seed}")
    nodes, coords = _place(n, rng)
    scale = math.hypot(*PLANE_KM)
    edges: List[Tuple[str, str, int]] = []
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            d = math.hypot(
                coords[a][0] - coords[b][0], coords[a][1] - coords[b][1]
            )
            if rng.random() < alpha * math.exp(-d / (beta * scale)):
                edges.append((a, b, _delay_us(coords[a], coords[b])))
    _connect_components(nodes, coords, edges)
    return TopologyGraph(name=f"waxman-{n}", nodes=nodes, edges=edges)


def waxman_family(
    tag: str,
    n: int,
    alpha: float = 0.15,
    beta: float = 0.2,
    seed_base: int = 1_000,
):
    """A seed-indexed family of ``n``-node Waxman graphs.

    Returns a factory mapping a cell seed to a fresh topology whose name
    embeds both the family tag and the seed, so RNG streams keyed on the
    graph name (the fault-injection generators') never collide across
    families, sizes, or seeds.  This is the canonical topology factory
    for size-parameterized sweep scenarios: ``scenario.sized(n)`` re-bases
    every scenario family onto ``waxman_family(tag, n)``.
    """
    if n < 2:
        raise ValueError("need at least two nodes")

    def factory(seed: int) -> TopologyGraph:
        graph = waxman(n, alpha=alpha, beta=beta, seed=seed_base + seed)
        return TopologyGraph(
            name=f"{tag}-{graph.name}-s{seed}",
            nodes=graph.nodes,
            edges=graph.edges,
        )

    return factory


def barabasi_albert(n: int, m: int = 2, seed: int = 0) -> TopologyGraph:
    """Barabási–Albert preferential attachment with geographic delays.

    Starts from an ``m+1``-clique; each subsequent node attaches to ``m``
    distinct existing nodes sampled with probability proportional to
    degree.
    """
    if n < m + 1:
        raise ValueError(f"need at least m+1={m + 1} nodes")
    rng = random.Random(f"ba|{n}|{m}|{seed}")
    nodes, coords = _place(n, rng)
    edges: List[Tuple[str, str, int]] = []
    degree: Dict[str, int] = {node: 0 for node in nodes}

    def add_edge(a: str, b: str) -> None:
        lo, hi = (a, b) if a <= b else (b, a)
        edges.append((lo, hi, _delay_us(coords[a], coords[b])))
        degree[a] += 1
        degree[b] += 1

    seedset = nodes[: m + 1]
    for i, a in enumerate(seedset):
        for b in seedset[i + 1:]:
            add_edge(a, b)
    for i in range(m + 1, n):
        node = nodes[i]
        existing = nodes[:i]
        chosen: List[str] = []
        weights = [degree[x] + 1 for x in existing]
        while len(chosen) < m:
            pick = rng.choices(existing, weights=weights, k=1)[0]
            if pick not in chosen:
                chosen.append(pick)
        for other in chosen:
            add_edge(node, other)
    graph = TopologyGraph(name=f"ba-{n}", nodes=nodes, edges=edges)
    assert graph.is_connected()
    return graph
