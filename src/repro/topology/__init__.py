"""Topologies and workload traces for the evaluation.

The paper evaluates on Rocketfuel PoP-level topologies (Sprintlink,
Ebone, Level3) replaying OSPF events from a Tier-1 ISP trace, and scales
with BRITE-generated synthetic graphs.  We have none of those proprietary
artifacts, so this package synthesizes faithful equivalents (see
DESIGN.md's substitution table):

* :mod:`repro.topology.rocketfuel` -- deterministic synthetic PoP graphs
  with the published node counts and geographic delay structure;
* :mod:`repro.topology.brite` -- Waxman and Barabási–Albert generators
  (the two classic BRITE models);
* :mod:`repro.topology.traces` -- a Tier-1-like OSPF event trace
  synthesizer (651 link events, diurnal flap clustering) plus mapping
  onto arbitrary topologies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.simnet.link import DelayModel
from repro.simnet.network import DEFAULT_TIME_UNIT_US, Network


@dataclass
class TopologyGraph:
    """A generated topology: node ids plus delay-weighted edges."""

    name: str
    nodes: List[str] = field(default_factory=list)
    edges: List[Tuple[str, str, int]] = field(default_factory=list)  # (a, b, delay_us)

    def node_count(self) -> int:
        return len(self.nodes)

    def edge_count(self) -> int:
        return len(self.edges)

    def adjacency(self):
        adj = {n: set() for n in self.nodes}
        for a, b, _d in self.edges:
            adj[a].add(b)
            adj[b].add(a)
        return adj

    def is_connected(self) -> bool:
        if not self.nodes:
            return True
        adj = self.adjacency()
        seen = {self.nodes[0]}
        frontier = [self.nodes[0]]
        while frontier:
            u = frontier.pop()
            for v in adj[u]:
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return len(seen) == len(self.nodes)

    def avg_degree(self) -> float:
        if not self.nodes:
            return 0.0
        return 2 * len(self.edges) / len(self.nodes)


def to_network(
    graph: TopologyGraph,
    seed: int = 0,
    jitter_us: int = 500,
    loss: float = 0.0,
    time_unit_us: int = DEFAULT_TIME_UNIT_US,
) -> Network:
    """Instantiate a simulated :class:`Network` from a topology."""
    net = Network(seed=seed, time_unit_us=time_unit_us)
    for node_id in graph.nodes:
        net.add_node(node_id)
    for a, b, delay_us in graph.edges:
        net.add_link(
            a, b, DelayModel(base_us=delay_us, jitter_us=jitter_us, loss=loss)
        )
    return net


from repro.topology.brite import barabasi_albert, waxman, waxman_family  # noqa: E402
from repro.topology.rocketfuel import rocketfuel_topology  # noqa: E402
from repro.topology.traces import synth_tier1_trace  # noqa: E402

__all__ = [
    "TopologyGraph",
    "barabasi_albert",
    "rocketfuel_topology",
    "synth_tier1_trace",
    "to_network",
    "waxman",
    "waxman_family",
]
