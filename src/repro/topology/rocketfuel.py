"""Synthetic Rocketfuel-style PoP-level topologies.

The paper uses Rocketfuel's measured PoP-level maps: Sprintlink
(43 PoPs), Ebone (25) and Level3 (52).  The measured files are not
redistributable here, so we synthesize graphs with the same node counts
and the structural properties that matter to the experiments:

* geographic embedding: PoPs placed in clustered metro regions on a
  continental-scale plane; link propagation delays follow distance at
  ~5 µs/km (speed of light in fiber);
* a connected backbone: a distance-greedy spanning tree (new PoPs attach
  to their nearest established PoP, as networks are actually built) plus
  shortcut links biased toward well-connected hubs, giving the
  heavy-tailed PoP degree distribution Rocketfuel reports;
* average PoP degree in the 2.5–3.5 range typical of the measured maps.

Everything is driven by a name-derived seed, so ``rocketfuel_topology
("sprintlink")`` is byte-identical on every machine -- determinism all
the way down, as this repository requires.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Tuple

from repro.topology import TopologyGraph

#: Published PoP counts for the maps the paper evaluates on.
POP_COUNTS = {
    "sprintlink": 43,
    "ebone": 25,
    "level3": 52,
}

#: Propagation delay per kilometre of fiber, in microseconds.
US_PER_KM = 5.0

#: Plane dimensions, roughly continental-US scale, in kilometres.
PLANE_KM = (4_500.0, 2_800.0)


def _distance_km(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


def _delay_us(a: Tuple[float, float], b: Tuple[float, float], pair: str = "") -> int:
    """Propagation delay with a deterministic per-link fiber detour.

    Real fiber never follows the geodesic: two co-located PoPs still
    differ by hundreds of microseconds depending on conduit routing.  The
    detour term (a keyed hash of the endpoint pair) keeps link delays
    *distinct*, which matters downstream: DEFINED's delay-sensitive
    ordering predicts arrival order from these values, and near-tie
    delays would make misorderings (hence rollbacks) systematic rather
    than rare.
    """
    detour = random.Random(f"detour|{pair}").randrange(200, 900)
    return max(300, int(_distance_km(a, b) * US_PER_KM)) + detour


def rocketfuel_topology(
    name: str,
    extra_degree: float = 1.4,
    seed: int = 0,
) -> TopologyGraph:
    """Build the named synthetic PoP topology.

    ``extra_degree`` controls shortcut density: the expected number of
    non-tree links per PoP (total average degree is about
    ``2 + extra_degree``).
    """
    key = name.lower()
    if key not in POP_COUNTS:
        raise ValueError(
            f"unknown Rocketfuel map {name!r}; expected one of {sorted(POP_COUNTS)}"
        )
    n = POP_COUNTS[key]
    rng = random.Random(f"rocketfuel|{key}|{seed}")

    # --- metro clusters ------------------------------------------------
    n_clusters = max(4, n // 6)
    centers = [
        (rng.uniform(0, PLANE_KM[0]), rng.uniform(0, PLANE_KM[1]))
        for _ in range(n_clusters)
    ]
    coords: Dict[str, Tuple[float, float]] = {}
    nodes: List[str] = []
    for i in range(n):
        node_id = f"{key[:2]}{i:02d}"
        cx, cy = centers[rng.randrange(n_clusters)]
        coords[node_id] = (
            min(PLANE_KM[0], max(0.0, cx + rng.gauss(0, 120.0))),
            min(PLANE_KM[1], max(0.0, cy + rng.gauss(0, 120.0))),
        )
        nodes.append(node_id)

    # --- distance-greedy spanning backbone ------------------------------
    edges: List[Tuple[str, str, int]] = []
    edge_set = set()
    degree: Dict[str, int] = {node: 0 for node in nodes}

    def add_edge(a: str, b: str) -> None:
        key_ab = (a, b) if a <= b else (b, a)
        if a == b or key_ab in edge_set:
            return
        edge_set.add(key_ab)
        edges.append(
            (
                key_ab[0],
                key_ab[1],
                _delay_us(coords[a], coords[b], pair=f"{key_ab[0]}~{key_ab[1]}"),
            )
        )
        degree[a] += 1
        degree[b] += 1

    for i in range(1, n):
        node = nodes[i]
        nearest = min(
            nodes[:i], key=lambda m: (_distance_km(coords[node], coords[m]), m)
        )
        add_edge(node, nearest)

    # --- hub-biased shortcuts -------------------------------------------
    n_shortcuts = int(extra_degree * n / 2)
    for _ in range(n_shortcuts):
        a = nodes[rng.randrange(n)]
        # preferential attachment: sample endpoint by (degree + 1) weight
        weights = [degree[m] + 1 for m in nodes]
        b = rng.choices(nodes, weights=weights, k=1)[0]
        tries = 0
        while (b == a or ((min(a, b), max(a, b)) in edge_set)) and tries < 20:
            b = rng.choices(nodes, weights=weights, k=1)[0]
            tries += 1
        if tries < 20:
            add_edge(a, b)

    graph = TopologyGraph(name=f"rocketfuel-{key}", nodes=nodes, edges=edges)
    assert graph.is_connected(), "spanning construction guarantees connectivity"
    return graph
