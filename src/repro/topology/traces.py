"""Tier-1 ISP OSPF event trace synthesis.

The paper replays OSPF traces collected in a Tier-1 ISP's area-0 network:
**651 network events over a 2-week period** (Nov 1–14, 2009), randomly
mapped onto Rocketfuel topologies.  The real trace is proprietary; we
synthesize one preserving the properties the experiments depend on:

* the event *count* and kind mix (link failures paired with repairs);
* *burstiness*: real OSPF event logs are dominated by flapping links --
  a small set of troubled links contributes most events, and a failure
  is typically repaired quickly.  We model a heavy-tailed per-link event
  share and exponential repair times;
* *diurnal clustering*: more events during busy hours (maintenance and
  load), modelled as a sinusoidal intensity over each simulated day.

For simulation the two-week span is compressible: ``duration_us``
rescales the whole trace while preserving event order and relative
spacing (the paper's replay similarly post-processes the trace "to
reproduce the network dynamics over time").  Ensure the chosen duration
leaves enough inter-event space for convergence measurements.
"""

from __future__ import annotations

import math
import random
import warnings
from typing import Dict, List, Optional, Tuple

from repro.simnet.engine import SECOND
from repro.simnet.events import LINK_DOWN, LINK_UP, EventSchedule, ExternalEvent
from repro.topology import TopologyGraph

#: The paper's trace: 651 events over 14 days.
TIER1_EVENT_COUNT = 651
TIER1_DAYS = 14


class TraceSynthesisWarning(UserWarning):
    """The synthesized trace deviates from what was asked for: fewer
    events than requested, or a degraded link-eligibility rule.  Silent
    deviation was a footgun -- ``repro production --topology waxman
    --size 12`` used to record next to nothing without a word."""


def synth_tier1_trace(
    graph: TopologyGraph,
    n_events: int = TIER1_EVENT_COUNT,
    duration_us: int = TIER1_DAYS * 24 * 3600 * SECOND,
    flappy_fraction: float = 0.15,
    start_us: int = 2 * SECOND,
    min_gap_us: int = 200_000,
    seed: int = 0,
) -> EventSchedule:
    """Synthesize a Tier-1-like link-event trace mapped onto ``graph``.

    Events alternate down/up per link and, when the graph allows it,
    never take the last live link of a node down (area-0 backbones remain
    connected through single link flaps; the paper's convergence
    measurements assume reachability).  On graphs where *no* link
    qualifies -- small Waxman graphs are mostly trees -- the eligibility
    rule degrades to all links with a :class:`TraceSynthesisWarning`
    rather than silently producing next to no events.  Likewise, repair
    times are clamped into the trace horizon (instead of silently
    dropping the whole pair), and a shortfall against ``n_events`` warns.
    """
    if n_events < 2:
        raise ValueError("a trace needs at least one down/up pair")
    rng = random.Random(f"tier1|{graph.name}|{n_events}|{seed}")

    links: List[Tuple[str, str]] = [(a, b) for a, b, _d in graph.edges]
    if not links:
        raise ValueError("topology has no links to fail")
    degree = {}
    for a, b in links:
        degree[a] = degree.get(a, 0) + 1
        degree[b] = degree.get(b, 0) + 1

    # heavy-tailed link trouble: a flappy subset carries most events, and
    # only links whose endpoints have alternatives are eligible -- unless
    # the graph has none (a tree), where we degrade the rule out loud
    eligible = [
        (a, b) for a, b in links if degree[a] >= 2 and degree[b] >= 2
    ]
    if not eligible:
        warnings.warn(
            f"topology {graph.name}: no link keeps both endpoints connected "
            "when it drops; degrading the flap-eligibility rule to all links "
            "(flaps may temporarily isolate nodes)",
            TraceSynthesisWarning,
            stacklevel=2,
        )
        eligible = links
    n_flappy = max(1, int(len(eligible) * flappy_fraction))
    flappy = rng.sample(sorted(eligible), min(n_flappy, len(eligible)))

    span = duration_us - start_us
    day_us = max(1, duration_us // TIER1_DAYS)

    schedule = EventSchedule()
    #: per-link [down_t, up_t] spans already claimed, so a new flap never
    #: lands inside an existing outage (per-link down/up alternation)
    claimed: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}
    count = 0
    attempts = 0
    max_attempts = 64 * n_events
    while count + 2 <= n_events and attempts < max_attempts:
        attempts += 1
        # diurnal intensity: draw a candidate time, thin by day-cycle weight
        t = start_us + rng.randrange(max(1, span))
        phase = 2 * math.pi * ((t % day_us) / day_us)
        weight = 0.55 + 0.45 * math.sin(phase)
        if rng.random() >= weight:
            continue
        link = flappy[rng.randrange(len(flappy))] if rng.random() < 0.8 else (
            eligible[rng.randrange(len(eligible))]
        )
        if t + min_gap_us >= duration_us:
            continue  # no room for a repair before the horizon
        repair_gap = max(min_gap_us, int(rng.expovariate(1.0 / (30 * SECOND))))
        # clamp the repair into the horizon -- dropping the whole pair
        # here was the silent-zero-events footgun on short traces
        up_t = min(t + repair_gap, duration_us - 1)
        if any(t <= u and d <= up_t for d, u in claimed.get(link, [])):
            continue  # would overlap an outage already scheduled there
        schedule.add(ExternalEvent(time_us=t, kind=LINK_DOWN, target=link))
        schedule.add(ExternalEvent(time_us=up_t, kind=LINK_UP, target=link))
        claimed.setdefault(link, []).append((t, up_t))
        count += 2

    # events come in down/up pairs, so an odd request tops out one short
    # by construction -- only a genuine shortfall warrants the warning
    if count < n_events - (n_events % 2):
        warnings.warn(
            f"synthesized only {count} of {n_events} requested events on "
            f"{graph.name}: the {duration_us / 1e6:.1f}s horizon and "
            f"{len(eligible)} eligible link(s) left no room for more "
            "non-overlapping down/up pairs",
            TraceSynthesisWarning,
            stacklevel=2,
        )
    return _respace(schedule, min_gap_us, horizon_us=duration_us)


def _respace(
    schedule: EventSchedule, min_gap_us: int, horizon_us: Optional[int] = None
) -> EventSchedule:
    """Enforce a minimum spacing between events, preserving order.

    Convergence measurement needs each event's reaction to be at least
    partially attributable; the paper's replay spaces events similarly.

    With ``horizon_us``, events that forward-respacing pushed past the
    horizon (clamped repairs bunch against it) are pulled back onto a
    ``min_gap_us`` ladder ending just inside it -- order and minimum
    spacing survive, and the whole trace stays inside the horizon
    whenever the spacing budget allows.
    """
    events = schedule.sorted()
    times: List[int] = []
    last = -min_gap_us
    shift = 0
    for event in events:
        t = event.time_us + shift
        if t < last + min_gap_us:
            shift += last + min_gap_us - t
            t = last + min_gap_us
        times.append(t)
        last = t
    if horizon_us is not None and times and times[-1] >= horizon_us:
        n = len(times)
        capped = [
            min(t, horizon_us - 1 - (n - 1 - i) * min_gap_us)
            for i, t in enumerate(times)
        ]
        # both sequences step by >= min_gap_us, so their pointwise min
        # does too; only apply the cap when the horizon genuinely has
        # room for the ladder -- and never deviate silently otherwise
        if capped[0] >= 0:
            times = capped
        else:
            warnings.warn(
                f"trace overflows the requested horizon: {n} events at "
                f"{min_gap_us}us minimum spacing do not fit inside "
                f"{horizon_us / 1e6:.1f}s (last event at "
                f"{times[-1] / 1e6:.1f}s); extend duration_us, lower "
                "n_events or shrink min_gap_us",
                TraceSynthesisWarning,
                stacklevel=3,
            )
    out = EventSchedule()
    for event, t in zip(events, times):
        out.add(ExternalEvent(time_us=t, kind=event.kind, target=event.target,
                              data=event.data))
    return out


def compressed_trace(
    graph: TopologyGraph,
    n_events: int,
    gap_us: int = 12 * SECOND,
    start_us: int = 2 * SECOND,
    seed: int = 0,
) -> EventSchedule:
    """A practical experiment workload: ``n_events`` link flap events at a
    fixed ``gap_us`` spacing (trace order and link choice synthesized the
    same way as :func:`synth_tier1_trace`, time compressed for tractable
    simulation)."""
    raw = synth_tier1_trace(
        graph,
        n_events=n_events,
        duration_us=start_us + (n_events + 2) * gap_us * 4,
        start_us=start_us,
        seed=seed,
    )
    out = EventSchedule()
    for i, event in enumerate(raw.sorted()):
        out.add(
            ExternalEvent(
                time_us=start_us + i * gap_us,
                kind=event.kind,
                target=event.target,
                data=event.data,
            )
        )
    return out
