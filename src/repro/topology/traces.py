"""Tier-1 ISP OSPF event trace synthesis.

The paper replays OSPF traces collected in a Tier-1 ISP's area-0 network:
**651 network events over a 2-week period** (Nov 1–14, 2009), randomly
mapped onto Rocketfuel topologies.  The real trace is proprietary; we
synthesize one preserving the properties the experiments depend on:

* the event *count* and kind mix (link failures paired with repairs);
* *burstiness*: real OSPF event logs are dominated by flapping links --
  a small set of troubled links contributes most events, and a failure
  is typically repaired quickly.  We model a heavy-tailed per-link event
  share and exponential repair times;
* *diurnal clustering*: more events during busy hours (maintenance and
  load), modelled as a sinusoidal intensity over each simulated day.

For simulation the two-week span is compressible: ``duration_us``
rescales the whole trace while preserving event order and relative
spacing (the paper's replay similarly post-processes the trace "to
reproduce the network dynamics over time").  Ensure the chosen duration
leaves enough inter-event space for convergence measurements.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from repro.simnet.engine import SECOND
from repro.simnet.events import LINK_DOWN, LINK_UP, EventSchedule, ExternalEvent
from repro.topology import TopologyGraph

#: The paper's trace: 651 events over 14 days.
TIER1_EVENT_COUNT = 651
TIER1_DAYS = 14


def synth_tier1_trace(
    graph: TopologyGraph,
    n_events: int = TIER1_EVENT_COUNT,
    duration_us: int = TIER1_DAYS * 24 * 3600 * SECOND,
    flappy_fraction: float = 0.15,
    start_us: int = 2 * SECOND,
    min_gap_us: int = 200_000,
    seed: int = 0,
) -> EventSchedule:
    """Synthesize a Tier-1-like link-event trace mapped onto ``graph``.

    Events alternate down/up per link and never take the last live link
    of a node down (area-0 backbones remain connected through single link
    flaps; the paper's convergence measurements assume reachability).
    """
    if n_events < 2:
        raise ValueError("a trace needs at least one down/up pair")
    rng = random.Random(f"tier1|{graph.name}|{n_events}|{seed}")

    links: List[Tuple[str, str]] = [(a, b) for a, b, _d in graph.edges]
    if not links:
        raise ValueError("topology has no links to fail")
    degree = {}
    for a, b in links:
        degree[a] = degree.get(a, 0) + 1
        degree[b] = degree.get(b, 0) + 1

    # heavy-tailed link trouble: a flappy subset carries most events, but
    # only links whose endpoints have alternatives are eligible
    eligible = [
        (a, b) for a, b in links if degree[a] >= 2 and degree[b] >= 2
    ] or links
    n_flappy = max(1, int(len(eligible) * flappy_fraction))
    flappy = rng.sample(sorted(eligible), min(n_flappy, len(eligible)))

    # diurnal intensity: draw candidate times, thin by a day-cycle weight
    span = duration_us - start_us
    day_us = max(1, duration_us // TIER1_DAYS)
    times: List[int] = []
    while len(times) < n_events // 2:
        t = start_us + rng.randrange(max(1, span))
        phase = 2 * math.pi * ((t % day_us) / day_us)
        weight = 0.55 + 0.45 * math.sin(phase)
        if rng.random() < weight:
            times.append(t)
    times.sort()

    schedule = EventSchedule()
    live = {lk: True for lk in links}
    count = 0
    for t in times:
        if count + 2 > n_events:
            break
        link = flappy[rng.randrange(len(flappy))] if rng.random() < 0.8 else (
            eligible[rng.randrange(len(eligible))]
        )
        if not live[link]:
            continue  # still down from an earlier flap
        repair_gap = max(min_gap_us, int(rng.expovariate(1.0 / (30 * SECOND))))
        down_t, up_t = t, t + repair_gap
        if up_t >= duration_us:
            continue
        schedule.add(ExternalEvent(time_us=down_t, kind=LINK_DOWN, target=link))
        schedule.add(ExternalEvent(time_us=up_t, kind=LINK_UP, target=link))
        live[link] = False
        count += 2
        # the link is live again after up_t for future draws
        live[link] = True

    return _respace(schedule, min_gap_us)


def _respace(schedule: EventSchedule, min_gap_us: int) -> EventSchedule:
    """Enforce a minimum spacing between events, preserving order.

    Convergence measurement needs each event's reaction to be at least
    partially attributable; the paper's replay spaces events similarly.
    """
    out = EventSchedule()
    last = -min_gap_us
    shift = 0
    for event in schedule.sorted():
        t = event.time_us + shift
        if t < last + min_gap_us:
            shift += last + min_gap_us - t
            t = last + min_gap_us
        out.add(ExternalEvent(time_us=t, kind=event.kind, target=event.target,
                              data=event.data))
        last = t
    return out


def compressed_trace(
    graph: TopologyGraph,
    n_events: int,
    gap_us: int = 12 * SECOND,
    start_us: int = 2 * SECOND,
    seed: int = 0,
) -> EventSchedule:
    """A practical experiment workload: ``n_events`` link flap events at a
    fixed ``gap_us`` spacing (trace order and link choice synthesized the
    same way as :func:`synth_tier1_trace`, time compressed for tractable
    simulation)."""
    raw = synth_tier1_trace(
        graph,
        n_events=n_events,
        duration_us=start_us + (n_events + 2) * gap_us * 4,
        start_us=start_us,
        seed=seed,
    )
    out = EventSchedule()
    for i, event in enumerate(raw.sorted()):
        out.add(
            ExternalEvent(
                time_us=start_us + i * gap_us,
                kind=event.kind,
                target=event.target,
                data=event.data,
            )
        )
    return out
