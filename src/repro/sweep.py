"""Scenario-sweep subsystem: diverse failure environments, checked in bulk.

The paper's evaluation runs one recorded workload through the vanilla,
DEFINED-RB and DEFINED-LS stacks and compares bit-for-bit fingerprints.
This module scales that methodology from two hand-built case studies to a
whole *grid*:

* a :class:`Scenario` descriptor bundles everything one failure
  environment needs -- a topology factory, an external-event schedule
  factory, an optional daemon factory and an expected-outcome predicate
  -- with every random choice derived from the cell's seed, so a grid
  cell is a pure function of ``(scenario, seed, mode)``;
* a registry (:func:`register` / :func:`get_scenario`) names scenarios so
  grid cells stay picklable and the CLI can address them;
* a family of parameterized fault-injection generators synthesizes
  link-flap storms, node crash/restarts, network partitions,
  link-latency jitter and DDoS-overload variants (the last built on the
  stop-and-wait :mod:`repro.baselines.ddos` stack);
* :class:`SweepRunner` shards the scenario x seed x mode grid across
  cores with :class:`concurrent.futures.ProcessPoolExecutor` -- each
  worker builds its own :class:`~repro.simnet.engine.Simulator`, so
  per-run determinism is untouched -- and aggregates a
  divergence/determinism report, verifying the Theorem-1 invariant
  (``replay.fingerprint == defined.fingerprint``) for every DEFINED cell;
* :func:`compose` overlays any registered scenarios into a new one
  (merged schedules on seed-split RNG streams, widest topology, AND-ed
  expectations, mode intersection), so every pair of scenarios is itself
  a scenario -- ``partition`` during a ``flap-storm``, a crash in the
  middle of a ``ddos-overload`` burst;
* :func:`jittered` wraps any scenario in the **boundary-jitter fuzzer**:
  every external event is snapped onto a beacon-group boundary +/- a few
  seed-derived microseconds, the exact regime where group tagging,
  per-group ordering and anti-message retraction hand off;
* :class:`FuzzRunner` sweeps jittered grids across (scenario, seed,
  jitter) and shrinks any divergence to the smallest failing triple.

Composed, sized and jittered scenarios are addressable *by name* without
prior registration: ``a+b`` composes, ``a@40`` re-scales ``a`` onto a
40-node topology (:meth:`Scenario.sized`), ``a~j2us`` fuzzes with 2 us
of boundary jitter, and they nest -- ``flap_storm@40+partition@40~j2us``
is a 40-node flap storm overlaid with a 40-node partition, fuzzed.  Name
resolution is a pure function of the builtin catalogue, so the names
travel to worker processes regardless of the multiprocessing start
method.

Two scale-out mechanisms round the grid machinery out:

* ``SweepRunner(..., repeats=K)`` is the **seed-invariance probe**: each
  ``(scenario, seed, mode)`` cell is re-run under ``K`` seed-split
  *jitter seeds* -- same topology, same external schedule, different
  network timing -- and for the deterministic modes (``defined``,
  ``ddos``) the ``K`` fingerprints must collapse to one.  A split is a
  first-class divergence (:meth:`SweepReport.invariance_splits`).
* with ``workers > 1`` results stream back through a bounded
  :mod:`multiprocessing.shared_memory` ring
  (:mod:`repro.sweep_stream`) instead of one pickled future hop per
  cell, so 1000+-cell grids report progress live and the parent's
  result-transport memory stays flat; ``transport="futures"`` keeps the
  legacy path for comparison.
"""

from __future__ import annotations

import hashlib
import os
import random
import re
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import render_matrix, render_table
from repro.core.history import WindowHeadroomStats
from repro.harness import (
    ProductionResult,
    burst_schedule,
    flappable_links,
    run_ls_replay,
    run_production,
)
from repro.simnet.engine import SECOND
from repro.simnet.events import (
    LINK_DOWN,
    LINK_UP,
    NODE_DOWN,
    NODE_UP,
    EventSchedule,
    ExternalEvent,
)
from repro.simnet.faults import NetworkTuning
from repro.simnet.network import DEFAULT_TIME_UNIT_US
from repro.topology import TopologyGraph, waxman_family

TopologyFactory = Callable[[int], TopologyGraph]
ScheduleFactory = Callable[[TopologyGraph, int], EventSchedule]
DaemonBuilder = Callable[[TopologyGraph], Optional[Callable]]
ExpectPredicate = Callable[[ProductionResult], bool]
TuningFactory = Callable[[TopologyGraph, int], NetworkTuning]

#: Modes a scenario runs in by default.  ``defined`` cells additionally
#: run a DEFINED-LS replay and check the Theorem-1 invariant.
DEFAULT_MODES: Tuple[str, ...] = ("vanilla", "defined")

#: Modes that guarantee timing-independent execution: the same workload
#: must produce the same fingerprint under *any* jitter seed.  The
#: seed-invariance probe (``repeats > 1``) only demands fingerprint
#: collapse in these modes.
DETERMINISTIC_MODES: Tuple[str, ...] = ("defined", "ddos")


@dataclass(frozen=True)
class Scenario:
    """One reproducible failure environment.

    Everything is a factory taking the cell seed, so the same descriptor
    yields a *family* of concrete environments -- same failure shape,
    different topologies/timings -- while each cell stays a deterministic
    function of its seed.
    """

    name: str
    description: str
    topology: TopologyFactory
    schedule: ScheduleFactory
    #: Builds a per-node daemon factory for a concrete topology; ``None``
    #: falls back to the harness's OSPF daemon.
    daemon: Optional[DaemonBuilder] = None
    #: Scenario-level sanity predicate over the finished run (outcome
    #: shape, not determinism -- the runner checks determinism itself).
    expect: Optional[ExpectPredicate] = None
    modes: Tuple[str, ...] = DEFAULT_MODES
    jitter_us: int = 200
    ordering: str = "OO"
    settle_us: int = 3 * SECOND
    tail_us: int = 2 * SECOND
    #: Optional continuous-perturbation factory (chaos DSL fault
    #: families): maps the concrete topology and the *workload* seed to a
    #: :class:`~repro.simnet.faults.NetworkTuning` (per-node clock skew,
    #: link-layer duplication/reordering, gray loss) installed on the
    #: production network before boot.  Keyed on the workload seed -- not
    #: the jitter seed -- so the perturbation *configuration* is part of
    #: the workload and the seed-invariance probe varies only its timing
    #: draws.
    tuning: Optional[TuningFactory] = None
    #: Nominal node count of ``topology`` (None: unknown / not meaningful).
    base_nodes: Optional[int] = None
    #: Size-parameterization hook: maps a node count to a re-scaled
    #: scenario of the same family (topology re-based to ``n`` nodes,
    #: schedule event counts scaled proportionally).  Installed by the
    #: scenario-family constructors; ``None`` means :meth:`sized` refuses
    #: (the paper case studies are bound to their fixed topologies).
    sizer: Optional[Callable[[int], "Scenario"]] = None

    def sized(self, n: int) -> "Scenario":
        """Derive the ``n``-node variant of this scenario (``name@N``).

        The sizer re-builds the family at ``n`` nodes -- topology factory
        re-scaled, schedule event counts scaled proportionally to
        ``n / base_nodes`` -- and the derived schedule runs on a
        seed-split RNG stream keyed on the sized name, so every size is
        an independent, deterministic function of the cell seed.
        """
        if "@" in self.name:
            raise ValueError(
                f"scenario {self.name!r} is already size-parameterized; "
                "derive sizes from the base scenario"
            )
        if self.sizer is None:
            raise ValueError(
                f"scenario {self.name!r} is not size-parameterized: it is "
                "bound to a fixed topology (no sizer hook)"
            )
        if n < 2:
            raise ValueError("sized() needs at least two nodes")
        if "+" in self.name or "~j" in self.name:
            # composed/jittered scenario: the sizer re-derives the sized
            # variant itself -- compositions re-compose per-component
            # sized variants, jitter wrappers size the base and re-wrap
            # -- so the result already carries the canonical
            # "a@N+b@N" / "a@N~jJus" name and the matching seed-split
            # streams ("(a+b)@N" is the same scenario as "a@N+b@N",
            # fingerprints included)
            return self.sizer(n)
        derived = self.sizer(n)
        sized_name = f"{self.name}@{n}"
        base_schedule = derived.schedule

        def schedule(graph: TopologyGraph, seed: int) -> EventSchedule:
            return base_schedule(graph, seed_split(seed, sized_name))

        return replace(
            derived,
            name=sized_name,
            description=f"{derived.description} [sized to {n} nodes]",
            schedule=schedule,
            base_nodes=n,
            sizer=None,
        )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Scenario] = {}
_BUILTINS_LOADED = False
_BUILTIN_NAMES: frozenset = frozenset()


def register(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add a scenario to the global registry (idempotent per name)."""
    if scenario.name in _REGISTRY and not replace:
        existing = _REGISTRY[scenario.name]
        if existing is not scenario:
            raise ValueError(f"scenario {scenario.name!r} already registered")
        return existing
    if scenario.name in _REGISTRY:
        # cached compositions may close over the scenario being replaced
        _DYNAMIC_CACHE.clear()
    _REGISTRY[scenario.name] = scenario
    return scenario


def unregister(name: str) -> None:
    _REGISTRY.pop(name, None)
    # composed/jittered resolutions may close over the removed scenario
    _DYNAMIC_CACHE.clear()


def _ensure_builtins() -> None:
    """Importing :mod:`repro.scenarios` registers the builtin scenario
    set (case studies + fault-injection family) exactly once."""
    global _BUILTINS_LOADED, _BUILTIN_NAMES
    if not _BUILTINS_LOADED:
        import repro.scenarios  # noqa: F401  (import-time registration)

        _BUILTINS_LOADED = True
        _BUILTIN_NAMES = frozenset(_REGISTRY)


#: ``name~j<N>us`` -- the boundary-jitter fuzzing suffix.
_JITTER_SUFFIX = re.compile(r"^(?P<base>.+)~j(?P<us>\d+)us$")

#: ``name@<N>`` -- the size-parameterization suffix (per component).
_SIZE_SUFFIX = re.compile(r"^(?P<base>.+)@(?P<n>\d+)$")

#: ``(a+b)@<N>`` -- whole-composition sizing; expands to the
#: per-component form (``a@N~j..+b@N``, size binding inside any
#: per-component jitter), which it is identical to.
_PAREN_SIZE = re.compile(r"^\((?P<base>[^()]+)\)@(?P<n>\d+)$")

#: ``(a+b)`` / ``(a+b)@<N>`` -- an explicitly grouped composition.  A
#: jitter suffix after the closing paren is unambiguously
#: whole-composition jitter, even when components carry their own.
_PAREN_SPEC = re.compile(r"^\((?P<base>[^()]+)\)(?:@(?P<n>\d+))?$")


def _split_trailing_jitter(spec: str) -> "Tuple[str, Optional[int]]":
    """Strip one trailing ``~j<N>us`` suffix; reject stacked suffixes.

    ``a~j1us~j2us`` (and ``(a+b)~j1us~j2us``) are genuinely ambiguous --
    jitter does not compose with itself on one target -- so they fail
    here with a parse error instead of resolving to something surprising.
    """
    match = _JITTER_SUFFIX.match(spec)
    if not match:
        return spec, None
    base = match.group("base")
    if _JITTER_SUFFIX.match(base):
        raise ValueError(
            f"{spec!r} stacks more than one ~j<N>us jitter suffix on the "
            "same target; jitter binds per component (a~j1us+b~j5us) or "
            "once over the whole composition ((a+b)~j1us), never twice"
        )
    return base, int(match.group("us"))


def _expand_paren_size(spec: str) -> str:
    """Rewrite ``(a+b)@N`` as ``a@N+b@N``; other specs pass through.

    The size binds *inside* any per-component jitter suffix:
    ``(a~j1us+b)@40`` is ``a@40~j1us+b@40``.
    """
    match = _PAREN_SIZE.match(spec)
    if not match:
        return spec
    n = match.group("n")
    parts = []
    for part in match.group("base").split("+"):
        base, jitter = _split_trailing_jitter(part)
        if _SIZE_SUFFIX.match(base):
            raise ValueError(
                f"component {part!r} already carries a size; "
                f"cannot re-size the composition with @{n}"
            )
        sized = f"{base}@{n}"
        parts.append(f"{sized}~j{jitter}us" if jitter is not None else sized)
    return "+".join(parts)

#: Cache for dynamically resolved (composed / sized / jittered)
#: scenarios, kept out of the registry so lookups don't grow
#: ``scenario_names()``.
_DYNAMIC_CACHE: Dict[str, Scenario] = {}

#: Scenario-file components (chaos DSL documents) are recognized by
#: extension anywhere a scenario name is accepted.  Paths containing
#: ``+`` are unsupported -- ``+`` is the composition operator.
_SCENARIO_FILE_SUFFIXES = (".yaml", ".yml", ".json")


def _is_scenario_file(name: str) -> bool:
    return name.endswith(_SCENARIO_FILE_SUFFIXES)


def _load_scenario_file(path: str) -> Scenario:
    """Compile a chaos DSL document into a :class:`Scenario`.

    Deferred import: :mod:`repro.chaos` imports this module for the
    Scenario/seed_split machinery, so the dependency must stay one-way at
    import time.  The loader caches on ``(path, mtime, size)``, which is
    why file components bypass :data:`_DYNAMIC_CACHE` -- an edited file
    must recompile.
    """
    from repro.chaos import load_scenario_file

    return load_scenario_file(path)


def _resolve_component(part: str) -> Optional[Scenario]:
    """Resolve one composition component: ``name[@N][~jJus]``.

    Raises :class:`ValueError` for malformed size/jitter combinations
    (stacked jitter, size outside the jitter suffix, base not
    size-parameterized) -- clearer failures than "unknown scenario".
    Returns ``None`` for unknown base names.
    """
    if part in _REGISTRY:
        return _REGISTRY[part]
    base, jitter = _split_trailing_jitter(part)
    size = None
    if base not in _REGISTRY and not _is_scenario_file(base):
        size_match = _SIZE_SUFFIX.match(base)
        if size_match:
            inner = size_match.group("base")
            if _JITTER_SUFFIX.match(inner):
                raise ValueError(
                    f"component {part!r}: the size binds inside the jitter "
                    "suffix -- write 'name@N~jJus', not 'name~jJus@N'"
                )
            base, size = inner, int(size_match.group("n"))
    if _is_scenario_file(base):
        scenario = _load_scenario_file(base)
    else:
        base = base if base in _REGISTRY else base.replace("_", "-")
        if base not in _REGISTRY:
            return None
        scenario = _REGISTRY[base]
    if size is not None:
        scenario = scenario.sized(size)
    if jitter is not None:
        scenario = jittered(scenario, jitter_us=jitter)
    return scenario


def _resolve_dynamic(name: str) -> Optional[Scenario]:
    """Resolve a composed/sized/jittered scenario name against the registry.

    Grammar: ``spec := comps ['~j' J 'us'] | '(' comps ')' ['@' N]
    ['~j' J 'us']; comps := comp ('+' comp)*; comp := name ['@' N]
    ['~j' J 'us']`` -- a size suffix applies per component (binding
    *inside* that component's jitter suffix), ``(a+b)@N`` sizes the
    whole composition (identical to ``a@N+b@N``), and jitter binds per
    component: ``a~j1us+b~j5us`` jitters each component's schedule
    before the merge.  A single *trailing* suffix on an unparenthesized
    composition (``a+b~j1us``) keeps its historical whole-composition
    meaning -- unless another component carries its own jitter, in which
    case it binds to the final component like the others.
    Whole-composition jitter over per-component jitter must be spelled
    with parens (``(a~j1us+b)~j5us``); stacked suffixes
    (``(a+b)~j1us~j2us``) are rejected with a parse error.  Unknown
    component names make the whole resolution fail (returns ``None``).
    Resolution only reads the registry, so any process that can import
    the builtin catalogue can resolve the same name to the same
    scenario, regardless of the multiprocessing start method.
    """
    cached = _DYNAMIC_CACHE.get(name)
    if cached is not None:
        return cached
    spec, trailing = _split_trailing_jitter(name)
    paren = _PAREN_SPEC.match(spec)
    if paren:
        inner, n = paren.group("base"), paren.group("n")
        spec = _expand_paren_size(f"({inner})@{n}") if n else inner
    else:
        spec = _expand_paren_size(spec)
    parts = spec.split("+")
    if (
        trailing is not None and paren is None and len(parts) > 1
        and any(_JITTER_SUFFIX.match(p) for p in parts)
    ):
        # mixed form "a~j1us+b~j5us": once any component carries its own
        # jitter, the trailing suffix binds to the final component too
        parts[-1] = f"{parts[-1]}~j{trailing}us"
        trailing = None
    components = []
    for part in parts:
        component = _resolve_component(part)
        if component is None:
            return None
        components.append(component)
    # resolve under the *canonical* name (registered component spellings)
    # -- the name seeds the composition's RNG streams, so an underscore
    # alias must produce the same schedules as the hyphenated spelling
    if len(components) > 1:
        scenario = compose(*components)
    else:
        scenario = components[0]
    if trailing is not None:
        jitter_name = None
        if any(_JITTER_SUFFIX.match(p) for p in parts):
            # keep the parens in the fuzz name: "a~j1us+b~j5us" would
            # re-parse as per-component jitter, a different scenario
            jitter_name = f"({scenario.name})~j{trailing}us"
        scenario = jittered(scenario, jitter_us=trailing, name=jitter_name)
    if not any(_is_scenario_file(p.split("@")[0].split("~j")[0]) for p in parts):
        # file components recompile when the file changes (the loader
        # caches on mtime); memoizing them here would pin the first parse
        _DYNAMIC_CACHE[name] = scenario
    return scenario


def _canonical_component(part: str) -> str:
    """Canonical spelling of one component: registered base spelling
    (underscores normalize to hyphens) with its ``@N`` / ``~jJus``
    suffixes re-attached.  Unresolvable bases pass through unchanged."""
    if part in _REGISTRY:
        return part
    base, jitter = _split_trailing_jitter(part)
    suffix = f"~j{jitter}us" if jitter is not None else ""
    size = ""
    if base not in _REGISTRY:
        size_match = _SIZE_SUFFIX.match(base)
        if size_match and not _JITTER_SUFFIX.match(size_match.group("base")):
            base, size = size_match.group("base"), f"@{size_match.group('n')}"
    if base not in _REGISTRY and base.replace("_", "-") in _REGISTRY:
        base = base.replace("_", "-")
    return base + size + suffix


def canonical_scenario_name(name: str) -> str:
    """The canonical spelling of a scenario spec: each component takes
    its registered spelling (underscores normalize to hyphens), ``@N``
    size and ``~jNus`` jitter suffixes are kept (per-component jitter
    stays on its component; parens survive only where they disambiguate
    whole-composition jitter from per-component jitter).  Unresolvable
    parts pass through unchanged so unknown names still fail later with
    the full lookup error; malformed suffix stacks fail here."""
    _ensure_builtins()
    spec, trailing = _split_trailing_jitter(name)
    paren = _PAREN_SPEC.match(spec)
    if paren:
        inner, n = paren.group("base"), paren.group("n")
        spec = _expand_paren_size(f"({inner})@{n}") if n else inner
    else:
        spec = _expand_paren_size(spec)
    parts = [_canonical_component(part) for part in spec.split("+")]
    if (
        trailing is not None and paren is None and len(parts) > 1
        and any(_JITTER_SUFFIX.match(p) for p in parts)
    ):
        parts[-1] = f"{parts[-1]}~j{trailing}us"
        trailing = None
    canonical = "+".join(parts)
    if trailing is None:
        return canonical
    if any(_JITTER_SUFFIX.match(p) for p in parts):
        return f"({canonical})~j{trailing}us"
    return f"{canonical}~j{trailing}us"


def sized_spec(name: str, n: int) -> str:
    """Append ``@n`` to every component of a scenario spec.

    ``sized_spec("flap_storm+partition~j2us", 40)`` is
    ``"flap-storm@40+partition@40~j2us"`` -- the whole composition
    re-scaled onto 40-node topologies.  The size binds *inside* any
    per-component jitter suffix (``a~j1us`` sizes to ``a@40~j1us``), so
    every valid jittered spec stays valid under sizing.  Components that
    already carry a size are rejected (re-sizing would be ambiguous)."""
    canonical = canonical_scenario_name(name)
    spec, trailing = _split_trailing_jitter(canonical)
    paren = _PAREN_SPEC.match(spec)
    if paren:
        if paren.group("n"):
            raise ValueError(
                f"composition {spec!r} already carries a size; cannot re-size"
            )
        spec = paren.group("base")
    parts = []
    for part in spec.split("+"):
        base, jitter = _split_trailing_jitter(part)
        if _SIZE_SUFFIX.match(base):
            raise ValueError(
                f"component {part!r} already carries a size; cannot re-size"
            )
        sized = f"{base}@{n}"
        parts.append(f"{sized}~j{jitter}us" if jitter is not None else sized)
    sized = "+".join(parts)
    if trailing is None:
        return sized
    if paren:
        return f"({sized})~j{trailing}us"
    return f"{sized}~j{trailing}us"


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario, or resolve a composed/sized/
    jittered spec (``a+b``, ``a@40``, ``(a+b)@40``, ``a~j1us``,
    ``a@40+b@40~j2us``) from registered components.  A component ending
    in ``.yaml`` / ``.yml`` / ``.json`` is loaded as a chaos DSL scenario
    file (:mod:`repro.chaos`) and participates in the same grammar:
    ``examples/skew.yaml~j1us`` fuzzes a file scenario."""
    _ensure_builtins()
    if name in _REGISTRY:
        return _REGISTRY[name]
    if _is_scenario_file(name):
        return _load_scenario_file(name)
    dynamic = _resolve_dynamic(name)
    if dynamic is not None:
        return dynamic
    raise KeyError(
        f"unknown scenario {name!r}; registered: {scenario_names()} "
        "(or compose with 'a+b', size with 'a@<N>', fuzz with 'a~j<N>us')"
    )


def scenario_names(include_sized: bool = True) -> List[str]:
    """Registered scenario names.  ``include_sized=False`` drops the
    ``name@N`` size variants -- the default grid for sweeps, which would
    otherwise quietly pull 80-node cells into every smoke run."""
    _ensure_builtins()
    names = sorted(_REGISTRY)
    if not include_sized:
        names = [n for n in names if "@" not in n]
    return names


# ----------------------------------------------------------------------
# scenario composition and the boundary-jitter fuzzer
# ----------------------------------------------------------------------

def seed_split(seed: int, tag: str) -> int:
    """Derive an independent child seed from ``(seed, tag)``.

    Composition overlays several generators that may share RNG tags (two
    flap storms on the same graph, say); splitting the cell seed per
    component keeps their streams independent while the whole cell stays
    a pure function of its seed.  ``zlib.crc32`` rather than ``hash()``:
    the latter is salted per process and would desynchronize workers.
    """
    return zlib.crc32(f"{tag}|{seed}".encode()) & 0x7FFFFFFF


def compose(
    *components: "Scenario | str",
    name: Optional[str] = None,
    offsets_us: Optional[Sequence[int]] = None,
) -> Scenario:
    """Overlay two or more scenarios into one composed scenario.

    * **schedule**: each component's schedule is built with a seed-split
      RNG stream (:func:`seed_split` over the composed name and component
      index), optionally shifted by its entry in ``offsets_us``, then
      merged via :meth:`EventSchedule.merged`;
    * **topology**: widest-topology resolution -- per seed, every
      component's topology is built and the one with the most nodes (then
      edges) hosts the composition, so every component's fault generator
      has room to act;
    * **expect**: the AND of every component predicate;
    * **modes**: the intersection, in the first component's order (a
      component with a restricted mode list narrows the composition);
    * **knobs**: most adversarial wins -- max ``jitter_us``, min
      ``settle_us``, max ``tail_us``.

    Scenarios with custom daemons (the paper case studies) are not
    composable: their daemons close over their own fixed topologies.
    """
    if len(components) < 2:
        raise ValueError("compose() needs at least two scenarios")
    comps: List[Scenario] = [
        get_scenario(c) if isinstance(c, str) else c for c in components
    ]
    for comp in comps:
        if comp.daemon is not None:
            raise ValueError(
                f"scenario {comp.name!r} declares a custom daemon bound to "
                "its own topology and cannot be composed"
            )
    orderings = {comp.ordering for comp in comps}
    if len(orderings) > 1:
        raise ValueError(f"components disagree on ordering: {sorted(orderings)}")
    modes = tuple(
        m for m in comps[0].modes if all(m in c.modes for c in comps[1:])
    )
    if not modes:
        raise ValueError(
            "composed scenarios share no modes: "
            + "; ".join(f"{c.name}={c.modes}" for c in comps)
        )
    offsets = tuple(offsets_us) if offsets_us is not None else (0,) * len(comps)
    if len(offsets) != len(comps):
        raise ValueError("offsets_us must match the component count")
    composed_name = name or "+".join(c.name for c in comps)

    def topology(seed: int) -> TopologyGraph:
        graphs = [c.topology(seed) for c in comps]
        return max(graphs, key=lambda g: (g.node_count(), g.edge_count()))

    def schedule(graph: TopologyGraph, seed: int) -> EventSchedule:
        parts = []
        for i, (comp, offset) in enumerate(zip(comps, offsets)):
            part = comp.schedule(
                graph, seed_split(seed, f"{composed_name}#{i}:{comp.name}")
            )
            parts.append(part.shifted(offset) if offset else part)
        return parts[0].merged(*parts[1:])

    predicates = [c.expect for c in comps if c.expect is not None]

    def expect(result: ProductionResult) -> bool:
        return all(predicate(result) for predicate in predicates)

    # continuous perturbations merge like schedules: each component
    # builds its tuning on the same seed-split stream its schedule uses,
    # then skews sum per node and fault windows concatenate
    tuning_comps = [(i, c) for i, c in enumerate(comps) if c.tuning is not None]
    tuning: Optional[TuningFactory] = None
    if tuning_comps:
        def tuning(graph: TopologyGraph, seed: int) -> NetworkTuning:
            merged = NetworkTuning()
            for i, comp in tuning_comps:
                merged = merged.merged(
                    comp.tuning(
                        graph, seed_split(seed, f"{composed_name}#{i}:{comp.name}")
                    )
                )
            return merged

    # size-parameterized iff every component is: "(a+b)@N" re-composes
    # the components' own sized variants, so it resolves to exactly the
    # same scenario as "a@N+b@N" (same canonical name, same seed-split
    # schedule streams)
    sizer: Optional[Callable[[int], Scenario]] = None
    if all(c.sizer is not None for c in comps):
        def sizer(n: int) -> Scenario:
            return compose(*(c.sized(n) for c in comps), offsets_us=offsets)

    return Scenario(
        name=composed_name,
        description="composed: " + " + ".join(c.description for c in comps),
        topology=topology,
        schedule=schedule,
        expect=expect if predicates else None,
        modes=modes,
        tuning=tuning,
        jitter_us=max(c.jitter_us for c in comps),
        ordering=comps[0].ordering,
        settle_us=min(c.settle_us for c in comps),
        tail_us=max(c.tail_us for c in comps),
        sizer=sizer,
    )


def jittered(
    base: "Scenario | str",
    jitter_us: int = 1,
    boundary_us: int = DEFAULT_TIME_UNIT_US,
    name: Optional[str] = None,
) -> Scenario:
    """The boundary-jitter fuzzer: ``base`` with every external event
    snapped onto a beacon-group boundary +/- ``jitter_us`` of seed-derived
    jitter (see :meth:`EventSchedule.boundary_jittered`).

    Group boundaries are where external-event tagging, the per-group
    ordering function and anti-message retraction hand off, so this is
    the adversarial placement for the DEFINED machinery; Theorem 1 must
    hold regardless.
    """
    scenario = get_scenario(base) if isinstance(base, str) else base
    if name is not None:
        fuzz_name = name
    elif "~j" in scenario.name:
        # parenthesize so the name re-parses as whole-composition jitter:
        # "a~j1us+b~j5us" would re-resolve as per-component jitter, a
        # different scenario
        fuzz_name = f"({scenario.name})~j{jitter_us}us"
    else:
        fuzz_name = f"{scenario.name}~j{jitter_us}us"
    base_schedule = scenario.schedule

    def schedule(graph: TopologyGraph, seed: int) -> EventSchedule:
        return base_schedule(graph, seed).boundary_jittered(
            boundary_us,
            seed_split(seed, fuzz_name),
            jitter_us=jitter_us,
            tag=f"fuzz|{fuzz_name}",
        )

    # sizing happens *inside* the jitter wrapper: "a~j1us" sizes to
    # "a@20~j1us" by sizing the base and re-wrapping, so the grammar is
    # closed under @N and a sized jittered spec can never silently
    # resolve to an unjittered scenario
    sizer: Optional[Callable[[int], Scenario]] = None
    if scenario.sizer is not None:
        def sizer(n: int) -> Scenario:
            return jittered(
                scenario.sized(n), jitter_us=jitter_us, boundary_us=boundary_us
            )

    return replace(
        scenario,
        name=fuzz_name,
        description=(
            f"{scenario.name} with events snapped to beacon-group "
            f"boundaries +/-{jitter_us}us"
        ),
        schedule=schedule,
        sizer=sizer,
    )


# ----------------------------------------------------------------------
# fault-injection generators (each a deterministic function of its seed)
# ----------------------------------------------------------------------

def _rng(tag: str, seed: int) -> random.Random:
    return random.Random(f"sweep|{tag}|{seed}")


def flap_storm_schedule(
    graph: TopologyGraph,
    seed: int,
    n_flaps: int = 4,
    start_us: int = 4 * SECOND + 97_000,
    min_hold_us: int = SECOND // 2,
    max_hold_us: int = 3 * SECOND,
    gap_us: int = SECOND + 217_000,
    links: Optional[Sequence[Tuple[str, str]]] = None,
) -> EventSchedule:
    """A storm of independent link flaps; every link heals by the end.

    Victims are drawn per flap from ``links`` when given (an explicit
    target list, validated against the graph -- how damping scenarios
    concentrate a storm on one known link) or from the flappable set
    otherwise.  Hold times and gaps stay seed-drawn either way.
    """
    rng = _rng(f"flap|{graph.name}", seed)
    if links is not None:
        chosen = [tuple(link) for link in links]
        for a, b in chosen:
            if not any(
                (a, b) == (x, y) or (a, b) == (y, x) for x, y, _d in graph.edges
            ):
                raise ValueError(
                    f"flap storm names a link not in {graph.name}: {a}-{b}"
                )
        links = sorted(chosen)
    else:
        links = flappable_links(graph)
    if not links:
        raise ValueError(f"topology {graph.name} has no flappable links")
    schedule = EventSchedule()
    t = start_us
    for _ in range(n_flaps):
        link = links[rng.randrange(len(links))]
        hold = rng.randrange(min_hold_us, max_hold_us)
        schedule.add(ExternalEvent(time_us=t, kind=LINK_DOWN, target=link))
        schedule.add(ExternalEvent(time_us=t + hold, kind=LINK_UP, target=link))
        t += gap_us + rng.randrange(0, 311_000)
    return schedule


def crash_restart_schedule(
    graph: TopologyGraph,
    seed: int,
    n_crashes: int = 1,
    start_us: int = 4 * SECOND + 211_000,
    down_for_us: int = 3 * SECOND,
    gap_us: int = 5 * SECOND,
    nodes: Optional[Sequence[str]] = None,
) -> EventSchedule:
    """Routers die and come back: a ``node_down`` / ``node_up`` cycle per
    victim, victims drawn deterministically from the seed -- from an
    explicit ``nodes`` target list when given, the whole graph
    otherwise."""
    rng = _rng(f"crash|{graph.name}", seed)
    if nodes is not None:
        victims_pool = sorted(nodes)
        unknown = [node for node in victims_pool if node not in graph.nodes]
        if unknown:
            raise ValueError(
                f"crash/restart names nodes not in {graph.name}: {unknown}"
            )
        nodes = victims_pool
    else:
        nodes = sorted(graph.nodes)
    schedule = EventSchedule()
    t = start_us
    for _ in range(n_crashes):
        victim = nodes[rng.randrange(len(nodes))]
        schedule.add(ExternalEvent(time_us=t, kind=NODE_DOWN, target=victim))
        schedule.add(
            ExternalEvent(time_us=t + down_for_us, kind=NODE_UP, target=victim)
        )
        t += gap_us + rng.randrange(0, 293_000)
    return schedule


def partition_schedule(
    graph: TopologyGraph,
    seed: int,
    at_us: int = 4 * SECOND + 157_000,
    heal_after_us: int = 4 * SECOND,
) -> EventSchedule:
    """Cut the network into two halves, then heal it.

    A random bipartition (seed-derived) selects one side; every crossing
    link goes down at ``at_us`` and comes back ``heal_after_us`` later.
    """
    rng = _rng(f"partition|{graph.name}", seed)
    nodes = sorted(graph.nodes)
    if len(nodes) < 2:
        raise ValueError("cannot partition fewer than two nodes")
    side_size = rng.randrange(1, len(nodes))
    side = set(rng.sample(nodes, side_size))
    crossing = [
        (a, b) for a, b, _d in graph.edges if (a in side) != (b in side)
    ]
    schedule = EventSchedule()
    for link in crossing:
        schedule.add(ExternalEvent(time_us=at_us, kind=LINK_DOWN, target=link))
        schedule.add(
            ExternalEvent(time_us=at_us + heal_after_us, kind=LINK_UP, target=link)
        )
    return schedule


def zone_blackout_schedule(
    graph: TopologyGraph,
    seed: int,
    size: int = 2,
    nodes: Optional[Sequence[str]] = None,
    at_us: int = 4 * SECOND + 131_000,
    duration_us: int = 3 * SECOND,
) -> EventSchedule:
    """A correlated zone failure: several routers go dark *simultaneously*
    (shared power/cooling domain), then all restart together.

    Victims are either named explicitly or drawn seed-deterministically;
    at least one node always survives so the network keeps existing.
    """
    pool = sorted(graph.nodes)
    if nodes is not None:
        victims = sorted(nodes)
        unknown = [v for v in victims if v not in graph.nodes]
        if unknown:
            raise ValueError(
                f"zone blackout names nodes not in {graph.name}: {unknown}"
            )
        if len(victims) >= len(pool):
            raise ValueError("zone blackout must leave at least one node up")
    else:
        rng = _rng(f"zone|{graph.name}", seed)
        victims = sorted(rng.sample(pool, min(size, len(pool) - 1)))
    schedule = EventSchedule()
    for victim in victims:
        schedule.add(ExternalEvent(time_us=at_us, kind=NODE_DOWN, target=victim))
        schedule.add(
            ExternalEvent(time_us=at_us + duration_us, kind=NODE_UP, target=victim)
        )
    return schedule


def srlg_schedule(
    graph: TopologyGraph,
    seed: int,
    size: int = 2,
    links: Optional[Sequence[Tuple[str, str]]] = None,
    at_us: int = 4 * SECOND + 173_000,
    duration_us: int = 2 * SECOND,
) -> EventSchedule:
    """A shared-risk link group: several links fail *as one* (a common
    conduit cut) and are repaired together.

    The correlated simultaneous failure is the point -- independent flaps
    give each LSA wave time to converge, an SRLG cut does not.  Links are
    either named explicitly or drawn seed-deterministically from the
    flappable set (both endpoints keep degree >= 1).
    """
    if links is not None:
        group = [tuple(link) for link in links]
        for a, b in group:
            if not any(
                (a, b) == (x, y) or (a, b) == (y, x) for x, y, _d in graph.edges
            ):
                raise ValueError(f"SRLG names a link not in {graph.name}: {a}-{b}")
        group.sort()
    else:
        eligible = flappable_links(graph)
        if not eligible:
            raise ValueError(f"topology {graph.name} has no flappable links")
        rng = _rng(f"srlg|{graph.name}", seed)
        group = sorted(rng.sample(eligible, min(size, len(eligible))))
    schedule = EventSchedule()
    for link in group:
        schedule.add(ExternalEvent(time_us=at_us, kind=LINK_DOWN, target=link))
        schedule.add(
            ExternalEvent(time_us=at_us + duration_us, kind=LINK_UP, target=link)
        )
    return schedule


def ddos_overload_schedule(
    graph: TopologyGraph,
    seed: int,
    events_per_second: int = 8,
    n_events: int = 10,
    start_us: int = 4 * SECOND,
) -> EventSchedule:
    """An event-rate overload: a fixed-rate link-flap burst far above the
    normal workload, the regime where stop-and-wait delivery (the DDOS
    baseline stack) pays its worst-case holds."""
    return burst_schedule(
        graph, events_per_second, n_events, start_us=start_us, seed=seed
    )


# ----------------------------------------------------------------------
# builtin scenario families
# ----------------------------------------------------------------------

def _waxman_topology(tag: str, n: int) -> TopologyFactory:
    """Seed-varied Waxman graphs: each cell seed gets its own topology."""
    return waxman_family(tag, n)


def _scale_count(base_count: int, base_nodes: int, n: int) -> int:
    """Scale a schedule event count proportionally with the node count."""
    return max(1, round(base_count * n / base_nodes))


def _diamond_topology(seed: int) -> TopologyGraph:
    """The fixed four-node diamond used by the determinism tests."""
    del seed
    return TopologyGraph(
        name="diamond",
        nodes=["a", "b", "c", "d"],
        edges=[
            ("a", "b", 2_000),
            ("b", "c", 3_000),
            ("c", "d", 2_500),
            ("a", "d", 4_000),
            ("b", "d", 3_500),
        ],
    )


def flap_storm_scenario(
    name: str = "flap-storm",
    nodes: int = 8,
    n_flaps: int = 4,
) -> Scenario:
    return Scenario(
        name=name,
        description=f"{n_flaps} randomized link flaps on a {nodes}-node Waxman graph",
        topology=_waxman_topology(name, nodes),
        schedule=lambda graph, seed: flap_storm_schedule(graph, seed, n_flaps=n_flaps),
        expect=_expect_all_links_healed,
        tail_us=3 * SECOND,
        base_nodes=nodes,
        sizer=lambda n: flap_storm_scenario(
            name=name, nodes=n, n_flaps=_scale_count(n_flaps, nodes, n)
        ),
    )


def crash_restart_scenario(
    name: str = "crash-restart",
    nodes: int = 6,
    n_crashes: int = 1,
) -> Scenario:
    return Scenario(
        name=name,
        description=f"{n_crashes} router crash/restart cycle(s) on a {nodes}-node Waxman graph",
        topology=_waxman_topology(name, nodes),
        schedule=lambda graph, seed: crash_restart_schedule(
            graph, seed, n_crashes=n_crashes
        ),
        expect=_expect_all_nodes_up,
        tail_us=3 * SECOND,
        base_nodes=nodes,
        sizer=lambda n: crash_restart_scenario(
            name=name, nodes=n, n_crashes=_scale_count(n_crashes, nodes, n)
        ),
    )


def partition_scenario(
    name: str = "partition",
    nodes: int = 8,
) -> Scenario:
    return Scenario(
        name=name,
        description=f"random bipartition + heal on a {nodes}-node Waxman graph",
        topology=_waxman_topology(name, nodes),
        schedule=partition_schedule,
        expect=_expect_all_links_healed,
        tail_us=3 * SECOND,
        base_nodes=nodes,
        # the cut scales with the topology itself: every crossing link of
        # a seed-derived bipartition flaps, however many there are
        sizer=lambda n: partition_scenario(name=name, nodes=n),
    )


#: Node count of the fixed diamond topology the delay-stress scenarios
#: default to; their sizers re-base onto Waxman graphs from here.
_DIAMOND_NODES = 4


def latency_jitter_scenario(
    name: str = "latency-jitter",
    jitter_us: int = 2_500,
    nodes: Optional[int] = None,
    n_flaps: int = 2,
) -> Scenario:
    """Heavy per-packet link jitter: stresses the delay-sensitive ordering
    into actual rollbacks while determinism must still hold.

    Defaults to the fixed diamond topology the determinism tests use;
    ``nodes`` (or :meth:`Scenario.sized`) re-bases it onto an ``n``-node
    Waxman graph with the flap count scaled proportionally.
    """
    return Scenario(
        name=name,
        description=(
            f"{n_flaps} link flap(s) under {jitter_us}us per-packet latency jitter"
            + (f" on a {nodes}-node Waxman graph" if nodes else "")
        ),
        topology=(
            _diamond_topology if nodes is None else _waxman_topology(name, nodes)
        ),
        schedule=lambda graph, seed: flap_storm_schedule(
            graph, seed, n_flaps=n_flaps,
            min_hold_us=2 * SECOND, max_hold_us=4 * SECOND,
        ),
        jitter_us=jitter_us,
        tail_us=3 * SECOND,
        base_nodes=nodes if nodes is not None else _DIAMOND_NODES,
        sizer=lambda n: latency_jitter_scenario(
            name=name, jitter_us=jitter_us, nodes=n,
            n_flaps=_scale_count(n_flaps, nodes or _DIAMOND_NODES, n),
        ),
    )


def ddos_overload_scenario(
    name: str = "ddos-overload",
    events_per_second: int = 8,
    n_events: int = 8,
    nodes: Optional[int] = None,
) -> Scenario:
    """Event-rate overload, also run through the stop-and-wait DDOS
    baseline stack (:mod:`repro.baselines.ddos`) to contrast blocking
    determinism with DEFINED-RB's speculation under load."""
    return Scenario(
        name=name,
        description=(
            f"{events_per_second}/s link-event burst; includes the DDOS "
            "stop-and-wait baseline mode"
            + (f" (on a {nodes}-node Waxman graph)" if nodes else "")
        ),
        topology=(
            _diamond_topology if nodes is None else _waxman_topology(name, nodes)
        ),
        schedule=lambda graph, seed: ddos_overload_schedule(
            graph, seed, events_per_second=events_per_second, n_events=n_events
        ),
        expect=_expect_all_links_healed,
        modes=("vanilla", "defined", "ddos"),
        tail_us=4 * SECOND,
        base_nodes=nodes if nodes is not None else _DIAMOND_NODES,
        sizer=lambda n: ddos_overload_scenario(
            name=name, events_per_second=events_per_second,
            n_events=_scale_count(n_events, nodes or _DIAMOND_NODES, n),
            nodes=n,
        ),
    )


def _expect_all_links_healed(result: ProductionResult) -> bool:
    return all(link.up for link in result.network.links.values())


def _expect_all_nodes_up(result: ProductionResult) -> bool:
    return all(node.up for node in result.network.nodes.values())


def _expect_damping(
    min_suppressed: Optional[int] = None,
    released_by_end: Optional[bool] = None,
) -> Callable[[ProductionResult], bool]:
    """Build a route-flap-damping expectation predicate.

    Replays the run's observed link-down transitions (one virtual-time
    unit per beacon interval) through a reference
    :class:`~repro.routing.damping.FlapDampener` at its paper defaults:

    * ``min_suppressed``: at least this many downs land while the link
      is suppressed -- pins that the storm is dense enough to trip
      damping at all;
    * ``released_by_end``: by run end the penalty has decayed below the
      reuse threshold on every link -- pins that the scenario's tail is
      long enough for suppression to release.

    The dampener is a pure function of the transition log, so the
    predicate is as deterministic as the run that produced it.
    """

    def predicate(result: ProductionResult) -> bool:
        from repro.routing.damping import FlapDampener

        network = result.network
        unit = network.time_unit_us
        dampener = FlapDampener()
        links_seen = set()
        suppressed_downs = 0
        for time_us, link_id, up in network.link_transitions:
            if up:
                continue
            links_seen.add(link_id)
            if dampener.flap(link_id, time_us // unit):
                suppressed_downs += 1
        if min_suppressed is not None and suppressed_downs < min_suppressed:
            return False
        if released_by_end:
            end_vt = network.sim.now // unit
            if any(dampener.poll(link_id, end_vt) for link_id in sorted(links_seen)):
                return False
        return True

    return predicate


# ----------------------------------------------------------------------
# grid cells and the worker (module-level, so it pickles)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SweepCell:
    """One point of the grid: a pure function of these fields.

    ``seed`` drives the *workload* (topology + external schedule).
    ``jitter_seed``, when set, re-seeds only the network timing (link
    jitter, cost sampling) -- the seed-invariance probe runs the same
    workload under several jitter seeds and checks that deterministic
    modes collapse to one fingerprint.  ``repeat`` disambiguates the
    probe's re-executions in reports.

    ``window_us`` / ``jitter_us`` override the shim's history window and
    the scenario's per-packet delivery jitter for this one cell -- the
    two axes the window-envelope mapper (:mod:`repro.envelope`) grids
    over.  ``check_invariant=False`` skips the DEFINED-LS replay of a
    ``defined`` cell: envelope *mapping* cells run deliberately
    undersized windows where late deliveries forfeit determinism, so a
    Theorem-1 check would only measure the mis-configuration; the
    verification re-run at the suggested window turns it back on."""

    scenario: str
    seed: int
    mode: str
    repeat: int = 0
    jitter_seed: Optional[int] = None
    window_us: Optional[int] = None
    jitter_us: Optional[int] = None
    check_invariant: bool = True
    #: Checkpoint mechanism override for the DEFINED stacks ("cow" /
    #: "deepcopy"; None = the harness default).  The differential
    #: snapshot tests sweep the same grid under both values and demand
    #: bit-identical fingerprints.
    snapshots: Optional[str] = None
    #: When set, a ``defined`` cell whose Theorem-1 check fails archives
    #: both executions as content-addressed run bundles in this
    #: directory (the production bundle embeds the recording, so the
    #: divergence is replayable offline with ``repro diff``).  Workers
    #: write the bundles themselves: the fixed-width result record
    #: cannot carry paths.
    artifact_dir: Optional[str] = None

    @property
    def network_seed(self) -> int:
        """The seed the simulated network's timing draws from."""
        return self.seed if self.jitter_seed is None else self.jitter_seed


@dataclass(frozen=True)
class CellResult:
    """The picklable outcome of one grid cell."""

    scenario: str
    seed: int
    mode: str
    repeat: int = 0
    #: Jitter seed the network timing actually ran under (None: same as
    #: ``seed``); carried so seed-invariance splits are attributable.
    jitter_seed: Optional[int] = None
    #: The cell's overrides, echoed back (None: scenario defaults) so
    #: envelope grids can group results by their (window, jitter) axes.
    window_us: Optional[int] = None
    jitter_us: Optional[int] = None
    #: Checkpoint mechanism the cell ran under (None: harness default).
    snapshots: Optional[str] = None
    fingerprint: str = ""
    replay_fingerprint: Optional[str] = None
    #: Theorem-1 check (``defined`` cells only): replay == production.
    invariant_ok: Optional[bool] = None
    #: Scenario-level expected-outcome predicate, when one is declared.
    expected_ok: Optional[bool] = None
    #: Deterministic-delivery check for instrumented modes: no ordering
    #: misses slipped through (late deliveries are rollback-repaired in
    #: ``defined`` mode, so they must net out to zero only for ``ddos``).
    late_deliveries: int = 0
    rollbacks: int = 0
    deliveries: int = 0
    recording_bytes: Optional[int] = None
    #: Measured history-window headroom (``defined`` cells only): the
    #: slack-deficit distribution plus the *effective* window the run
    #: used -- the envelope mapper's raw material.
    headroom: Optional[WindowHeadroomStats] = None
    #: Per-node headroom for nodes that went late (worst offenders only
    #: when streamed; see ``repro.sweep_stream.NODE_HEADROOM_SLOTS``).
    #: Keys are node ids; lets the envelope recommend per-node windows.
    node_headroom: Optional[Dict[str, WindowHeadroomStats]] = None
    wall_seconds: float = 0.0
    error: Optional[str] = None
    #: Executions this result took (supervised retries; 1 elsewhere).
    attempts: int = 1
    #: Coverage accounting (see :meth:`SweepReport.coverage`):
    #: ``completed`` -- the cell executed to a final answer (error or
    #: not); ``timed_out`` -- reaped past the supervised deadline;
    #: ``quarantined`` -- parked after exhausting transient retries;
    #: ``resumed`` -- replayed from a journal instead of executed.
    outcome: str = "completed"

    @property
    def key(self) -> Tuple[str, int, str]:
        return (self.scenario, self.seed, self.mode)

    @property
    def network_seed_label(self) -> int:
        return self.seed if self.jitter_seed is None else self.jitter_seed

    @property
    def ok(self) -> bool:
        return (
            self.error is None
            and self.invariant_ok is not False
            and self.expected_ok is not False
        )


def _archive_divergence(cell: SweepCell, production, replay) -> None:
    """Write both sides of a failed Theorem-1 check as run bundles.

    Bundle writing must never sink the cell: the divergence itself is
    the result, the artifact is a debugging convenience, so I/O errors
    degrade to a warning.
    """
    from repro.artifact import RunBundle

    context = {
        "scenario": cell.scenario,
        "seed": cell.seed,
        "jitter_seed": cell.jitter_seed,
        "window_us": cell.window_us,
        "jitter_us": cell.jitter_us,
        "snapshots": cell.snapshots,
    }
    try:
        os.makedirs(cell.artifact_dir, exist_ok=True)
        RunBundle.from_production(production, context=context).save(
            cell.artifact_dir
        )
        RunBundle.from_replay(replay, context=context).save(cell.artifact_dir)
    except OSError as exc:  # pragma: no cover - disk-full/permission paths
        import warnings

        warnings.warn(
            f"could not archive divergence bundles for "
            f"{cell.scenario}/seed={cell.seed}: {exc}",
            RuntimeWarning,
            stacklevel=2,
        )


def run_cell(cell: SweepCell) -> CellResult:
    """Execute one grid cell in the current process.

    Builds a fresh topology, schedule and :class:`Simulator` from the
    cell's seed, runs the production network, and -- for ``defined``
    cells -- replays the partial recording through DEFINED-LS and checks
    the Theorem-1 invariant.  The workload (topology + schedule) always
    derives from ``cell.seed``; the network's timing draws from
    ``cell.network_seed``, so the seed-invariance probe can vary timing
    under a pinned workload.  Never raises: failures come back as
    ``error`` so one bad cell cannot sink a whole sweep.
    """
    _ensure_builtins()
    start = time.perf_counter()
    try:
        scenario = get_scenario(cell.scenario)
        graph = scenario.topology(cell.seed)
        schedule = scenario.schedule(graph, cell.seed)
        daemon_factory = scenario.daemon(graph) if scenario.daemon else None
        snapshots = cell.snapshots if cell.snapshots is not None else "cow"
        # like the schedule, the tuning is workload: same cell.seed under
        # a different jitter seed must perturb the same nodes/links
        tuning = (
            scenario.tuning(graph, cell.seed) if scenario.tuning is not None else None
        )
        result = run_production(
            graph,
            schedule,
            mode=cell.mode,
            seed=cell.network_seed,
            jitter_us=(
                cell.jitter_us if cell.jitter_us is not None
                else scenario.jitter_us
            ),
            ordering=scenario.ordering,
            daemon_factory=daemon_factory,
            measure_convergence=False,
            settle_us=scenario.settle_us,
            tail_us=scenario.tail_us,
            window_us=cell.window_us,
            snapshots=snapshots,
            tuning=tuning,
        )
        replay_fp: Optional[str] = None
        invariant: Optional[bool] = None
        recording_bytes: Optional[int] = None
        if cell.mode == "defined":
            assert result.recording is not None
            recording_bytes = result.recording.size_bytes()
            if cell.check_invariant:
                replay = run_ls_replay(
                    graph,
                    result.recording,
                    ordering=scenario.ordering,
                    daemon_factory=daemon_factory,
                    snapshots=snapshots,
                )
                replay_fp = replay.fingerprint
                invariant = replay_fp == result.fingerprint
                if invariant is False and cell.artifact_dir:
                    _archive_divergence(cell, result, replay)
        expected = scenario.expect(result) if scenario.expect else None
        return CellResult(
            scenario=cell.scenario,
            seed=cell.seed,
            mode=cell.mode,
            repeat=cell.repeat,
            jitter_seed=cell.jitter_seed,
            window_us=cell.window_us,
            jitter_us=cell.jitter_us,
            snapshots=cell.snapshots,
            fingerprint=result.fingerprint,
            replay_fingerprint=replay_fp,
            invariant_ok=invariant,
            expected_ok=expected,
            late_deliveries=result.late_deliveries,
            rollbacks=result.rollbacks,
            deliveries=sum(len(log) for log in result.logs.values()),
            recording_bytes=recording_bytes,
            headroom=result.headroom,
            node_headroom=result.node_headroom or None,
            wall_seconds=time.perf_counter() - start,
        )
    except Exception as exc:  # pragma: no cover - exercised via error cells
        return CellResult(
            scenario=cell.scenario,
            seed=cell.seed,
            mode=cell.mode,
            repeat=cell.repeat,
            jitter_seed=cell.jitter_seed,
            window_us=cell.window_us,
            jitter_us=cell.jitter_us,
            snapshots=cell.snapshots,
            wall_seconds=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )


def _merge_streamed(cell: SweepCell, payload: Dict) -> CellResult:
    """Rebuild a :class:`CellResult` from a streamed record's payload.

    The fixed-width record intentionally omits the cell identity (the
    parent already holds the grid); this re-attaches it.
    """
    return CellResult(
        scenario=cell.scenario,
        seed=cell.seed,
        mode=cell.mode,
        repeat=cell.repeat,
        jitter_seed=cell.jitter_seed,
        window_us=cell.window_us,
        jitter_us=cell.jitter_us,
        snapshots=cell.snapshots,
        **payload,
    )


def _spawn_portable(name: str) -> bool:
    """Whether a spawned worker (fresh interpreter, builtin catalogue
    only) can resolve this scenario name: either it is a builtin, or it
    is a composed/sized/jittered spec over builtin components."""
    if name in _BUILTIN_NAMES:
        return True
    try:
        spec, _ = _split_trailing_jitter(name)
    except ValueError:
        return False  # malformed: resolution will fail loudly anyway
    paren = _PAREN_SPEC.match(spec)
    if paren:
        spec = paren.group("base")

    def portable_part(part: str) -> bool:
        if part in _BUILTIN_NAMES:
            return True
        try:
            part, _ = _split_trailing_jitter(part)
        except ValueError:
            return False
        size_match = _SIZE_SUFFIX.match(part)
        if size_match:
            part = size_match.group("base")
        if _is_scenario_file(part):
            # workers share the filesystem; a missing/invalid file fails
            # loudly in the worker the same way it would in the parent
            return True
        return (
            part in _BUILTIN_NAMES
            or part.replace("_", "-") in _BUILTIN_NAMES
        )

    return all(portable_part(part) for part in spec.split("+"))


# ----------------------------------------------------------------------
# the runner and its report
# ----------------------------------------------------------------------

@dataclass
class SweepReport:
    """Aggregated sweep results plus the determinism verdicts."""

    cells: List[CellResult]
    seeds: Tuple[int, ...]
    workers: int
    repeats: int
    wall_seconds: float = 0.0

    # -- verdicts ------------------------------------------------------
    def errors(self) -> List[CellResult]:
        return [c for c in self.cells if c.error is not None]

    def invariant_violations(self) -> List[CellResult]:
        """DEFINED cells where the replay diverged from production."""
        return [c for c in self.cells if c.invariant_ok is False]

    def expectation_failures(self) -> List[CellResult]:
        return [c for c in self.cells if c.expected_ok is False]

    def ordering_misses(self) -> List[CellResult]:
        """Instrumented cells that delivered out of deterministic order.
        ``defined`` repairs late arrivals by rollback, so only ``ddos``
        (which cannot roll back) counts here."""
        return [
            c for c in self.cells if c.mode == "ddos" and c.late_deliveries > 0
        ]

    def invariance_splits(self) -> List[Tuple[str, int, str]]:
        """Seed-invariance breaches: (scenario, seed, mode) groups whose
        re-executions under different jitter seeds produced more than one
        fingerprint in a *deterministic* mode.

        ``defined`` and ``ddos`` guarantee timing-independence -- the
        same workload must fingerprint identically under any jitter seed.
        ``vanilla``/``logging`` carry no such guarantee (their splits are
        the paper's motivation), so they are reported in the distinct-
        fingerprint matrix but are not failures."""
        seen: Dict[Tuple[str, int, str], str] = {}
        bad: List[Tuple[str, int, str]] = []
        for c in self.cells:
            if c.error is not None or c.mode not in DETERMINISTIC_MODES:
                continue
            prior = seen.setdefault(c.key, c.fingerprint)
            if prior != c.fingerprint and c.key not in bad:
                bad.append(c.key)
        return bad

    # backwards-compatible alias (pre-probe name)
    repeat_mismatches = invariance_splits

    # -- coverage accounting -------------------------------------------
    def timed_out(self) -> List[CellResult]:
        """Cells the supervised watchdog reaped past their deadline."""
        return [c for c in self.cells if c.outcome == "timed_out"]

    def quarantined(self) -> List[CellResult]:
        """Cells parked after exhausting their transient-retry budget."""
        return [c for c in self.cells if c.outcome == "quarantined"]

    def resumed(self) -> List[CellResult]:
        """Cells replayed from a resume journal instead of executed."""
        return [c for c in self.cells if c.outcome == "resumed"]

    def coverage(self) -> Dict[str, int]:
        """What the grid actually did, cell by cell.

        A partial report must never masquerade as a full one: any
        non-zero ``timed_out``/``quarantined`` count means coverage
        gaps, and ``resumed`` says how much of the grid was inherited
        from a journal rather than executed here.
        """
        counts = {"completed": 0, "resumed": 0, "timed_out": 0, "quarantined": 0}
        for c in self.cells:
            counts[c.outcome] = counts.get(c.outcome, 0) + 1
        counts["cells"] = len(self.cells)
        return counts

    def semantic_digest(self) -> str:
        """Order-insensitive content hash of the grid's semantic outcomes.

        Covers exactly what the grid *computed* -- cell identities,
        fingerprints, verdicts, counters, headroom -- and excludes how
        it was computed: wall seconds, attempt counts, worker topology,
        and outcome provenance (``resumed`` vs ``completed``).  An
        interrupted grid resumed from its journal must therefore digest
        identically to the same grid run uninterrupted; the CI
        interrupted-grid job pins this.
        """
        from repro.artifact.bundle import canonical_json

        rows = []
        for c in self.cells:
            rows.append({
                "scenario": c.scenario,
                "seed": c.seed,
                "mode": c.mode,
                "repeat": c.repeat,
                "jitter_seed": c.jitter_seed,
                "window_us": c.window_us,
                "jitter_us": c.jitter_us,
                "snapshots": c.snapshots,
                "fingerprint": c.fingerprint,
                "replay_fingerprint": c.replay_fingerprint,
                "invariant_ok": c.invariant_ok,
                "expected_ok": c.expected_ok,
                "late_deliveries": c.late_deliveries,
                "rollbacks": c.rollbacks,
                "deliveries": c.deliveries,
                "recording_bytes": c.recording_bytes,
                "headroom": (
                    c.headroom.to_dict() if c.headroom is not None else None
                ),
                "node_headroom": (
                    {n: hr.to_dict() for n, hr in sorted(c.node_headroom.items())}
                    if c.node_headroom
                    else None
                ),
                "error": c.error,
            })
        rows.sort(key=canonical_json)
        doc = {"seeds": list(self.seeds), "repeats": self.repeats, "cells": rows}
        return hashlib.sha256(canonical_json(doc).encode("ascii")).hexdigest()

    def ok(self) -> bool:
        return not (
            self.errors()
            or self.invariant_violations()
            or self.expectation_failures()
            or self.ordering_misses()
            or self.invariance_splits()
        )

    # -- aggregation ---------------------------------------------------
    def fingerprint_index(self) -> Dict[Tuple[str, int, str, int], str]:
        """(scenario, seed, mode, repeat) -> fingerprint, for equivalence
        checks between serial and parallel executions."""
        return {
            (c.scenario, c.seed, c.mode, c.repeat): c.fingerprint
            for c in self.cells
        }

    def scenario_names(self) -> List[str]:
        return sorted({c.scenario for c in self.cells})

    def modes(self) -> List[str]:
        order = {"vanilla": 0, "defined": 1, "ddos": 2, "logging": 3}
        return sorted({c.mode for c in self.cells}, key=lambda m: (order.get(m, 9), m))

    def distinct_fingerprints(self, scenario: str, mode: str) -> int:
        fps = {
            c.fingerprint
            for c in self.cells
            if c.scenario == scenario and c.mode == mode and c.error is None
        }
        return len(fps)

    def _group(self, scenario: str, mode: str) -> List[CellResult]:
        return [c for c in self.cells if c.scenario == scenario and c.mode == mode]

    # -- rendering -----------------------------------------------------
    def summary_rows(self) -> List[List]:
        rows = []
        for scenario in self.scenario_names():
            for mode in self.modes():
                group = self._group(scenario, mode)
                if not group:
                    continue
                errors = sum(1 for c in group if c.error is not None)
                invariant = [c for c in group if c.invariant_ok is not None]
                rows.append([
                    scenario,
                    mode,
                    len(group),
                    self.distinct_fingerprints(scenario, mode),
                    ("-" if not invariant
                     else f"{sum(1 for c in invariant if c.invariant_ok)}/{len(invariant)}"),
                    sum(c.rollbacks for c in group),
                    sum(c.late_deliveries for c in group),
                    errors,
                    sum(c.wall_seconds for c in group),
                ])
        return rows

    def render(self) -> str:
        parts = [
            render_table(
                "scenario sweep: divergence / determinism",
                ["scenario", "mode", "cells", "fingerprints",
                 "theorem1", "rollbacks", "late", "errors", "wall (s)"],
                self.summary_rows(),
            )
        ]
        matrix = {
            scenario: {
                mode: (str(self.distinct_fingerprints(scenario, mode))
                       if self._group(scenario, mode) else "-")
                for mode in self.modes()
            }
            for scenario in self.scenario_names()
        }
        parts.append("")
        parts.append(render_matrix(
            f"distinct fingerprints across {len(self.seeds)} seed(s) "
            f"x {self.repeats} jitter-seed repeat(s)  "
            "[defined/ddos: 1 per seed == seed-invariant]",
            "scenario",
            self.modes(),
            matrix,
        ))
        verdict = []
        for label, items in [
            ("errors", self.errors()),
            ("Theorem-1 violations", self.invariant_violations()),
            ("expectation failures", self.expectation_failures()),
            ("ordering misses (ddos)", self.ordering_misses()),
            ("seed-invariance splits", self.invariance_splits()),
        ]:
            if items:
                verdict.append(f"{label}: {len(items)}")
        parts.append("")
        parts.append(
            f"grid: {len(self.cells)} cells, {self.workers} worker(s), "
            f"{self.wall_seconds:.2f}s wall"
        )
        coverage = self.coverage()
        if (
            coverage["timed_out"]
            or coverage["quarantined"]
            or coverage["resumed"]
        ):
            parts.append(
                "coverage: "
                f"{coverage['completed']} completed, "
                f"{coverage['resumed']} resumed from journal, "
                f"{coverage['timed_out']} timed out, "
                f"{coverage['quarantined']} quarantined"
            )
        parts.append(
            "verdict: OK -- every DEFINED cell reproduced bit-for-bit"
            if self.ok()
            else "verdict: FAILED -- " + "; ".join(verdict)
        )
        return "\n".join(parts)

    def to_dict(self) -> Dict:
        """JSON-serializable divergence report (the CI artifact).

        Summarizes the grid and carries every divergence in full --
        errors, Theorem-1 violations, expectation failures, ordering
        misses, and seed-invariance splits (with the per-jitter-seed
        fingerprints that refused to collapse)."""
        def cell_dict(c: CellResult) -> Dict:
            return {
                "scenario": c.scenario,
                "seed": c.seed,
                "mode": c.mode,
                "repeat": c.repeat,
                "error": c.error,
                "outcome": c.outcome,
                "attempts": c.attempts,
                "invariant_ok": c.invariant_ok,
                "expected_ok": c.expected_ok,
                "late_deliveries": c.late_deliveries,
                "snapshots": c.snapshots,
                "fingerprint": c.fingerprint,
                "replay_fingerprint": c.replay_fingerprint,
                "headroom": (
                    c.headroom.to_dict() if c.headroom is not None else None
                ),
                "node_headroom": (
                    {n: hr.to_dict() for n, hr in sorted(c.node_headroom.items())}
                    if c.node_headroom else None
                ),
            }

        splits = []
        for scenario, seed, mode in self.invariance_splits():
            group = [
                c for c in self.cells
                if c.key == (scenario, seed, mode) and c.error is None
            ]
            splits.append({
                "scenario": scenario,
                "seed": seed,
                "mode": mode,
                "fingerprints": {
                    str(c.network_seed_label): c.fingerprint for c in group
                },
            })

        return {
            "ok": self.ok(),
            "grid_cells": len(self.cells),
            "seeds": list(self.seeds),
            "repeats": self.repeats,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "coverage": self.coverage(),
            "semantic_digest": self.semantic_digest(),
            "timed_out": [cell_dict(c) for c in self.timed_out()],
            "quarantined": [cell_dict(c) for c in self.quarantined()],
            "errors": [cell_dict(c) for c in self.errors()],
            "theorem1_violations": [
                cell_dict(c) for c in self.invariant_violations()
            ],
            "expectation_failures": [
                cell_dict(c) for c in self.expectation_failures()
            ],
            "ordering_misses": [cell_dict(c) for c in self.ordering_misses()],
            "invariance_splits": splits,
        }


#: Fixed override for the shared-memory result ring's slot count.  The
#: default (``None``) sizes the ring adaptively from the grid size and
#: the record width (:func:`repro.sweep_stream.adaptive_ring_capacity`);
#: set an integer to pin it (tests use tiny rings to exercise
#: backpressure).
STREAM_RING_CAPACITY: Optional[int] = None


class SweepRunner:
    """Shard a scenario x seed x mode grid across worker processes.

    ``workers=1`` runs everything inline (same process, deterministic
    order); ``workers>1`` fans cells out to a process pool.  Either way
    :meth:`run` returns results ordered by the grid, so two runs of the
    same grid are comparable cell by cell.

    With ``workers > 1`` and ``transport="shm"`` (the default), workers
    append fixed-width result records to a bounded
    :mod:`multiprocessing.shared_memory` ring that the parent consumes
    incrementally (:mod:`repro.sweep_stream`): progress callbacks fire
    in *completion* order as cells finish, and the parent never holds
    more than the ring's worth of in-flight transport state.
    ``transport="futures"`` keeps the one-pickled-future-per-cell path
    (the pre-streaming behavior, retained for comparison benchmarks).

    ``repeats=K`` arms the **seed-invariance probe**: every
    (scenario, seed, mode) cell runs under ``K`` jitter seeds (repeat 0
    uses the workload seed itself; later repeats use seed-split
    derivations), and :meth:`SweepReport.invariance_splits` demands the
    deterministic modes collapse to one fingerprint per cell.
    """

    def __init__(
        self,
        scenarios: Optional[Sequence[str]] = None,
        seeds: Sequence[int] = (1, 2, 3),
        modes: Optional[Sequence[str]] = None,
        workers: int = 1,
        repeats: int = 1,
        transport: str = "shm",
        snapshots: Optional[str] = None,
        artifact_dir: Optional[str] = None,
        cell_timeout_s: Optional[float] = None,
        retries: Optional[int] = None,
        journal_dir: Optional[str] = None,
        resume_dir: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        if transport not in ("shm", "futures"):
            raise ValueError(f"unknown transport {transport!r}")
        #: Supervision policy (see :mod:`repro.supervise`): armed when a
        #: per-cell deadline or a retry budget is configured, inert
        #: otherwise -- the legacy execution paths are untouched unless
        #: the caller opts in.
        self.policy = None
        if cell_timeout_s is not None or retries is not None:
            from repro.supervise import SupervisionPolicy
            from repro.supervise.executor import DEFAULT_RETRIES

            if transport == "futures":
                raise ValueError(
                    "supervised execution (cell_timeout_s/retries) requires "
                    "the shm transport"
                )
            self.policy = SupervisionPolicy(
                cell_timeout_s=cell_timeout_s,
                retries=retries if retries is not None else DEFAULT_RETRIES,
            )
        #: Cell-journal directory (append-only, crash-safe): every
        #: finished cell is durably recorded so an interrupted grid can
        #: be resumed.  ``resume_dir`` replays completed cells from an
        #: existing journal *and* keeps journaling into it (unless a
        #: separate ``journal_dir`` is given), so a twice-interrupted
        #: grid keeps one linear history.
        self.journal_dir = journal_dir
        self.resume_dir = resume_dir
        if snapshots is not None:
            from repro.core.statestore import SnapshotStrategy

            snapshots = SnapshotStrategy.of(snapshots).value  # fail fast
        # the default grid: every registered scenario except the @N size
        # variants, which opt in by name (an 80-node cell takes minutes;
        # pulling it into every smoke sweep would be a footgun)
        self.scenario_names = (
            list(scenarios)
            if scenarios is not None
            else scenario_names(include_sized=False)
        )
        for name in self.scenario_names:
            get_scenario(name)  # fail fast on unknown names
        self.seeds = tuple(seeds)
        self.modes = tuple(modes) if modes is not None else None
        self.workers = workers
        self.repeats = repeats
        self.transport = transport
        self.snapshots = snapshots
        #: Directory Theorem-1 divergences are archived into as run
        #: bundles (None: no archiving); see :attr:`SweepCell.artifact_dir`.
        self.artifact_dir = artifact_dir

    def _worker_context(self):
        """Multiprocessing context for the pool.

        Workers rebuild the registry by importing :mod:`repro.scenarios`,
        which only covers the builtin catalogue -- scenarios registered at
        runtime by the caller exist solely in this process.  A forked
        worker inherits them; a spawned/forkserver worker does not (the
        default on macOS/Windows, and on Linux from Python 3.14).  Prefer
        fork where available; otherwise runtime-registered scenarios
        cannot cross the process boundary, so fail loudly instead of
        erroring on every cell.
        """
        import multiprocessing

        try:
            return multiprocessing.get_context("fork")
        except ValueError:
            custom = sorted(
                name for name in self.scenario_names if not _spawn_portable(name)
            )
            if custom:
                raise ValueError(
                    f"scenarios {custom} are registered at runtime and cannot "
                    "reach spawn-based worker processes; run with workers=1 or "
                    "register them at import time in repro.scenarios"
                )
            return None

    def grid(self) -> List[SweepCell]:
        cells = []
        for name in self.scenario_names:
            scenario = get_scenario(name)
            modes = self.modes if self.modes is not None else scenario.modes
            for seed in self.seeds:
                for mode in modes:
                    for repeat in range(self.repeats):
                        # repeat 0 keeps the legacy identity (network
                        # seeded by the workload seed); later repeats are
                        # the invariance probe's extra jitter seeds
                        jitter_seed = (
                            None if repeat == 0
                            else seed_split(seed, f"jitter-repeat|{repeat}")
                        )
                        cells.append(
                            SweepCell(
                                name, seed, mode, repeat, jitter_seed,
                                snapshots=self.snapshots,
                                artifact_dir=self.artifact_dir,
                            )
                        )
        return cells

    def run(self, progress: Optional[Callable[[CellResult], None]] = None) -> SweepReport:
        """Run the whole grid and aggregate a :class:`SweepReport`.

        ``progress`` fires once per finished cell -- in grid order for
        serial/futures execution, in completion order for the streamed
        transport.  The report's cell list is always grid-ordered.
        """
        cells = self.grid()
        start = time.perf_counter()
        return SweepReport(
            cells=self.run_cells(cells, progress=progress),
            seeds=self.seeds,
            workers=self.workers,
            repeats=self.repeats,
            wall_seconds=time.perf_counter() - start,
        )

    def run_cells(
        self,
        cells: Sequence[SweepCell],
        progress: Optional[Callable[[CellResult], None]] = None,
    ) -> List[CellResult]:
        """Execute an explicit cell list (same transports as :meth:`run`),
        returning results in the given cell order.

        This is the execution surface for callers that build their own
        grids with per-cell overrides -- the window-envelope mapper grids
        (scenario, jitter, window, seed) rather than this runner's
        (scenario, seed, mode, repeat)."""
        by_index: Dict[int, CellResult] = {}
        for index, result in self._iter_results(list(cells), progress):
            by_index[index] = result
        return [by_index[i] for i in range(len(cells))]

    def stream(
        self, progress: Optional[Callable[[CellResult], None]] = None
    ):
        """Yield :class:`CellResult` objects as cells finish, without
        retaining them: the constant-memory consumption surface for very
        large grids (aggregate on the fly, or ship each record
        elsewhere).  Ordering follows :meth:`run`'s ``progress`` rules.
        """
        for _index, result in self._iter_results(self.grid(), progress):
            yield result

    # -- execution strategies ------------------------------------------
    def _iter_results(
        self,
        cells: Sequence[SweepCell],
        progress: Optional[Callable[[CellResult], None]],
    ):
        """Dispatch + the journal/resume wrapper around every transport.

        Without a journal or resume directory this is a pass-through to
        :meth:`_execute` (the legacy paths, byte-identical behavior).
        With one, completed cells from the resume journal are yielded
        first (outcome ``resumed``, no execution), and every newly
        executed cell is durably journaled before it is yielded -- so a
        sweep killed at any instant can resume from its journal.
        """
        cells = list(cells)
        journal_dir = self.journal_dir or self.resume_dir
        if journal_dir is None and self.resume_dir is None:
            yield from self._execute(cells, progress)
            return

        from repro.supervise.journal import (
            CellJournal,
            cell_fingerprint,
            load_completed,
            payload_to_result,
        )

        resumed: Dict[int, CellResult] = {}
        if self.resume_dir is not None:
            completed = load_completed(self.resume_dir)
            for index, cell in enumerate(cells):
                record = completed.get(cell_fingerprint(cell))
                if record is not None:
                    resumed[index] = payload_to_result(cell, record["result"])
        journal = CellJournal(journal_dir)
        for index, result in resumed.items():
            if progress is not None:
                progress(result)
            yield index, result
        todo = [index for index in range(len(cells)) if index not in resumed]
        if not todo:
            return
        # progress fires here (after journaling), not in the inner path,
        # so a callback exception can never lose a journal write
        for sub_index, result in self._execute([cells[i] for i in todo], None):
            index = todo[sub_index]
            journal.record(cells[index], result)
            if progress is not None:
                progress(result)
            yield index, result

    def _execute(
        self,
        cells: Sequence[SweepCell],
        progress: Optional[Callable[[CellResult], None]],
    ):
        if self.policy is not None and cells:
            yield from self._iter_supervised(cells, progress)
        elif self.workers == 1 or not cells:
            for index, cell in enumerate(cells):
                result = run_cell(cell)
                if progress is not None:
                    progress(result)
                yield index, result
        elif self.transport == "futures":
            yield from self._iter_futures(cells, progress)
        else:
            yield from self._iter_streamed(cells, progress)

    def _iter_supervised(self, cells, progress):
        """Supervised execution: deadlines, classified retries, quarantine.

        ``workers=1`` without a deadline retries inline (no pool); any
        configured deadline needs a separate process to reap, so those
        grids run on a supervised pool even single-worker.
        """
        from repro.supervise.executor import (
            inline_supervised_iter,
            supervised_iter,
        )

        if self.workers == 1 and self.policy.cell_timeout_s is None:
            yield from inline_supervised_iter(
                cells,
                self.policy,
                artifact_dir=self.artifact_dir,
                progress=progress,
            )
            return

        import multiprocessing

        from repro.sweep_stream import adaptive_ring_capacity

        ctx = self._worker_context() or multiprocessing.get_context()
        capacity = (
            adaptive_ring_capacity(len(cells))
            if STREAM_RING_CAPACITY is None
            else max(2, min(len(cells), STREAM_RING_CAPACITY))
        )
        produced = 0
        try:
            for item in supervised_iter(
                cells,
                workers=self.workers,
                ctx=ctx,
                policy=self.policy,
                ring_capacity=capacity,
                artifact_dir=self.artifact_dir,
                progress=progress,
            ):
                produced += 1
                yield item
        except OSError as exc:  # pragma: no cover - no usable shared memory
            if produced:
                raise
            import warnings

            warnings.warn(
                f"shared-memory result ring unavailable ({exc}); watchdog "
                "deadlines disabled, falling back to inline supervised "
                "execution",
                RuntimeWarning,
                stacklevel=3,
            )
            yield from inline_supervised_iter(
                cells,
                self.policy,
                artifact_dir=self.artifact_dir,
                progress=progress,
            )

    def _iter_futures(self, cells, progress):
        """Legacy transport: one pickled result future per grid cell."""
        with ProcessPoolExecutor(
            max_workers=self.workers, mp_context=self._worker_context()
        ) as pool:
            for index, result in enumerate(pool.map(run_cell, cells)):
                if progress is not None:
                    progress(result)
                yield index, result

    def _iter_streamed(self, cells, progress):
        """Shared-memory transport: workers append fixed-width records
        to a bounded ring; the parent consumes incrementally.

        A worker that dies without reporting (hard crash, OOM kill)
        surfaces as a failed cell -- the pool breaks, the ring is
        drained, and every unreported cell yields a synthesized error
        result instead of hanging the sweep.
        """
        import multiprocessing
        from concurrent.futures import wait

        from repro.sweep_stream import (
            ResultRing,
            adaptive_ring_capacity,
            decode_record,
        )

        ctx = self._worker_context() or multiprocessing.get_context()
        capacity = (
            adaptive_ring_capacity(len(cells))
            if STREAM_RING_CAPACITY is None
            else max(2, min(len(cells), STREAM_RING_CAPACITY))
        )
        try:
            ring = ResultRing.create(capacity=capacity, lock=ctx.Lock())
        except OSError as exc:  # pragma: no cover - no usable shared memory
            import warnings

            warnings.warn(
                f"shared-memory result ring unavailable ({exc}); falling "
                "back to the per-future transport",
                RuntimeWarning,
                stacklevel=3,
            )
            yield from self._iter_futures(cells, progress)
            return

        from repro.sweep_stream import stream_worker_init, run_streamed_cell

        seen: set = set()

        def drain():
            for raw in ring.pop_all():
                index, payload = decode_record(raw)
                seen.add(index)
                result = _merge_streamed(cells[index], payload)
                if progress is not None:
                    progress(result)
                yield index, result

        from concurrent.futures.process import BrokenProcessPool

        #: pool-wide breakage (worker hard death): stop submitting.
        fatal: Optional[BaseException] = None
        #: per-cell transport failures (e.g. a ring push timeout): the
        #: pool is healthy, so the rest of the grid keeps running.
        cell_failures: Dict[int, BaseException] = {}
        try:
            with ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=ctx,
                initializer=stream_worker_init,
                initargs=(ring.name, ring.lock, ring.capacity),
            ) as pool:
                # Windowed submission: per-cell futures are exactly the
                # parent-side overhead the ring exists to avoid, so only
                # a scheduling window's worth are ever in flight --
                # enough queue depth to keep every worker busy, O(window)
                # instead of O(grid) parent state.
                window = max(4 * self.workers, 16)
                backlog = iter(enumerate(cells))
                pending: Dict = {}  # future -> cell index

                def top_up() -> None:
                    nonlocal fatal
                    while fatal is None and len(pending) < window:
                        try:
                            index, cell = next(backlog)
                        except StopIteration:
                            return
                        try:
                            future = pool.submit(run_streamed_cell, index, cell)
                        except Exception as exc:  # pool broke mid-grid
                            fatal = exc
                            return
                        pending[future] = index

                from repro.sweep_stream import ResultPushError

                try:
                    top_up()
                    while pending:
                        done, _ = wait(list(pending), timeout=0.05)
                        for future in done:
                            index = pending.pop(future)
                            exc = future.exception()
                            if exc is None:
                                continue
                            if isinstance(exc, BrokenProcessPool):
                                if fatal is None:
                                    fatal = exc
                            elif isinstance(exc, ResultPushError):
                                # the cell finished; its encoded record
                                # rode the exception -- recover it instead
                                # of reporting an opaque transport failure
                                try:
                                    _idx, payload = decode_record(exc.record)
                                except Exception:
                                    cell_failures[index] = exc
                                else:
                                    seen.add(index)
                                    result = _merge_streamed(
                                        cells[index], payload
                                    )
                                    if progress is not None:
                                        progress(result)
                                    yield index, result
                            else:
                                cell_failures[index] = exc
                        if fatal is None:
                            top_up()
                        yield from drain()
                except GeneratorExit:
                    # consumer abandoned the stream: stop writers fast so
                    # pool shutdown doesn't wait out blocked pushes
                    ring.close_for_writers()
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
            yield from drain()
            for index, cell in enumerate(cells):
                if index in seen:
                    continue
                failure = cell_failures.get(index)
                if failure is not None:
                    error = (
                        "cell failed to report its result: "
                        f"{type(failure).__name__}: {failure}"
                    )
                else:
                    error = (
                        "worker process died before reporting this cell"
                        + (f": {fatal}" if fatal is not None else "")
                    )
                result = CellResult(
                    scenario=cell.scenario,
                    seed=cell.seed,
                    mode=cell.mode,
                    repeat=cell.repeat,
                    jitter_seed=cell.jitter_seed,
                    window_us=cell.window_us,
                    jitter_us=cell.jitter_us,
                    snapshots=cell.snapshots,
                    error=error,
                )
                if progress is not None:
                    progress(result)
                yield index, result
        finally:
            ring.destroy()


# ----------------------------------------------------------------------
# boundary-jitter fuzzing: jittered grids + divergence minimization
# ----------------------------------------------------------------------

def _parse_fuzz_name(name: str) -> Tuple[str, int]:
    """Split ``base~jNus`` into ``(base, N)``; plain names get jitter 0."""
    match = _JITTER_SUFFIX.match(name)
    if match is None:
        return name, 0
    return match.group("base"), int(match.group("us"))


@dataclass
class FuzzReport:
    """Outcome of a boundary-jitter fuzzing campaign.

    ``minimized`` is the smallest failing ``(scenario, seed, jitter_us)``
    triple found by shrinking the first (smallest-jitter) divergence;
    ``None`` when every cell upheld its invariants.
    """

    base_scenarios: Tuple[str, ...]
    seeds: Tuple[int, ...]
    jitters_us: Tuple[int, ...]
    mode: str
    cells: List[CellResult] = field(default_factory=list)
    minimized: Optional[Tuple[str, int, int]] = None
    shrink_runs: int = 0
    wall_seconds: float = 0.0

    def failures(self) -> List[CellResult]:
        bad = [c for c in self.cells if not c.ok]
        return sorted(
            bad, key=lambda c: (_parse_fuzz_name(c.scenario)[1], c.seed, c.scenario)
        )

    def ok(self) -> bool:
        return not self.failures()

    def summary_rows(self) -> List[List]:
        rows = []
        for base in self.base_scenarios:
            for jitter in self.jitters_us:
                group = [
                    c for c in self.cells
                    if _parse_fuzz_name(c.scenario) == (base, jitter)
                ]
                if not group:
                    continue
                bad = sum(1 for c in group if not c.ok)
                rows.append([
                    base,
                    jitter,
                    len(group),
                    sum(1 for c in group if c.invariant_ok),
                    sum(c.rollbacks for c in group),
                    bad,
                    "FAIL" if bad else "ok",
                ])
        return rows

    def render(self) -> str:
        parts = [render_table(
            f"boundary-jitter fuzz ({self.mode} mode, "
            f"{len(self.seeds)} seed(s))",
            ["scenario", "jitter (us)", "cells", "theorem1", "rollbacks",
             "failures", "verdict"],
            self.summary_rows(),
        )]
        parts.append("")
        if self.ok():
            parts.append(
                f"verdict: OK -- {len(self.cells)} jittered cells, every "
                "fingerprint reproduced bit-for-bit "
                f"({self.wall_seconds:.2f}s wall)"
            )
        else:
            first = self.failures()[0]
            parts.append(
                f"verdict: FAILED -- {len(self.failures())} divergent cell(s)"
            )
            if self.minimized is not None:
                base, seed, jitter = self.minimized
                parts.append(
                    f"minimized: scenario={base!r} seed={seed} "
                    f"jitter_us={jitter} (after {self.shrink_runs} shrink "
                    f"runs); reproduce with run_cell(SweepCell("
                    f"'{base}~j{jitter}us', {seed}, '{self.mode}'))"
                )
            parts.append(
                f"first failure: {first.scenario} seed={first.seed}: "
                + (first.error or "fingerprint divergence")
            )
        return "\n".join(parts)

    def to_dict(self) -> Dict:
        """JSON-serializable divergence report (the CI artifact)."""
        def cell_dict(c: CellResult) -> Dict:
            base, jitter = _parse_fuzz_name(c.scenario)
            return {
                "scenario": base,
                "jitter_us": jitter,
                "seed": c.seed,
                "mode": c.mode,
                "error": c.error,
                "invariant_ok": c.invariant_ok,
                "expected_ok": c.expected_ok,
                "fingerprint": c.fingerprint,
                "replay_fingerprint": c.replay_fingerprint,
            }

        return {
            "ok": self.ok(),
            "mode": self.mode,
            "base_scenarios": list(self.base_scenarios),
            "seeds": list(self.seeds),
            "jitters_us": list(self.jitters_us),
            "grid_cells": len(self.cells),
            "wall_seconds": self.wall_seconds,
            "failures": [cell_dict(c) for c in self.failures()],
            "minimized": (
                None if self.minimized is None else {
                    "scenario": self.minimized[0],
                    "seed": self.minimized[1],
                    "jitter_us": self.minimized[2],
                    "shrink_runs": self.shrink_runs,
                }
            ),
        }


class FuzzRunner:
    """Sweep jittered variants of scenarios over (seed, jitter) grids.

    Every ``(scenario, jitter)`` pair becomes the dynamic scenario
    ``scenario~j<jitter>us`` and runs through the ordinary sweep
    machinery in ``mode`` (``defined`` by default, so each cell carries
    the full Theorem-1 production-vs-replay check).  When a cell fails,
    the runner shrinks the first failure to the smallest failing
    ``(scenario, seed, jitter)`` triple: binary search over the jitter
    magnitude (assuming the usual monotone failure envelope), then a
    linear scan for the smallest failing seed.
    """

    def __init__(
        self,
        scenarios: Optional[Sequence[str]] = None,
        seeds: Sequence[int] = (1, 2, 3, 4),
        jitters_us: Sequence[int] = (0, 1, 2, 5),
        mode: str = "defined",
        workers: int = 1,
        minimize: bool = True,
    ) -> None:
        if any(j < 0 for j in jitters_us):
            raise ValueError("jitter magnitudes cannot be negative")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if scenarios is None:
            # base catalogue only: no pre-jittered variants (the runner
            # owns the jitter axis) and no @N size variants (an 80-node
            # jitter grid is an explicit opt-in, not a default)
            scenarios = [
                n for n in scenario_names() if "~" not in n and "@" not in n
            ]
        else:
            # the runner owns the jitter axis: strip any ~jNus suffix the
            # caller passed (e.g. a registered '*~j1us' builtin) so grids
            # never double-jitter or build unresolvable names
            scenarios = list(dict.fromkeys(
                _parse_fuzz_name(name)[0] for name in scenarios
            ))
        for name in scenarios:
            scenario = get_scenario(name)  # fail fast on unknown names
            if mode not in scenario.modes:
                raise ValueError(
                    f"scenario {name!r} does not run in mode {mode!r} "
                    f"(modes: {scenario.modes})"
                )
        self.base_scenarios = tuple(scenarios)
        self.seeds = tuple(seeds)
        self.jitters_us = tuple(sorted(set(jitters_us)))
        self.mode = mode
        self.workers = workers
        self.minimize = minimize

    def grid_names(self) -> List[str]:
        return [
            f"{base}~j{jitter}us"
            for base in self.base_scenarios
            for jitter in self.jitters_us
        ]

    def run(
        self, progress: Optional[Callable[[CellResult], None]] = None
    ) -> FuzzReport:
        start = time.perf_counter()
        sweep = SweepRunner(
            scenarios=self.grid_names(),
            seeds=self.seeds,
            modes=(self.mode,),
            workers=self.workers,
        )
        cells = sweep.run(progress=progress).cells
        report = FuzzReport(
            base_scenarios=self.base_scenarios,
            seeds=self.seeds,
            jitters_us=self.jitters_us,
            mode=self.mode,
            cells=cells,
        )
        failures = report.failures()
        if failures and self.minimize:
            report.minimized, report.shrink_runs = self._shrink(failures[0], cells)
        report.wall_seconds = time.perf_counter() - start
        return report

    def _shrink(
        self, cell: CellResult, cells: Sequence[CellResult]
    ) -> Tuple[Tuple[str, int, int], int]:
        """Smallest failing (scenario, seed, jitter) reachable from ``cell``."""
        base, jitter = _parse_fuzz_name(cell.scenario)
        seed = cell.seed
        runs = 0

        def fails(jitter_us: int, cell_seed: int) -> bool:
            nonlocal runs
            runs += 1
            result = run_cell(
                SweepCell(f"{base}~j{jitter_us}us", cell_seed, self.mode)
            )
            return not result.ok

        # binary search the smallest failing jitter in [0, jitter].  The
        # grid already evaluated this (base, seed) at every smaller grid
        # jitter -- and they all passed, or ``cell`` would not be the
        # smallest failure -- so start the bracket from the largest of
        # them instead of re-running full simulations below it.
        known_passing = [
            _parse_fuzz_name(c.scenario)[1]
            for c in cells
            if c.ok
            and c.seed == seed
            and _parse_fuzz_name(c.scenario)[0] == base
            and _parse_fuzz_name(c.scenario)[1] < jitter
        ]
        lo, hi = max(known_passing, default=-1), jitter
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if fails(mid, seed):
                hi = mid
            else:
                lo = mid
        jitter = hi
        # then the smallest failing seed at that jitter
        for candidate in sorted(self.seeds):
            if candidate >= seed:
                break
            if fails(jitter, candidate):
                seed = candidate
                break
        return (base, seed, jitter), runs
