"""Scenario-sweep subsystem: diverse failure environments, checked in bulk.

The paper's evaluation runs one recorded workload through the vanilla,
DEFINED-RB and DEFINED-LS stacks and compares bit-for-bit fingerprints.
This module scales that methodology from two hand-built case studies to a
whole *grid*:

* a :class:`Scenario` descriptor bundles everything one failure
  environment needs -- a topology factory, an external-event schedule
  factory, an optional daemon factory and an expected-outcome predicate
  -- with every random choice derived from the cell's seed, so a grid
  cell is a pure function of ``(scenario, seed, mode)``;
* a registry (:func:`register` / :func:`get_scenario`) names scenarios so
  grid cells stay picklable and the CLI can address them;
* a family of parameterized fault-injection generators synthesizes
  link-flap storms, node crash/restarts, network partitions,
  link-latency jitter and DDoS-overload variants (the last built on the
  stop-and-wait :mod:`repro.baselines.ddos` stack);
* :class:`SweepRunner` shards the scenario x seed x mode grid across
  cores with :class:`concurrent.futures.ProcessPoolExecutor` -- each
  worker builds its own :class:`~repro.simnet.engine.Simulator`, so
  per-run determinism is untouched -- and aggregates a
  divergence/determinism report, verifying the Theorem-1 invariant
  (``replay.fingerprint == defined.fingerprint``) for every DEFINED cell.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import render_matrix, render_table
from repro.harness import (
    ProductionResult,
    burst_schedule,
    flappable_links,
    run_ls_replay,
    run_production,
)
from repro.simnet.engine import SECOND
from repro.simnet.events import (
    LINK_DOWN,
    LINK_UP,
    NODE_DOWN,
    NODE_UP,
    EventSchedule,
    ExternalEvent,
)
from repro.topology import TopologyGraph, waxman

TopologyFactory = Callable[[int], TopologyGraph]
ScheduleFactory = Callable[[TopologyGraph, int], EventSchedule]
DaemonBuilder = Callable[[TopologyGraph], Optional[Callable]]
ExpectPredicate = Callable[[ProductionResult], bool]

#: Modes a scenario runs in by default.  ``defined`` cells additionally
#: run a DEFINED-LS replay and check the Theorem-1 invariant.
DEFAULT_MODES: Tuple[str, ...] = ("vanilla", "defined")


@dataclass(frozen=True)
class Scenario:
    """One reproducible failure environment.

    Everything is a factory taking the cell seed, so the same descriptor
    yields a *family* of concrete environments -- same failure shape,
    different topologies/timings -- while each cell stays a deterministic
    function of its seed.
    """

    name: str
    description: str
    topology: TopologyFactory
    schedule: ScheduleFactory
    #: Builds a per-node daemon factory for a concrete topology; ``None``
    #: falls back to the harness's OSPF daemon.
    daemon: Optional[DaemonBuilder] = None
    #: Scenario-level sanity predicate over the finished run (outcome
    #: shape, not determinism -- the runner checks determinism itself).
    expect: Optional[ExpectPredicate] = None
    modes: Tuple[str, ...] = DEFAULT_MODES
    jitter_us: int = 200
    ordering: str = "OO"
    settle_us: int = 3 * SECOND
    tail_us: int = 2 * SECOND


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Scenario] = {}
_BUILTINS_LOADED = False
_BUILTIN_NAMES: frozenset = frozenset()


def register(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add a scenario to the global registry (idempotent per name)."""
    if scenario.name in _REGISTRY and not replace:
        existing = _REGISTRY[scenario.name]
        if existing is not scenario:
            raise ValueError(f"scenario {scenario.name!r} already registered")
        return existing
    _REGISTRY[scenario.name] = scenario
    return scenario


def unregister(name: str) -> None:
    _REGISTRY.pop(name, None)


def _ensure_builtins() -> None:
    """Importing :mod:`repro.scenarios` registers the builtin scenario
    set (case studies + fault-injection family) exactly once."""
    global _BUILTINS_LOADED, _BUILTIN_NAMES
    if not _BUILTINS_LOADED:
        import repro.scenarios  # noqa: F401  (import-time registration)

        _BUILTINS_LOADED = True
        _BUILTIN_NAMES = frozenset(_REGISTRY)


def get_scenario(name: str) -> Scenario:
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        ) from None


def scenario_names() -> List[str]:
    _ensure_builtins()
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# fault-injection generators (each a deterministic function of its seed)
# ----------------------------------------------------------------------

def _rng(tag: str, seed: int) -> random.Random:
    return random.Random(f"sweep|{tag}|{seed}")


def flap_storm_schedule(
    graph: TopologyGraph,
    seed: int,
    n_flaps: int = 4,
    start_us: int = 4 * SECOND + 97_000,
    min_hold_us: int = SECOND // 2,
    max_hold_us: int = 3 * SECOND,
    gap_us: int = SECOND + 217_000,
) -> EventSchedule:
    """A storm of independent link flaps; every link heals by the end."""
    rng = _rng(f"flap|{graph.name}", seed)
    links = flappable_links(graph)
    if not links:
        raise ValueError(f"topology {graph.name} has no flappable links")
    schedule = EventSchedule()
    t = start_us
    for _ in range(n_flaps):
        link = links[rng.randrange(len(links))]
        hold = rng.randrange(min_hold_us, max_hold_us)
        schedule.add(ExternalEvent(time_us=t, kind=LINK_DOWN, target=link))
        schedule.add(ExternalEvent(time_us=t + hold, kind=LINK_UP, target=link))
        t += gap_us + rng.randrange(0, 311_000)
    return schedule


def crash_restart_schedule(
    graph: TopologyGraph,
    seed: int,
    n_crashes: int = 1,
    start_us: int = 4 * SECOND + 211_000,
    down_for_us: int = 3 * SECOND,
    gap_us: int = 5 * SECOND,
) -> EventSchedule:
    """Routers die and come back: a ``node_down`` / ``node_up`` cycle per
    victim, victims drawn deterministically from the seed."""
    rng = _rng(f"crash|{graph.name}", seed)
    nodes = sorted(graph.nodes)
    schedule = EventSchedule()
    t = start_us
    for _ in range(n_crashes):
        victim = nodes[rng.randrange(len(nodes))]
        schedule.add(ExternalEvent(time_us=t, kind=NODE_DOWN, target=victim))
        schedule.add(
            ExternalEvent(time_us=t + down_for_us, kind=NODE_UP, target=victim)
        )
        t += gap_us + rng.randrange(0, 293_000)
    return schedule


def partition_schedule(
    graph: TopologyGraph,
    seed: int,
    at_us: int = 4 * SECOND + 157_000,
    heal_after_us: int = 4 * SECOND,
) -> EventSchedule:
    """Cut the network into two halves, then heal it.

    A random bipartition (seed-derived) selects one side; every crossing
    link goes down at ``at_us`` and comes back ``heal_after_us`` later.
    """
    rng = _rng(f"partition|{graph.name}", seed)
    nodes = sorted(graph.nodes)
    if len(nodes) < 2:
        raise ValueError("cannot partition fewer than two nodes")
    side_size = rng.randrange(1, len(nodes))
    side = set(rng.sample(nodes, side_size))
    crossing = [
        (a, b) for a, b, _d in graph.edges if (a in side) != (b in side)
    ]
    schedule = EventSchedule()
    for link in crossing:
        schedule.add(ExternalEvent(time_us=at_us, kind=LINK_DOWN, target=link))
        schedule.add(
            ExternalEvent(time_us=at_us + heal_after_us, kind=LINK_UP, target=link)
        )
    return schedule


def ddos_overload_schedule(
    graph: TopologyGraph,
    seed: int,
    events_per_second: int = 8,
    n_events: int = 10,
    start_us: int = 4 * SECOND,
) -> EventSchedule:
    """An event-rate overload: a fixed-rate link-flap burst far above the
    normal workload, the regime where stop-and-wait delivery (the DDOS
    baseline stack) pays its worst-case holds."""
    return burst_schedule(
        graph, events_per_second, n_events, start_us=start_us, seed=seed
    )


# ----------------------------------------------------------------------
# builtin scenario families
# ----------------------------------------------------------------------

def _waxman_topology(tag: str, n: int) -> TopologyFactory:
    """Seed-varied Waxman graphs: each cell seed gets its own topology."""

    def factory(seed: int) -> TopologyGraph:
        graph = waxman(n, seed=1000 + seed)
        return TopologyGraph(
            name=f"{tag}-{graph.name}-s{seed}",
            nodes=graph.nodes,
            edges=graph.edges,
        )

    return factory


def _diamond_topology(seed: int) -> TopologyGraph:
    """The fixed four-node diamond used by the determinism tests."""
    del seed
    return TopologyGraph(
        name="diamond",
        nodes=["a", "b", "c", "d"],
        edges=[
            ("a", "b", 2_000),
            ("b", "c", 3_000),
            ("c", "d", 2_500),
            ("a", "d", 4_000),
            ("b", "d", 3_500),
        ],
    )


def flap_storm_scenario(
    name: str = "flap-storm",
    nodes: int = 8,
    n_flaps: int = 4,
) -> Scenario:
    return Scenario(
        name=name,
        description=f"{n_flaps} randomized link flaps on a {nodes}-node Waxman graph",
        topology=_waxman_topology(name, nodes),
        schedule=lambda graph, seed: flap_storm_schedule(graph, seed, n_flaps=n_flaps),
        expect=_expect_all_links_healed,
        tail_us=3 * SECOND,
    )


def crash_restart_scenario(
    name: str = "crash-restart",
    nodes: int = 6,
    n_crashes: int = 1,
) -> Scenario:
    return Scenario(
        name=name,
        description=f"{n_crashes} router crash/restart cycle(s) on a {nodes}-node Waxman graph",
        topology=_waxman_topology(name, nodes),
        schedule=lambda graph, seed: crash_restart_schedule(
            graph, seed, n_crashes=n_crashes
        ),
        expect=_expect_all_nodes_up,
        tail_us=3 * SECOND,
    )


def partition_scenario(
    name: str = "partition",
    nodes: int = 8,
) -> Scenario:
    return Scenario(
        name=name,
        description=f"random bipartition + heal on a {nodes}-node Waxman graph",
        topology=_waxman_topology(name, nodes),
        schedule=partition_schedule,
        expect=_expect_all_links_healed,
        tail_us=3 * SECOND,
    )


def latency_jitter_scenario(
    name: str = "latency-jitter",
    jitter_us: int = 2_500,
) -> Scenario:
    """Heavy per-packet link jitter: stresses the delay-sensitive ordering
    into actual rollbacks while determinism must still hold."""
    return Scenario(
        name=name,
        description=f"link flap under {jitter_us}us per-packet latency jitter",
        topology=_diamond_topology,
        schedule=lambda graph, seed: flap_storm_schedule(
            graph, seed, n_flaps=2, min_hold_us=2 * SECOND, max_hold_us=4 * SECOND
        ),
        jitter_us=jitter_us,
        tail_us=3 * SECOND,
    )


def ddos_overload_scenario(
    name: str = "ddos-overload",
    events_per_second: int = 8,
    n_events: int = 8,
) -> Scenario:
    """Event-rate overload, also run through the stop-and-wait DDOS
    baseline stack (:mod:`repro.baselines.ddos`) to contrast blocking
    determinism with DEFINED-RB's speculation under load."""
    return Scenario(
        name=name,
        description=(
            f"{events_per_second}/s link-event burst; includes the DDOS "
            "stop-and-wait baseline mode"
        ),
        topology=_diamond_topology,
        schedule=lambda graph, seed: ddos_overload_schedule(
            graph, seed, events_per_second=events_per_second, n_events=n_events
        ),
        expect=_expect_all_links_healed,
        modes=("vanilla", "defined", "ddos"),
        tail_us=4 * SECOND,
    )


def _expect_all_links_healed(result: ProductionResult) -> bool:
    return all(link.up for link in result.network.links.values())


def _expect_all_nodes_up(result: ProductionResult) -> bool:
    return all(node.up for node in result.network.nodes.values())


# ----------------------------------------------------------------------
# grid cells and the worker (module-level, so it pickles)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SweepCell:
    """One point of the grid: a pure function of these three fields
    (plus ``repeat``, which only disambiguates re-executions)."""

    scenario: str
    seed: int
    mode: str
    repeat: int = 0


@dataclass(frozen=True)
class CellResult:
    """The picklable outcome of one grid cell."""

    scenario: str
    seed: int
    mode: str
    repeat: int = 0
    fingerprint: str = ""
    replay_fingerprint: Optional[str] = None
    #: Theorem-1 check (``defined`` cells only): replay == production.
    invariant_ok: Optional[bool] = None
    #: Scenario-level expected-outcome predicate, when one is declared.
    expected_ok: Optional[bool] = None
    #: Deterministic-delivery check for instrumented modes: no ordering
    #: misses slipped through (late deliveries are rollback-repaired in
    #: ``defined`` mode, so they must net out to zero only for ``ddos``).
    late_deliveries: int = 0
    rollbacks: int = 0
    deliveries: int = 0
    recording_bytes: Optional[int] = None
    wall_seconds: float = 0.0
    error: Optional[str] = None

    @property
    def key(self) -> Tuple[str, int, str]:
        return (self.scenario, self.seed, self.mode)

    @property
    def ok(self) -> bool:
        return (
            self.error is None
            and self.invariant_ok is not False
            and self.expected_ok is not False
        )


def run_cell(cell: SweepCell) -> CellResult:
    """Execute one grid cell in the current process.

    Builds a fresh topology, schedule and :class:`Simulator` from the
    cell's seed, runs the production network, and -- for ``defined``
    cells -- replays the partial recording through DEFINED-LS and checks
    the Theorem-1 invariant.  Never raises: failures come back as
    ``error`` so one bad cell cannot sink a whole sweep.
    """
    _ensure_builtins()
    start = time.perf_counter()
    try:
        scenario = get_scenario(cell.scenario)
        graph = scenario.topology(cell.seed)
        schedule = scenario.schedule(graph, cell.seed)
        daemon_factory = scenario.daemon(graph) if scenario.daemon else None
        result = run_production(
            graph,
            schedule,
            mode=cell.mode,
            seed=cell.seed,
            jitter_us=scenario.jitter_us,
            ordering=scenario.ordering,
            daemon_factory=daemon_factory,
            measure_convergence=False,
            settle_us=scenario.settle_us,
            tail_us=scenario.tail_us,
        )
        replay_fp: Optional[str] = None
        invariant: Optional[bool] = None
        recording_bytes: Optional[int] = None
        if cell.mode == "defined":
            assert result.recording is not None
            recording_bytes = result.recording.size_bytes()
            replay = run_ls_replay(
                graph,
                result.recording,
                ordering=scenario.ordering,
                daemon_factory=daemon_factory,
            )
            replay_fp = replay.fingerprint
            invariant = replay_fp == result.fingerprint
        expected = scenario.expect(result) if scenario.expect else None
        return CellResult(
            scenario=cell.scenario,
            seed=cell.seed,
            mode=cell.mode,
            repeat=cell.repeat,
            fingerprint=result.fingerprint,
            replay_fingerprint=replay_fp,
            invariant_ok=invariant,
            expected_ok=expected,
            late_deliveries=result.late_deliveries,
            rollbacks=result.rollbacks,
            deliveries=sum(len(log) for log in result.logs.values()),
            recording_bytes=recording_bytes,
            wall_seconds=time.perf_counter() - start,
        )
    except Exception as exc:  # pragma: no cover - exercised via error cells
        return CellResult(
            scenario=cell.scenario,
            seed=cell.seed,
            mode=cell.mode,
            repeat=cell.repeat,
            wall_seconds=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )


# ----------------------------------------------------------------------
# the runner and its report
# ----------------------------------------------------------------------

@dataclass
class SweepReport:
    """Aggregated sweep results plus the determinism verdicts."""

    cells: List[CellResult]
    seeds: Tuple[int, ...]
    workers: int
    repeats: int
    wall_seconds: float = 0.0

    # -- verdicts ------------------------------------------------------
    def errors(self) -> List[CellResult]:
        return [c for c in self.cells if c.error is not None]

    def invariant_violations(self) -> List[CellResult]:
        """DEFINED cells where the replay diverged from production."""
        return [c for c in self.cells if c.invariant_ok is False]

    def expectation_failures(self) -> List[CellResult]:
        return [c for c in self.cells if c.expected_ok is False]

    def ordering_misses(self) -> List[CellResult]:
        """Instrumented cells that delivered out of deterministic order.
        ``defined`` repairs late arrivals by rollback, so only ``ddos``
        (which cannot roll back) counts here."""
        return [
            c for c in self.cells if c.mode == "ddos" and c.late_deliveries > 0
        ]

    def repeat_mismatches(self) -> List[Tuple[str, int, str]]:
        """Grid cells whose re-executions disagreed (determinism breach)."""
        seen: Dict[Tuple[str, int, str], str] = {}
        bad = []
        for c in self.cells:
            if c.error is not None:
                continue
            prior = seen.setdefault(c.key, c.fingerprint)
            if prior != c.fingerprint and c.key not in bad:
                bad.append(c.key)
        return bad

    def ok(self) -> bool:
        return not (
            self.errors()
            or self.invariant_violations()
            or self.expectation_failures()
            or self.ordering_misses()
            or self.repeat_mismatches()
        )

    # -- aggregation ---------------------------------------------------
    def fingerprint_index(self) -> Dict[Tuple[str, int, str, int], str]:
        """(scenario, seed, mode, repeat) -> fingerprint, for equivalence
        checks between serial and parallel executions."""
        return {
            (c.scenario, c.seed, c.mode, c.repeat): c.fingerprint
            for c in self.cells
        }

    def scenario_names(self) -> List[str]:
        return sorted({c.scenario for c in self.cells})

    def modes(self) -> List[str]:
        order = {"vanilla": 0, "defined": 1, "ddos": 2, "logging": 3}
        return sorted({c.mode for c in self.cells}, key=lambda m: (order.get(m, 9), m))

    def distinct_fingerprints(self, scenario: str, mode: str) -> int:
        fps = {
            c.fingerprint
            for c in self.cells
            if c.scenario == scenario and c.mode == mode and c.error is None
        }
        return len(fps)

    def _group(self, scenario: str, mode: str) -> List[CellResult]:
        return [c for c in self.cells if c.scenario == scenario and c.mode == mode]

    # -- rendering -----------------------------------------------------
    def summary_rows(self) -> List[List]:
        rows = []
        for scenario in self.scenario_names():
            for mode in self.modes():
                group = self._group(scenario, mode)
                if not group:
                    continue
                errors = sum(1 for c in group if c.error is not None)
                invariant = [c for c in group if c.invariant_ok is not None]
                rows.append([
                    scenario,
                    mode,
                    len(group),
                    self.distinct_fingerprints(scenario, mode),
                    ("-" if not invariant
                     else f"{sum(1 for c in invariant if c.invariant_ok)}/{len(invariant)}"),
                    sum(c.rollbacks for c in group),
                    sum(c.late_deliveries for c in group),
                    errors,
                    sum(c.wall_seconds for c in group),
                ])
        return rows

    def render(self) -> str:
        parts = [
            render_table(
                "scenario sweep: divergence / determinism",
                ["scenario", "mode", "cells", "fingerprints",
                 "theorem1", "rollbacks", "late", "errors", "wall (s)"],
                self.summary_rows(),
            )
        ]
        matrix = {
            scenario: {
                mode: (str(self.distinct_fingerprints(scenario, mode))
                       if self._group(scenario, mode) else "-")
                for mode in self.modes()
            }
            for scenario in self.scenario_names()
        }
        parts.append("")
        parts.append(render_matrix(
            f"distinct fingerprints across {len(self.seeds)} seed(s) "
            f"x {self.repeats} repeat(s)  [defined: 1 per seed == deterministic]",
            "scenario",
            self.modes(),
            matrix,
        ))
        verdict = []
        for label, items in [
            ("errors", self.errors()),
            ("Theorem-1 violations", self.invariant_violations()),
            ("expectation failures", self.expectation_failures()),
            ("ordering misses (ddos)", self.ordering_misses()),
            ("repeat mismatches", self.repeat_mismatches()),
        ]:
            if items:
                verdict.append(f"{label}: {len(items)}")
        parts.append("")
        parts.append(
            f"grid: {len(self.cells)} cells, {self.workers} worker(s), "
            f"{self.wall_seconds:.2f}s wall"
        )
        parts.append(
            "verdict: OK -- every DEFINED cell reproduced bit-for-bit"
            if self.ok()
            else "verdict: FAILED -- " + "; ".join(verdict)
        )
        return "\n".join(parts)


class SweepRunner:
    """Shard a scenario x seed x mode grid across worker processes.

    ``workers=1`` runs everything inline (same process, deterministic
    order); ``workers>1`` fans cells out to a process pool.  Either way
    the result list is ordered by the grid, so two runs of the same grid
    are comparable cell by cell.
    """

    def __init__(
        self,
        scenarios: Optional[Sequence[str]] = None,
        seeds: Sequence[int] = (1, 2, 3),
        modes: Optional[Sequence[str]] = None,
        workers: int = 1,
        repeats: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.scenario_names = (
            list(scenarios) if scenarios is not None else scenario_names()
        )
        for name in self.scenario_names:
            get_scenario(name)  # fail fast on unknown names
        self.seeds = tuple(seeds)
        self.modes = tuple(modes) if modes is not None else None
        self.workers = workers
        self.repeats = repeats

    def _worker_context(self):
        """Multiprocessing context for the pool.

        Workers rebuild the registry by importing :mod:`repro.scenarios`,
        which only covers the builtin catalogue -- scenarios registered at
        runtime by the caller exist solely in this process.  A forked
        worker inherits them; a spawned/forkserver worker does not (the
        default on macOS/Windows, and on Linux from Python 3.14).  Prefer
        fork where available; otherwise runtime-registered scenarios
        cannot cross the process boundary, so fail loudly instead of
        erroring on every cell.
        """
        import multiprocessing

        try:
            return multiprocessing.get_context("fork")
        except ValueError:
            custom = sorted(set(self.scenario_names) - _BUILTIN_NAMES)
            if custom:
                raise ValueError(
                    f"scenarios {custom} are registered at runtime and cannot "
                    "reach spawn-based worker processes; run with workers=1 or "
                    "register them at import time in repro.scenarios"
                )
            return None

    def grid(self) -> List[SweepCell]:
        cells = []
        for name in self.scenario_names:
            scenario = get_scenario(name)
            modes = self.modes if self.modes is not None else scenario.modes
            for seed in self.seeds:
                for mode in modes:
                    for repeat in range(self.repeats):
                        cells.append(SweepCell(name, seed, mode, repeat))
        return cells

    def run(self, progress: Optional[Callable[[CellResult], None]] = None) -> SweepReport:
        cells = self.grid()
        start = time.perf_counter()
        results: List[CellResult] = []
        if self.workers == 1:
            for cell in cells:
                result = run_cell(cell)
                if progress is not None:
                    progress(result)
                results.append(result)
        else:
            with ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._worker_context()
            ) as pool:
                for result in pool.map(run_cell, cells):
                    if progress is not None:
                        progress(result)
                    results.append(result)
        return SweepReport(
            cells=results,
            seeds=self.seeds,
            workers=self.workers,
            repeats=self.repeats,
            wall_seconds=time.perf_counter() - start,
        )
