"""Locating the first semantic divergence between two executions.

Per node, the first differing step is found by walking the two delivery
logs in parallel (a ``None`` side means one log is a strict prefix of
the other -- the shorter execution simply stopped).  Across nodes, the
*first* divergence is the one with the smallest ``(group, node, step)``:
groups are the global causal clock (every node's log is ordered by
group), so the smallest diverging group is where the executions actually
split -- everything later is fallout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.diff.tags import ParsedTag, parse_tag


@dataclass(frozen=True)
class Divergence:
    """The first point where two executions part ways."""

    node: str
    #: Index into the node's delivery log (0-based step number).
    step: int
    #: The smallest group tagged on either side of the diverging step
    #: (None when neither side parses, e.g. a prefix-end divergence).
    group: Optional[int]
    #: Deterministic event identity at the diverging step (side A's when
    #: both exist; ``origin:seq:sub`` for messages).
    identity: Optional[str]
    #: First differing tag field when both sides are the same tag kind
    #: ("<kind>" when the kinds differ, "<end>" when one log ended).
    field: str
    a_tag: Optional[str]
    b_tag: Optional[str]

    def to_dict(self) -> Dict:
        return {
            "node": self.node,
            "step": self.step,
            "group": self.group,
            "identity": self.identity,
            "field": self.field,
            "a": self.a_tag,
            "b": self.b_tag,
        }


def _try_parse(tag: Optional[str]) -> Optional[ParsedTag]:
    if tag is None:
        return None
    try:
        return parse_tag(tag)
    except ValueError:
        return None


def _classify(
    node: str, step: int, a_tag: Optional[str], b_tag: Optional[str]
) -> Divergence:
    pa, pb = _try_parse(a_tag), _try_parse(b_tag)
    groups = [p.group for p in (pa, pb) if p is not None and p.group is not None]
    group = min(groups) if groups else None
    identity = (pa or pb).identity if (pa or pb) is not None else None
    if a_tag is None or b_tag is None:
        field = "<end>"
    elif pa is None or pb is None:  # pragma: no cover - malformed tag
        field = "<unparsed>"
    elif pa.kind != pb.kind:
        field = "<kind>"
    else:
        field = next(
            (
                name for name in pa.field_order()
                if pa.fields.get(name) != pb.fields.get(name)
            ),
            "late" if pa.late != pb.late else "<identical>",
        )
    return Divergence(
        node=node, step=step, group=group, identity=identity,
        field=field, a_tag=a_tag, b_tag=b_tag,
    )


def _node_first_divergence(
    node: str, la: Sequence[str], lb: Sequence[str]
) -> Optional[Divergence]:
    for i in range(max(len(la), len(lb))):
        ea = la[i] if i < len(la) else None
        eb = lb[i] if i < len(lb) else None
        if ea != eb:
            return _classify(node, i, ea, eb)
    return None


def diff_logs(
    a: Dict[str, Tuple[str, ...]],
    b: Dict[str, Tuple[str, ...]],
) -> Optional[Divergence]:
    """First semantic divergence between two executions' delivery logs.

    Returns ``None`` when the executions are identical.  Otherwise the
    per-node first divergences are ranked by ``(group, node, step)`` --
    group first, because group numbers are the shared causal clock -- and
    the smallest wins.  A divergence with no parseable group ranks last
    (it can only be a prefix-end on an otherwise-identical node).
    """
    candidates: List[Divergence] = []
    for node in sorted(set(a) | set(b)):
        d = _node_first_divergence(node, a.get(node, ()), b.get(node, ()))
        if d is not None:
            candidates.append(d)
    if not candidates:
        return None
    return min(
        candidates,
        key=lambda d: (
            d.group if d.group is not None else float("inf"),
            d.node,
            d.step,
        ),
    )


def diff_bundles(a, b) -> Optional[Divergence]:
    """Diff two :class:`~repro.artifact.RunBundle` objects.

    The fingerprint is the fast path: equal fingerprints are equal
    executions (that is what the fingerprint *is*), so the walk only
    happens when they differ.
    """
    if a.fingerprint == b.fingerprint:
        return None
    divergence = diff_logs(a.logs(), b.logs())
    if divergence is None:  # pragma: no cover - fingerprint covers logs only
        raise ValueError(
            "fingerprints differ but delivery logs are identical -- "
            "bundle corrupt?"
        )
    return divergence


def render_divergence(
    divergence: Optional[Divergence],
    a_label: str = "A",
    b_label: str = "B",
) -> str:
    """Human-readable first-divergence report."""
    if divergence is None:
        return "executions identical (no divergence)"
    d = divergence
    lines = [
        "first divergence:",
        f"  node:     {d.node}",
        f"  step:     {d.step}",
        f"  group:    {d.group if d.group is not None else '?'}",
        f"  identity: {d.identity if d.identity is not None else '?'}",
        f"  field:    {d.field}",
        f"  {a_label}: {d.a_tag if d.a_tag is not None else '<end of log>'}",
        f"  {b_label}: {d.b_tag if d.b_tag is not None else '<end of log>'}",
    ]
    return "\n".join(lines)
