"""Parsing delivery-log tags back into structured steps.

The stacks log one stable string tag per delivered event
(:meth:`~repro.core.history.HistoryEntry.tag`):

* ``m|protocol|src|origin|seq|sub|group|delay_us|payload!r`` -- a data
  message;
* ``e|kind|target!r|group|seq`` -- an external event;
* ``t|timer_key|group`` -- a virtual-time timer firing;
* any of the above prefixed ``late:`` -- delivered outside the ordered
  window (window mis-sized; counted, not reordered).

Payload and target reprs may themselves contain ``|``, so message tags
split from the left with a bounded split (the payload is the 9th field)
and external/timer tags split from the right (group/seq are trailing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Field order used to report "first differing field" per tag kind.
MSG_FIELDS = (
    "protocol", "src", "origin", "seq", "sub", "group", "delay_us", "payload"
)
EXT_FIELDS = ("kind", "target", "group", "seq")
TIMER_FIELDS = ("timer_key", "group")


@dataclass(frozen=True)
class ParsedTag:
    """One delivery-log tag, decoded."""

    raw: str
    kind: str  # "msg" | "ext" | "timer"
    late: bool
    fields: Dict[str, str]

    @property
    def group(self) -> Optional[int]:
        value = self.fields.get("group")
        try:
            return int(value) if value is not None else None
        except ValueError:  # pragma: no cover - malformed tag
            return None

    @property
    def identity(self) -> Optional[str]:
        """Deterministic event identity: ``origin:seq:sub`` for messages,
        ``kind:seq`` for externals, the timer key for timers."""
        f = self.fields
        if self.kind == "msg":
            return f"{f['origin']}:{f['seq']}:{f['sub']}"
        if self.kind == "ext":
            return f"{f['kind']}:{f['seq']}"
        return f.get("timer_key")

    def field_order(self) -> Tuple[str, ...]:
        if self.kind == "msg":
            return MSG_FIELDS
        if self.kind == "ext":
            return EXT_FIELDS
        return TIMER_FIELDS


def parse_tag(tag: str) -> ParsedTag:
    """Decode one delivery-log tag; raises ``ValueError`` on junk."""
    raw = tag
    late = tag.startswith("late:")
    if late:
        tag = tag[len("late:"):]
    if tag.startswith("m|"):
        parts = tag.split("|", 8)
        if len(parts) != 9:
            raise ValueError(f"malformed message tag: {raw!r}")
        return ParsedTag(
            raw=raw, kind="msg", late=late,
            fields=dict(zip(MSG_FIELDS, parts[1:])),
        )
    if tag.startswith("e|"):
        head, group, seq = tag.rsplit("|", 2)
        parts = head.split("|", 2)
        if len(parts) != 3:
            raise ValueError(f"malformed external tag: {raw!r}")
        return ParsedTag(
            raw=raw, kind="ext", late=late,
            fields={
                "kind": parts[1], "target": parts[2],
                "group": group, "seq": seq,
            },
        )
    if tag.startswith("t|"):
        head, group = tag.rsplit("|", 1)
        return ParsedTag(
            raw=raw, kind="timer", late=late,
            fields={"timer_key": head[len("t|"):], "group": group},
        )
    raise ValueError(f"unrecognized delivery-log tag: {raw!r}")
