"""First-divergence diff engine over run bundles.

Fingerprint inequality says two executions differ; it does not say
*where*.  This package parses the stable delivery-log tags back into
structured steps (kind, group, message identity, payload) and walks two
bundles' logs to the **first semantic divergence**: the earliest point
-- by (group, node, step) -- where the two executions deliver different
events.  The verdict names the node, the step index, the group, the
message identity (origin:seq:sub) and the *first differing field*, which
is usually the whole debugging session: "replay delivered b's flood for
group 12 where production had a timer" points straight at the ordering
or annotation decision that split the runs.

CLI: ``repro diff a.run b.run``.
"""

from repro.diff.engine import Divergence, diff_bundles, diff_logs, render_divergence
from repro.diff.tags import ParsedTag, parse_tag

__all__ = [
    "Divergence",
    "ParsedTag",
    "diff_bundles",
    "diff_logs",
    "parse_tag",
    "render_divergence",
]
