"""Plain-text rendering of the evaluation's tables, series and CDFs.

The benchmark harness prints the same rows/series the paper plots, so a
reader can compare shapes (who wins, by what factor, where crossovers
fall) directly from the bench output captured in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.metrics import Cdf


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
) -> str:
    """A fixed-width table with a title rule."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    xs: Sequence,
    series: Dict[str, Sequence[float]],
) -> str:
    """A Figure-8-style series table: one row per x, one column per line."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        row = [x] + [series[name][i] for name in series]
        rows.append(row)
    return render_table(title, headers, rows)


def ascii_cdf(
    title: str,
    cdfs: Dict[str, Cdf],
    width: int = 60,
    height: int = 12,
    unit: str = "",
) -> str:
    """A terminal sketch of one or more CDFs (Figure 6/7 style).

    Each distribution gets a marker character; the x axis spans the pooled
    sample range.
    """
    markers = "*o+x#@%&"
    lo = min(c.min() for c in cdfs.values())
    hi = max(c.max() for c in cdfs.values())
    if hi <= lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, (name, cdf) in enumerate(sorted(cdfs.items())):
        marker = markers[idx % len(markers)]
        for col in range(width):
            x = lo + (hi - lo) * col / (width - 1)
            frac = cdf.at(x)
            row = height - 1 - int(frac * (height - 1))
            if grid[row][col] == " ":
                grid[row][col] = marker
    lines = [title, "-" * len(title)]
    for i, row in enumerate(grid):
        frac = 1.0 - i / (height - 1)
        lines.append(f"{frac:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {lo:.3g}{' ' * (width - 16)}{hi:.3g} {unit}")
    for idx, (name, cdf) in enumerate(sorted(cdfs.items())):
        lines.append(f"  [{markers[idx % len(markers)]}] {name}: {cdf.summary()}")
    return "\n".join(lines)


def render_matrix(
    title: str,
    row_label: str,
    col_labels: Sequence[str],
    cells: Dict[str, Dict[str, str]],
) -> str:
    """A labelled grid (e.g. scenario x mode), one row per outer key.

    ``cells`` maps row name -> column name -> display value; missing
    entries render as ``-``.  Rows come out sorted so the same data always
    renders identically (sweep reports are diffed across runs).
    """
    rows = []
    for row_name in sorted(cells):
        row = [row_name]
        for col in col_labels:
            row.append(cells[row_name].get(col, "-"))
        rows.append(row)
    return render_table(title, [row_label] + list(col_labels), rows)


def render_headroom(
    title: str,
    labeled_stats: Sequence[Tuple[str, object]],
) -> str:
    """Per-cell history-window headroom: one row per labeled
    :class:`~repro.core.history.WindowHeadroomStats`.

    The deficit columns are lower bounds on the extra window each late
    arrival would have needed; ``late = 0`` rows are the envelope's safe
    region.  Used by the window-envelope mapper's report and anything
    else that carries headroom-bearing cells.
    """
    rows = []
    for label, s in labeled_stats:
        rows.append([
            label,
            s.window_us,
            s.late_count,
            s.max_deficit_us,
            s.p50_deficit_us,
            s.p90_deficit_us,
            s.p99_deficit_us,
        ])
    return render_table(
        title,
        ["cell", "window (us)", "late", "max deficit (us)",
         "p50 (us)", "p90 (us)", "p99 (us)"],
        rows,
    )


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def comparison_verdict(rows: List[Tuple[str, float, float]]) -> str:
    """Render paper-vs-measured shape checks for EXPERIMENTS.md."""
    lines = []
    for label, paper_value, measured in rows:
        lines.append(f"  {label}: paper~{paper_value:g} measured={measured:.4g}")
    return "\n".join(lines)
