"""Measurement post-processing and report rendering for the evaluation."""

from repro.analysis.metrics import (
    Cdf,
    mean,
    median,
    percentile,
)
from repro.analysis.report import ascii_cdf, render_series, render_table

__all__ = [
    "Cdf",
    "ascii_cdf",
    "mean",
    "median",
    "percentile",
    "render_series",
    "render_table",
]
