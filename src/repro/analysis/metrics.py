"""Distribution statistics for the evaluation figures.

Every figure in the paper is either a CDF over per-node / per-event
measurements (Figures 6 and 7) or a mean-vs-parameter series (Figure 8).
:class:`Cdf` is the common currency: benches build them from raw samples
and compare medians, tails and crossings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence (charts tolerate gaps)."""
    seq = list(samples)
    return sum(seq) / len(seq) if seq else 0.0


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    value = ordered[lo] * (1 - frac) + ordered[hi] * frac
    # interpolation rounding must not escape the sample range
    return min(max(value, ordered[0]), ordered[-1])


def median(samples: Sequence[float]) -> float:
    return percentile(samples, 50.0)


@dataclass
class Cdf:
    """An empirical cumulative distribution function."""

    samples: List[float]

    @classmethod
    def of(cls, samples: Iterable[float]) -> "Cdf":
        data = sorted(float(s) for s in samples)
        if not data:
            raise ValueError("cannot build a CDF from zero samples")
        return cls(samples=data)

    def __len__(self) -> int:
        return len(self.samples)

    def at(self, value: float) -> float:
        """Fraction of samples <= value."""
        lo, hi = 0, len(self.samples)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.samples[mid] <= value:
                lo = mid + 1
            else:
                hi = mid
        return lo / len(self.samples)

    def quantile(self, q: float) -> float:
        return percentile(self.samples, q * 100.0)

    def median(self) -> float:
        return self.quantile(0.5)

    def mean(self) -> float:
        return mean(self.samples)

    def min(self) -> float:
        return self.samples[0]

    def max(self) -> float:
        return self.samples[-1]

    def points(self, n: int = 20) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) pairs for plotting/reporting."""
        if n < 2:
            raise ValueError("need at least two points")
        out = []
        for i in range(n):
            q = i / (n - 1)
            out.append((self.quantile(q), q))
        return out

    def tail_beyond(self, value: float) -> float:
        """Fraction of samples strictly greater than value (tail mass)."""
        return 1.0 - self.at(value)

    def summary(self) -> str:
        return (
            f"n={len(self)} min={self.min():.3g} p50={self.median():.3g} "
            f"p90={self.quantile(0.9):.3g} p99={self.quantile(0.99):.3g} "
            f"max={self.max():.3g} mean={self.mean():.3g}"
        )


def dominates(a: Cdf, b: Cdf, at_quantiles: Sequence[float] = (0.25, 0.5, 0.75, 0.9)) -> bool:
    """True when distribution ``a`` is no worse (<=) than ``b`` at every
    checked quantile -- the "who wins" shape test used by benches."""
    return all(a.quantile(q) <= b.quantile(q) for q in at_quantiles)
