"""The paper's case studies as reusable scenarios (Section 4).

Two known historical bugs, each wired up exactly as in the paper's
figures, runnable under any stack:

* :func:`xorp_bgp_scenario` -- Figure 4: the XORP 0.4 BGP path-selection
  ordering bug.  Three paths with non-transitive MED preference race to
  router R3; the buggy incremental decision process picks p3 or p2
  depending on arrival order.
* :func:`quagga_rip_scenario` -- Figure 5: the Quagga 0.96.5 RIP
  timer-refresh timing bug.  Main router R2 dies; whether backup R3's
  periodic announcement lands before or after R1's route expiry decides
  between a correct fail-over and a permanent black hole.

Each scenario returns both the observable *outcome* (which path won /
whether the black hole formed) and the full
:class:`~repro.harness.ProductionResult`, so tests and benches can assert
nondeterminism under the vanilla stack, determinism under DEFINED-RB, and
exact reproduction under DEFINED-LS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.harness import ProductionResult, run_production
from repro.routing.bgp import BgpPath, BuggyXorpBgp, CorrectBgp
from repro.routing.rip import BuggyQuaggaRip, CorrectRip
from repro.simnet.engine import SECOND
from repro.simnet.events import ANNOUNCE, NODE_DOWN, EventSchedule, ExternalEvent
from repro.topology import TopologyGraph

# ----------------------------------------------------------------------
# Figure 4: XORP BGP MED ordering bug
# ----------------------------------------------------------------------

#: The paper's three paths: same AS-path length; p1/p2 share a neighboring
#: AS (so MED compares them); p3 is alone in its group.  Pairwise: p2>p1,
#: p3>p2, p1>p3 -- non-transitive.  Full selection picks p3.
BGP_PATHS = {
    "p1": BgpPath(prefix="10.0.0.0/8", path_id="p1", as_path_len=3,
                  med=10, neighbor_as="AS-A", igp_dist=10),
    "p2": BgpPath(prefix="10.0.0.0/8", path_id="p2", as_path_len=3,
                  med=5, neighbor_as="AS-A", igp_dist=30),
    "p3": BgpPath(prefix="10.0.0.0/8", path_id="p3", as_path_len=3,
                  med=20, neighbor_as="AS-B", igp_dist=20),
}

BGP_PREFIX = "10.0.0.0/8"

#: The correct decision outcome (what a patched router must always pick).
BGP_CORRECT_BEST = "p3"


def bgp_topology() -> TopologyGraph:
    """R1/R2 are border routers with eBGP peers; R3 is the internal router
    where the decision bug manifests."""
    return TopologyGraph(
        name="xorp-fig4",
        nodes=["R1", "R2", "R3"],
        edges=[("R1", "R3", 3_000), ("R2", "R3", 3_000), ("R1", "R2", 3_000)],
    )


def bgp_schedule() -> EventSchedule:
    """p1 announces first (R3's initial best); p2 (at R2) and p3 (at R1)
    race -- their relative arrival order at R3 triggers or hides the bug."""
    schedule = EventSchedule()
    schedule.add(ExternalEvent(
        time_us=1 * SECOND + 31_000, kind=ANNOUNCE, target="R1",
        data=BGP_PATHS["p1"].to_wire(),
    ))
    schedule.add(ExternalEvent(
        time_us=2 * SECOND + 57_000, kind=ANNOUNCE, target="R2",
        data=BGP_PATHS["p2"].to_wire(),
    ))
    schedule.add(ExternalEvent(
        time_us=2 * SECOND + 57_000, kind=ANNOUNCE, target="R1",
        data=BGP_PATHS["p3"].to_wire(),
    ))
    return schedule


def bgp_daemon_factory(decision: str = "buggy") -> Callable:
    graph = bgp_topology()
    adjacency = {n: sorted(p) for n, p in graph.adjacency().items()}
    cls = BuggyXorpBgp if decision == "buggy" else CorrectBgp

    def factory(node_id: str, stack):
        return cls(node_id, stack, peers=adjacency[node_id])

    return factory


@dataclass
class BgpOutcome:
    """What the Figure 4 scenario produced."""

    best_at_r3: Optional[str]
    result: ProductionResult

    @property
    def bug_manifested(self) -> bool:
        return self.best_at_r3 != BGP_CORRECT_BEST


def xorp_bgp_scenario(
    mode: str = "vanilla",
    decision: str = "buggy",
    seed: int = 0,
    jitter_us: int = 1_500,
    ordering: str = "OO",
) -> BgpOutcome:
    """Run the Figure 4 scenario; returns R3's chosen best path."""
    graph = bgp_topology()
    result = run_production(
        graph,
        bgp_schedule(),
        mode=mode,
        seed=seed,
        jitter_us=jitter_us,
        ordering=ordering,
        daemon_factory=bgp_daemon_factory(decision),
        measure_convergence=False,
        settle_us=SECOND // 2,
        tail_us=3 * SECOND,
    )
    daemon = result.network.nodes["R3"].daemon
    return BgpOutcome(best_at_r3=daemon.best_path_id(BGP_PREFIX), result=result)


# ----------------------------------------------------------------------
# Figure 5: Quagga RIP timer-refresh bug
# ----------------------------------------------------------------------

RIP_DEST = "dst"
RIP_MAIN = "R2"
RIP_BACKUP = "R3"

RIP_MAIN_INTERVAL = 4     # main announces every 4 virtual-time units (1 s)
RIP_TIMEOUT_UNITS = 12    # route lifetime 12 units (3 s)

#: "race" configuration: the backup announces every 16 units (4 s), i.e.
#: *less* often than the route lifetime.  After the main dies at
#: RIP_DEATH_US, R1's expiry (last main refresh + 3 s, ~8.0 s) nominally
#: coincides with the backup's announcement at ~8.0 s -- timer jitter then
#: decides, run by run, between the paper's two scenarios ("announcements
#: reach R1 before" vs "after the route times out").
RIP_RACE_BACKUP_INTERVAL = 16
#: "blackhole" configuration: the backup announces every 8 units (2 s),
#: more often than the route lifetime, so once the main dies the buggy
#: matcher refreshes the dead route forever -- the paper's permanent
#: black hole.
RIP_BLACKHOLE_BACKUP_INTERVAL = 8

RIP_DEATH_US = 5 * SECOND + 637_000
#: Observation instant for the race configuration: after the nominal
#: expiry (~8 s) + one refresh (~11 s) but before the backup's next
#: announcement (~12 s), so the two race outcomes are distinguishable:
#: still routing via the dead main (black hole) vs route flushed.
RIP_OBSERVE_US = 10 * SECOND + 500_000


def rip_topology() -> TopologyGraph:
    return TopologyGraph(
        name="quagga-fig5",
        nodes=["R1", "R2", "R3"],
        edges=[("R1", "R2", 2_000), ("R1", "R3", 2_000), ("R2", "R3", 2_500)],
    )


def rip_schedule() -> EventSchedule:
    schedule = EventSchedule()
    schedule.add(
        ExternalEvent(time_us=RIP_DEATH_US, kind=NODE_DOWN, target=RIP_MAIN)
    )
    return schedule


def rip_daemon_factory(
    matching: str = "buggy",
    backup_interval_units: int = RIP_RACE_BACKUP_INTERVAL,
) -> Callable:
    graph = rip_topology()
    adjacency = {n: sorted(p) for n, p in graph.adjacency().items()}
    cls = BuggyQuaggaRip if matching == "buggy" else CorrectRip

    def factory(node_id: str, stack):
        own = {}
        interval = RIP_MAIN_INTERVAL
        if node_id == RIP_MAIN:
            own = {RIP_DEST: 0}      # the main provider
        elif node_id == RIP_BACKUP:
            own = {RIP_DEST: 2}      # the backup advertises a worse metric
            interval = backup_interval_units
        return cls(
            node_id,
            stack,
            neighbors=adjacency[node_id],
            own_destinations=own,
            update_interval_units=interval,
            timeout_units=RIP_TIMEOUT_UNITS,
        )

    return factory


@dataclass
class RipOutcome:
    """What the Figure 5 scenario produced (R1's route at observation)."""

    route_via: Optional[str]
    result: ProductionResult

    @property
    def black_hole(self) -> bool:
        """True when R1 still routes through the dead main router."""
        return self.route_via == RIP_MAIN

    @property
    def recovered(self) -> bool:
        return self.route_via == RIP_BACKUP

    @property
    def flushed(self) -> bool:
        """The route expired correctly (recovery pending the backup's
        next announcement)."""
        return self.route_via is None


def quagga_rip_scenario(
    mode: str = "vanilla",
    matching: str = "buggy",
    config: str = "race",
    seed: int = 0,
    jitter_us: int = 1_500,
    ordering: str = "OO",
    observe_at_us: Optional[int] = None,
) -> RipOutcome:
    """Run the Figure 5 scenario and observe R1's route to the destination.

    ``config="race"``: bimodal under the buggy matcher -- black hole
    (route still via the dead R2) or correctly flushed, decided by the
    expiry-vs-announcement timing race.  ``config="blackhole"``: the
    backup announces faster than the timeout, so the buggy matcher is a
    deterministic, *permanent* black hole (and the correct matcher always
    fails over).
    """
    if config == "race":
        backup_interval = RIP_RACE_BACKUP_INTERVAL
        default_observe = RIP_OBSERVE_US
    elif config == "blackhole":
        backup_interval = RIP_BLACKHOLE_BACKUP_INTERVAL
        default_observe = 20 * SECOND
    else:
        raise ValueError(f"unknown RIP config {config!r}")
    observe = observe_at_us if observe_at_us is not None else default_observe
    if observe <= RIP_DEATH_US:
        raise ValueError("observation must come after the main router dies")
    graph = rip_topology()
    result = run_production(
        graph,
        rip_schedule(),
        mode=mode,
        seed=seed,
        jitter_us=jitter_us,
        ordering=ordering,
        daemon_factory=rip_daemon_factory(matching, backup_interval),
        measure_convergence=False,
        settle_us=SECOND // 2,
        tail_us=max(0, observe - RIP_DEATH_US),
    )
    daemon = result.network.nodes["R1"].daemon
    return RipOutcome(route_via=daemon.route_via(RIP_DEST), result=result)


# ----------------------------------------------------------------------
# sweep registrations: the builtin scenario set
# ----------------------------------------------------------------------
#
# Importing this module populates the sweep registry with the paper's two
# case studies plus the parameterized fault-injection family, so the CLI
# (``repro sweep``) and worker processes all see the same catalogue.

from repro import sweep as _sweep  # noqa: E402  (registration, see below)


def _bgp_sweep_schedule(graph: TopologyGraph, seed: int) -> EventSchedule:
    del graph, seed  # the Figure 4 race is fixed; the cell seed varies jitter
    return bgp_schedule()


def _bgp_expect(result) -> bool:
    best = result.network.nodes["R3"].daemon.best_path_id(BGP_PREFIX)
    return best in BGP_PATHS


def _rip_sweep_schedule(graph: TopologyGraph, seed: int) -> EventSchedule:
    del graph, seed
    return rip_schedule()


def _rip_blackhole_expect(result) -> bool:
    # blackhole config + buggy matcher: the dead main keeps being
    # refreshed, in every mode -- the paper's deterministic failure.
    return result.network.nodes["R1"].daemon.route_via(RIP_DEST) == RIP_MAIN


_xorp_bgp = _sweep.register(_sweep.Scenario(
    name="xorp-bgp-med",
    description="Figure 4: XORP 0.4 BGP MED ordering race (buggy decision)",
    topology=lambda seed: bgp_topology(),
    schedule=_bgp_sweep_schedule,
    daemon=lambda graph: bgp_daemon_factory("buggy"),
    expect=_bgp_expect,
    jitter_us=1_500,
    settle_us=SECOND // 2,
    tail_us=3 * SECOND,
))

_quagga_rip = _sweep.register(_sweep.Scenario(
    name="quagga-rip-blackhole",
    description="Figure 5: Quagga RIP timer-refresh bug, permanent-blackhole config",
    topology=lambda seed: rip_topology(),
    schedule=_rip_sweep_schedule,
    daemon=lambda graph: rip_daemon_factory(
        "buggy", RIP_BLACKHOLE_BACKUP_INTERVAL
    ),
    expect=_rip_blackhole_expect,
    jitter_us=1_500,
    settle_us=SECOND // 2,
    tail_us=20 * SECOND - RIP_DEATH_US,
))

_flap_storm = _sweep.register(_sweep.flap_storm_scenario())
_crash_restart = _sweep.register(_sweep.crash_restart_scenario())
_partition = _sweep.register(_sweep.partition_scenario())
_latency_jitter = _sweep.register(_sweep.latency_jitter_scenario())
_ddos_overload = _sweep.register(_sweep.ddos_overload_scenario())

# Composed builtins: every pair of fault scenarios is itself a scenario.
# These are the two canonical stress compositions from the ROADMAP --
# a partition cut in the middle of a flap storm, and a router crash
# during an event-rate overload (where mode intersection drops the
# ``ddos`` stop-and-wait mode: its restarts reboot at virtual time 0).
# Components are passed as objects, not names: get_scenario() would
# re-enter this module's import and freeze the builtin set early.
_composed = [
    _sweep.register(_sweep.compose(_flap_storm, _partition)),
    _sweep.register(_sweep.compose(_crash_restart, _ddos_overload)),
]

# Boundary-jitter variants of every builtin (case studies, fault family
# and compositions alike): the same scenario with each external event
# snapped onto a beacon-group boundary +/- 1us of seed-derived jitter,
# the handoff point for group tagging and anti-message retraction.
for _scenario in [
    _xorp_bgp, _quagga_rip, _flap_storm, _crash_restart, _partition,
    _latency_jitter, _ddos_overload, *_composed,
]:
    _sweep.register(_sweep.jittered(_scenario, jitter_us=1))

# Waxman size variants of the fault-injection family (the paper's
# scalability sizes, Section 5.3): each builtin re-based onto 20/40/80
# node Waxman graphs with schedule event counts scaled proportionally.
# The diamond-bound scenarios (latency-jitter, ddos-overload) switch to
# Waxman topologies when sized.  Registered for discoverability
# (``repro sweep --list``); any other size resolves dynamically as
# ``name@N``.  Size variants are *excluded* from the default sweep grid
# -- an 80-node defined cell runs for minutes, so they opt in by name.
SCALE_SIZES = (20, 40, 80)

for _scenario in [
    _flap_storm, _crash_restart, _partition, _latency_jitter, _ddos_overload,
]:
    for _n in SCALE_SIZES:
        _sized = _sweep.register(_scenario.sized(_n))
        # boundary-jitter variant of each sized builtin, keeping the
        # catalogue closed under the grammar: "a@N~j1us" is registered
        # exactly where "a@N" and "a~j1us" are
        _sweep.register(_sweep.jittered(_sized, jitter_us=1))
