"""External events -- the inputs that DEFINED records and replays.

The paper's determinism guarantee is conditional: *given the same set of
external events*, an instrumented network always executes identically.
External events are the things outside the instrumented domain:

* link failures and repairs (``link_down`` / ``link_up``);
* router failures and repairs (``node_down`` / ``node_up``);
* messages from routers outside the instrumented domain, e.g. eBGP
  announcements from a neighboring AS (``announce``).

Each event is observed at one or two nodes (both endpoints of a link, for
link events) and is what the partial recording captures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Tuple

LINK_DOWN = "link_down"
LINK_UP = "link_up"
NODE_DOWN = "node_down"
NODE_UP = "node_up"
ANNOUNCE = "announce"

_VALID_KINDS = frozenset({LINK_DOWN, LINK_UP, NODE_DOWN, NODE_UP, ANNOUNCE})


@dataclass(frozen=True)
class ExternalEvent:
    """A single external input to the network.

    ``target`` identifies the object affected: an ``(a, b)`` node-id pair
    for link events, a node id for node events, and the receiving node id
    for announcements.  ``data`` carries protocol-specific content for
    announcements (e.g. a BGP path advertisement).
    """

    time_us: int
    kind: str
    target: Any
    data: Any = None

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"unknown external event kind: {self.kind!r}")
        if self.time_us < 0:
            raise ValueError("external events cannot occur at negative time")

    def endpoints(self) -> Tuple[str, ...]:
        """Node ids at which this event is observed (and recorded)."""
        if self.kind in (LINK_DOWN, LINK_UP):
            a, b = self.target
            return (a, b)
        if self.kind in (NODE_DOWN, NODE_UP):
            return (self.target,)
        return (self.target,)


@dataclass(frozen=True)
class ObservedEvent:
    """An :class:`ExternalEvent` as seen by one node.

    This is the unit the DEFINED-RB shim tags with a group number and an
    origin sequence number, and the unit the recorder logs.  ``node`` is
    the observing node.
    """

    node: str
    event: ExternalEvent

    def describe(self) -> str:
        ev = self.event
        return f"{ev.kind}@{self.node} target={ev.target!r} t={ev.time_us}us"


@dataclass
class EventSchedule:
    """A time-ordered collection of external events (a workload trace)."""

    events: List[ExternalEvent] = field(default_factory=list)
    #: Memoized sort: the key builds a repr per event, so re-sorting on
    #: every ``__iter__``/application walk was a real cost on large
    #: schedules.  Invalidation is by mutator (``add``/``extend``) plus a
    #: length check, which also catches direct ``.events`` appends.
    _sorted_cache: Optional[List[ExternalEvent]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def add(self, event: ExternalEvent) -> None:
        self.events.append(event)
        self._sorted_cache = None

    def extend(self, events: Iterable[ExternalEvent]) -> None:
        self.events.extend(events)
        self._sorted_cache = None

    def sorted(self) -> List[ExternalEvent]:
        """Events in injection order (time, then kind/target for stability).

        Returns a fresh list over the memoized ordering: callers may
        slice and index freely without un-invalidatable aliasing.
        """
        cache = self._sorted_cache
        if cache is None or len(cache) != len(self.events):
            cache = sorted(
                self.events, key=lambda e: (e.time_us, e.kind, repr(e.target))
            )
            self._sorted_cache = cache
        return list(cache)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.sorted())

    def horizon_us(self) -> int:
        """Time of the last event, or 0 for an empty schedule."""
        return max((e.time_us for e in self.events), default=0)

    # -- scenario-composition hooks -----------------------------------
    # Fault-injection generators build small schedules independently and
    # the sweep subsystem composes them; these helpers keep composition
    # deterministic (no in-place aliasing surprises).

    def merged(self, *others: "EventSchedule") -> "EventSchedule":
        """A new schedule containing this one's events plus ``others``'."""
        out = EventSchedule(events=list(self.events))
        for other in others:
            out.extend(other.events)
        return out

    def shifted(self, offset_us: int) -> "EventSchedule":
        """A new schedule with every event moved by ``offset_us``."""
        out = EventSchedule()
        for event in self.events:
            out.add(
                ExternalEvent(
                    time_us=event.time_us + offset_us,
                    kind=event.kind,
                    target=event.target,
                    data=event.data,
                )
            )
        return out

    def kinds(self) -> Tuple[str, ...]:
        """Distinct event kinds present, sorted (for reports and tests)."""
        return tuple(sorted({e.kind for e in self.events}))

    def boundary_jittered(
        self,
        boundary_us: int,
        seed: int,
        jitter_us: int = 1,
        tag: str = "boundary-jitter",
    ) -> "EventSchedule":
        """Snap every event onto its nearest group boundary, perturbed by
        seed-derived jitter in ``[-jitter_us, +jitter_us]``.

        This is the adversarial placement for the DEFINED machinery: a
        beacon-group boundary is exactly where group tagging, the
        per-group ordering function and anti-message retraction hand off,
        so an event landing a microsecond on either side of it probes the
        regime where those transitions can go wrong.

        Per-target event order is preserved (a repair must not jitter
        ahead of its failure): when two events on the same target would
        collide or invert, the later one is clamped to one microsecond
        after the earlier.  Times are clamped at zero.  The result is a
        pure function of ``(schedule, boundary_us, seed, jitter_us)``.
        """
        if boundary_us <= 0:
            raise ValueError("boundary_us must be positive")
        if jitter_us < 0:
            raise ValueError("jitter_us cannot be negative")
        rng = random.Random(f"{tag}|{boundary_us}|{jitter_us}|{seed}")
        out = EventSchedule()
        last_for_target: dict = {}
        for event in self.sorted():
            boundary = round(event.time_us / boundary_us) * boundary_us
            t = max(0, boundary + rng.randint(-jitter_us, jitter_us))
            target_key = repr(event.target)
            prev = last_for_target.get(target_key)
            if prev is not None and t <= prev:
                t = prev + 1
            last_for_target[target_key] = t
            out.add(
                ExternalEvent(
                    time_us=t, kind=event.kind, target=event.target, data=event.data
                )
            )
        return out
