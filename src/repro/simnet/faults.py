"""Declarative network perturbations: clock skew and link-layer faults.

The chaos scenario DSL (:mod:`repro.chaos`) compiles its continuous
fault families into a :class:`NetworkTuning` that the harness installs on
the production :class:`~repro.simnet.network.Network` before boot.  Two
things make these safe to mix with the DEFINED machinery:

* every fault draw comes from a named, seed-derived RNG stream
  (``fault|<link>|<src>``), so the same scenario file and seed produce
  the same perturbed execution bit-for-bit; and
* faults only perturb what the paper's model already treats as
  nondeterministic -- message *timing* (skew, duplication, reordering)
  or message *loss* on links the recorder is not asked to treat as
  reliable (gray failures run in uninstrumented modes only; see
  ``Network.assert_lossless``).

A :class:`NetworkTuning` is pure configuration: frozen, hashable,
mergeable.  It carries no RNG state of its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Link-layer fault families understood by the transmit hook.
FAULT_KINDS = ("duplicate", "reorder", "gray")

#: Hard bound on per-node clock skew: half the 250 ms beacon interval.
#: Larger skews would let one node's beacon for group *g* arrive after
#: another node's beacon for group *g+1*, which is no longer "skew" but
#: a different group schedule entirely.
MAX_CLOCK_SKEW_US = 125_000


@dataclass(frozen=True)
class LinkFaultWindow:
    """One continuous link-layer fault, active over a time window.

    ``links`` lists canonical link ids (``"a~b"``, endpoints sorted);
    empty means the fault applies to every link.  The window is
    half-open: active while ``start_us <= now < end_us`` (``end_us=None``
    means until the end of the run).
    """

    kind: str
    links: Tuple[str, ...] = ()
    #: Per-packet trigger probability (``duplicate`` / ``reorder``).
    probability: float = 0.0
    #: ``reorder`` only: extra delay drawn uniformly from
    #: ``[0, magnitude_us]`` for packets that skip the FIFO clamp.
    magnitude_us: int = 0
    #: ``gray`` only: extra drop probability on a link that stays up.
    loss: float = 0.0
    start_us: int = 0
    end_us: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown link fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.kind in ("duplicate", "reorder"):
            if not 0.0 < self.probability <= 1.0:
                raise ValueError(
                    f"{self.kind} fault needs probability in (0, 1], got {self.probability}"
                )
        if self.kind == "reorder" and self.magnitude_us < 0:
            raise ValueError("reorder magnitude_us must be >= 0")
        if self.kind == "gray" and not 0.0 < self.loss < 1.0:
            raise ValueError(
                f"gray fault needs loss in (0, 1), got {self.loss}"
            )
        if self.start_us < 0:
            raise ValueError("start_us must be >= 0")
        if self.end_us is not None and self.end_us <= self.start_us:
            raise ValueError("end_us must be > start_us")

    def matches(self, link_id: str) -> bool:
        return not self.links or link_id in self.links

    def active_at(self, now_us: int) -> bool:
        if now_us < self.start_us:
            return False
        return self.end_us is None or now_us < self.end_us


@dataclass(frozen=True)
class NetworkTuning:
    """Frozen bundle of continuous perturbations for one production run.

    ``clock_skew_us`` maps node ids to a constant offset (positive =
    that node observes each beacon late, negative = early) applied to
    the beacon fan-out delay; it perturbs per-node group tagging without
    touching the recorder, so Theorem-1 replay still holds.
    """

    clock_skew_us: Tuple[Tuple[str, int], ...] = ()
    link_faults: Tuple[LinkFaultWindow, ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for node_id, skew in self.clock_skew_us:
            if node_id in seen:
                raise ValueError(f"duplicate clock-skew entry for node {node_id!r}")
            seen.add(node_id)
            if abs(skew) > MAX_CLOCK_SKEW_US:
                raise ValueError(
                    f"clock skew for {node_id!r} is {skew}us; |skew| must be "
                    f"<= {MAX_CLOCK_SKEW_US}us (half the beacon interval)"
                )

    def __bool__(self) -> bool:
        return bool(self.clock_skew_us or self.link_faults)

    def skew_map(self) -> Dict[str, int]:
        return dict(self.clock_skew_us)

    def merged(self, other: "NetworkTuning") -> "NetworkTuning":
        """Combine two tunings: skews sum per node, fault windows concatenate.

        Used by scenario composition (``a+b``), where each component
        contributes its own perturbations.
        """
        skews = self.skew_map()
        for node_id, skew in other.clock_skew_us:
            total = skews.get(node_id, 0) + skew
            # Summed skews saturate at the bound rather than raising:
            # composition must stay total over valid components.
            total = max(-MAX_CLOCK_SKEW_US, min(MAX_CLOCK_SKEW_US, total))
            skews[node_id] = total
        merged_skews = tuple(sorted(skews.items()))
        return NetworkTuning(
            clock_skew_us=merged_skews,
            link_faults=self.link_faults + other.link_faults,
        )
