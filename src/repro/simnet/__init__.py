"""Deterministic discrete-event network simulator substrate.

This package replaces the paper's Emulab testbed.  It provides:

* :mod:`repro.simnet.engine` -- an event queue with an integer-microsecond
  clock and deterministic tie-breaking, so the substrate itself is fully
  reproducible and all *modelled* nondeterminism (link jitter, processing
  delay variation) comes from explicit, seeded RNG streams.
* :mod:`repro.simnet.messages` -- wire messages and the DEFINED causal
  annotation record.
* :mod:`repro.simnet.link` -- link delay/jitter/loss models.
* :mod:`repro.simnet.node` -- the process host that owns a control-plane
  daemon (possibly wrapped by a DEFINED shim).
* :mod:`repro.simnet.network` -- topology wiring, link/router failures, and
  external event injection.
* :mod:`repro.simnet.transport` -- a reliable, ordered (TCP-like) channel
  used by DEFINED-LS debugging networks.
* :mod:`repro.simnet.stats` -- per-node counters used by the evaluation.
"""

from repro.simnet.engine import EventHandle, Simulator
from repro.simnet.events import ExternalEvent
from repro.simnet.link import DelayModel, Link
from repro.simnet.messages import Annotation, Message
from repro.simnet.network import Network
from repro.simnet.node import Node
from repro.simnet.stats import NodeStats

__all__ = [
    "Annotation",
    "DelayModel",
    "EventHandle",
    "ExternalEvent",
    "Link",
    "Message",
    "Network",
    "Node",
    "NodeStats",
    "Simulator",
]
