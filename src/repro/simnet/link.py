"""Links: delay, jitter and loss models.

Each link direction has a :class:`DelayModel`.  The *average* delay
(``avg_us``) plays a special role: the paper's DEFINED-RB measures average
link delays before launching the control-plane software and uses them to
build the deterministic ``d_i`` estimates.  We expose exactly that split --
``sample_us`` draws an actual (jittered) delay from a seeded RNG stream,
while ``avg_us`` is the deterministic estimate the ordering function uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class DelayModel:
    """Per-direction link delay model.

    ``base_us`` is the propagation floor; the actual delay of each packet
    is ``base_us`` plus a uniform jitter in ``[0, jitter_us]``.  ``loss``
    is an independent drop probability (only meaningful on production
    networks; the DEFINED-LS debugging network uses the reliable transport
    from :mod:`repro.simnet.transport`).
    """

    base_us: int = 1_000
    jitter_us: int = 500
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.base_us < 0 or self.jitter_us < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError("loss must be in [0, 1)")

    @property
    def avg_us(self) -> int:
        """The deterministic average delay used for d_i estimates."""
        return self.base_us + self.jitter_us // 2

    def sample_us(self, rng: random.Random) -> int:
        """Draw one actual packet delay."""
        if self.jitter_us == 0:
            return self.base_us
        return self.base_us + rng.randrange(self.jitter_us + 1)

    def sample_loss(self, rng: random.Random) -> bool:
        """Return True if the packet should be dropped."""
        return self.loss > 0.0 and rng.random() < self.loss


class Link:
    """An undirected link between two nodes with per-direction delay models.

    The link owns its up/down state; the :class:`~repro.simnet.network.Network`
    flips it in response to external events and refuses to carry packets
    while it is down.
    """

    __slots__ = ("a", "b", "model_ab", "model_ba", "up", "link_id")

    def __init__(
        self,
        a: str,
        b: str,
        model: DelayModel = DelayModel(),
        model_reverse: DelayModel = None,
    ) -> None:
        if a == b:
            raise ValueError("self-links are not supported")
        self.a = a
        self.b = b
        self.model_ab = model
        self.model_ba = model_reverse if model_reverse is not None else model
        self.up = True
        self.link_id = f"{min(a, b)}~{max(a, b)}"

    def endpoints(self) -> Tuple[str, str]:
        return (self.a, self.b)

    def other(self, node: str) -> str:
        """The endpoint opposite ``node``."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise ValueError(f"{node} is not an endpoint of {self.link_id}")

    def model_for(self, src: str) -> DelayModel:
        """Delay model for packets leaving ``src`` over this link."""
        if src == self.a:
            return self.model_ab
        if src == self.b:
            return self.model_ba
        raise ValueError(f"{src} is not an endpoint of {self.link_id}")

    def avg_delay_us(self, src: str) -> int:
        """Deterministic average delay from ``src`` to the other endpoint."""
        return self.model_for(src).avg_us

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.up else "DOWN"
        return f"<Link {self.link_id} {state} avg={self.model_ab.avg_us}us>"
