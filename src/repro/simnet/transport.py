"""Reliable, ordered transport (the debugging network's "TCP").

Section 2.3: *"The nodes use TCP for communication in order to ensure that
messages are not lost, which is necessary for determinism."*  Production
networks may drop packets (a recorded external fact), but the DEFINED-LS
debugging network must not -- a lost barrier marker would wedge the
lockstep protocol and a lost data message would diverge from the recorded
execution.

:class:`ReliableTransport` implements a per-peer stop-and-wait-window ARQ
with per-message sequence numbers: every logical message is wrapped in a
``_rel`` frame, acknowledged with ``_ack`` frames, retransmitted on
timeout, de-duplicated, and released to the receiver strictly in send
order.  The wrapped :class:`~repro.simnet.messages.Message` travels intact
(uid and annotation included), which the lockstep replay relies on for
anti-message bookkeeping.

Sends toward a *down* node are blackholed deliberately (no retransmit
storm): a dead router receives nothing in the production network either,
so the replay must not stall trying to reach it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from repro.simnet.engine import EventHandle
from repro.simnet.messages import Message
from repro.simnet.network import Network

RELIABLE_PROTOCOL = "_rel"
ACK_PROTOCOL = "_ack"


@dataclass
class _Frame:
    """A reliable frame: per-peer sequence number + the wrapped message."""

    seq: int
    msg: Message

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_Frame(seq={self.seq}, proto={self.msg.protocol})"


class ReliableTransport:
    """Per-node reliable channel multiplexer.

    One instance lives inside each DEFINED-LS stack.  ``deliver`` is
    invoked exactly once per logical message, in per-sender FIFO order,
    regardless of loss or reordering on the underlying links.
    """

    def __init__(
        self,
        node_id: str,
        network: Network,
        deliver: Callable[[Message], None],
        rto_us: int = 100_000,
        max_retries: int = 100,
    ) -> None:
        self.node_id = node_id
        self.network = network
        self.deliver = deliver
        self.rto_us = rto_us
        self.max_retries = max_retries
        self._send_seq: Dict[str, int] = {}
        self._recv_next: Dict[str, int] = {}
        self._reorder: Dict[str, Dict[int, Message]] = {}
        self._outstanding: Dict[Tuple[str, int], Tuple[Message, EventHandle, int]] = {}
        self.frames_sent = 0
        self.retransmissions = 0

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send_message(self, msg: Message) -> int:
        """Reliably send one logical message.  Returns its uid."""
        if msg.uid < 0:
            msg.uid = self.network.next_uid()
        dst = msg.dst
        seq = self._send_seq.get(dst, 0)
        self._send_seq[dst] = seq + 1
        self._transmit(dst, seq, msg, attempt=0)
        return msg.uid

    def send(self, dst: str, protocol: str, payload: Any, size_bytes: int = 64) -> int:
        """Convenience wrapper building the logical message in place."""
        return self.send_message(
            Message(
                src=self.node_id,
                dst=dst,
                protocol=protocol,
                payload=payload,
                size_bytes=size_bytes,
            )
        )

    def _transmit(self, dst: str, seq: int, msg: Message, attempt: int) -> None:
        if attempt > self.max_retries:
            raise RuntimeError(
                f"reliable transport {self.node_id}->{dst} gave up after "
                f"{self.max_retries} retries (seq={seq}); the debugging "
                "network is partitioned"
            )
        if not self.network.nodes[dst].up:
            # Blackhole toward a dead router; do not stall the replay.
            self._outstanding.pop((dst, seq), None)
            return
        frame = _Frame(seq=seq, msg=msg)
        wire = Message(
            src=self.node_id,
            dst=dst,
            protocol=RELIABLE_PROTOCOL,
            payload=frame,
            size_bytes=msg.size_bytes + 8,
        )
        self.network.transmit(wire)
        self.frames_sent += 1
        if attempt > 0:
            self.retransmissions += 1
        handle = self.network.sim.schedule(
            self.rto_us,
            self._on_timeout,
            dst,
            seq,
            msg,
            attempt,
            label=f"rto:{self.node_id}->{dst}:{seq}",
        )
        self._outstanding[(dst, seq)] = (msg, handle, attempt)

    def _on_timeout(self, dst: str, seq: int, msg: Message, attempt: int) -> None:
        if (dst, seq) not in self._outstanding:
            return  # acked in the meantime
        self._transmit(dst, seq, msg, attempt + 1)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def on_wire(self, msg: Message) -> bool:
        """Feed a raw packet in.  Returns True if it was consumed here."""
        if msg.protocol == ACK_PROTOCOL:
            self._on_ack(msg.src, msg.payload)
            return True
        if msg.protocol != RELIABLE_PROTOCOL:
            return False
        frame: _Frame = msg.payload
        self._send_ack(msg.src, frame.seq)
        expected = self._recv_next.get(msg.src, 0)
        if frame.seq < expected:
            return True  # duplicate of something already released
        buf = self._reorder.setdefault(msg.src, {})
        buf[frame.seq] = frame.msg
        while expected in buf:
            logical = buf.pop(expected)
            expected += 1
            self._recv_next[msg.src] = expected
            self.deliver(logical)
        return True

    def _send_ack(self, dst: str, seq: int) -> None:
        ack = Message(
            src=self.node_id,
            dst=dst,
            protocol=ACK_PROTOCOL,
            payload=seq,
            size_bytes=8,
        )
        self.network.transmit(ack)

    def _on_ack(self, src: str, seq: int) -> None:
        entry = self._outstanding.pop((src, seq), None)
        if entry is not None:
            entry[1].cancel()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def idle(self) -> bool:
        """True when no frames await acknowledgement."""
        return not self._outstanding

    def outstanding_count(self) -> int:
        return len(self._outstanding)
