"""Wire messages and DEFINED causal annotations.

Every message travelling through the simulated network is a
:class:`Message`.  When a network is instrumented by DEFINED-RB, the shim
attaches an :class:`Annotation` carrying the fields from Section 2.2 of the
paper:

* ``origin`` (the paper's *n_i*) -- identifier of the node that generated
  the first message of the causal chain;
* ``seq`` (*s_i*) -- strictly increasing sequence number assigned by the
  originating node;
* ``delay_us`` (*d_i*) -- deterministic estimate of the accumulated link
  delay from the originating node to the receiver, built from pre-measured
  average link delays;
* ``group`` -- the beacon group number (Section 2.2, "timesteps");
* ``chain`` -- the causal chain length within the group, used to bound
  chains (messages over the bound are pushed to the next group);
* ``sub`` -- a deterministic per-sender disambiguator.  The paper's triple
  ``(d_i, n_i, s_i)`` is not a total order when one delivery emits several
  messages along the same path; ``sub`` breaks those ties and is itself
  deterministic because it is produced by (deterministic) daemon execution
  and is checkpointed with the shim state.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Tuple

#: Sentinel ``d_i`` used for timer pseudo-entries: timers of group *g* are
#: ordered after every real message of group *g* but before any message of
#: group *g+1*.
TIMER_DELAY_SENTINEL = 2**62


@dataclass(frozen=True)
class Annotation:
    """DEFINED-RB causal annotation (Section 2.2).

    ``sender`` is the node that put this particular message on the wire.
    It is part of every ordering key because the paper's triple plus our
    ``sub`` tiebreaker is still not globally unique: ``sub`` counters are
    per-node, so two *different* relays of the same origination (e.g.
    acknowledgements from two neighbors) can coincide on
    ``(n_i, s_i, sub)`` -- and even on the accumulated delay estimate.
    Colliding keys would make two distinct messages indistinguishable
    from an anti-message replacement race.
    """

    origin: str
    seq: int
    delay_us: int
    group: int
    chain: int = 0
    sub: int = 0
    sender: str = ""

    def sort_key(self) -> Tuple[int, int, str, int, int, str]:
        """The paper's ordering key: group, then d_i, then n_i, then s_i,
        with the deterministic (sub, sender) tiebreakers appended."""
        return (self.group, self.delay_us, self.origin, self.seq, self.sub,
                self.sender)

    def extended(
        self,
        link_delay_us: int,
        sub: int,
        over_chain_bound: bool,
        sender: str = "",
        spill_bound_us: Optional[int] = None,
    ) -> "Annotation":
        """Annotation for a message *caused by* a message carrying ``self``.

        Per the paper: the child keeps the parent's origin and sequence
        number, accumulates the outgoing link's average delay into ``d_i``,
        and inherits the group number -- unless the causal chain exceeded
        the configured bound, in which case it is assigned to the next
        group (and the chain length restarts).

        ``spill_bound_us`` (normally the beacon interval) keeps the
        estimate *honest*: a group-``g`` message with ``d_i >= interval``
        is predicted to arrive during group ``g+1``'s phase or later, so
        tagging it ``g`` misplaces it -- its ordering key sorts below an
        entire phase of already-delivered traffic at every receiver,
        turning long floods under super-beacon jitter into rollback
        cascades deep enough to outrun the history window.  When the
        accumulated delay crosses the bound, the annotation spills into
        the next group phase (deterministically, so the production shim
        and the lockstep replay agree bit for bit) and ``d_i`` keeps the
        remainder: the estimated offset into the phase it now belongs to.
        Lexicographic ``(group, d_i)`` order is then exactly order by
        ``group * bound + d_i``, so spilling preserves the strict
        causal monotonicity of the key along chains.
        """
        group = self.group
        chain = self.chain + 1
        delay = self.delay_us + link_delay_us
        if over_chain_bound:
            group += 1
            chain = 0
        if spill_bound_us is not None and spill_bound_us > 0:
            while delay >= spill_bound_us:
                group += 1
                chain = 0
                delay -= spill_bound_us
        return Annotation(
            origin=self.origin,
            seq=self.seq,
            delay_us=delay,
            group=group,
            chain=chain,
            sub=sub,
            sender=sender,
        )


def intern_payload_repr(payload: Any) -> str:
    """Canonical, interned repr of a message payload.

    The repr is the payload's *identity* in delivery-log tags and output
    ids, so it is computed exactly once per message -- at origination,
    where the store contract freezes the payload -- and interned:
    floods re-send the same few payloads thousands of times, and
    rollback re-executions re-tag the same deliveries, so sharing one
    string object per distinct payload keeps the hot loop allocation-free
    and makes tag comparisons pointer-fast.
    """
    return sys.intern(repr(payload))


#: Protocol name used by DEFINED control traffic (beacons, unsends, barrier
#: messages).  Control messages are counted separately in the statistics
#: because Figure 6a/8a report control overhead.
CONTROL_PROTOCOLS = frozenset({"_beacon", "_unsend", "_barrier", "_marker", "_ack"})


@dataclass
class Message:
    """A message on the wire.

    ``uid`` is globally unique and assigned by the :class:`~repro.simnet.network.Network`
    when the message is first transmitted.  Anti-messages ("unsends") refer
    to these uids.  ``payload`` is protocol-specific and must be treated as
    immutable by receivers.
    """

    src: str
    dst: str
    protocol: str
    payload: Any
    uid: int = -1
    annotation: Optional[Annotation] = None
    size_bytes: int = 64
    sent_at_us: int = -1
    #: Canonical payload repr, frozen at origination (see
    #: :func:`intern_payload_repr`).  ``None`` until first requested;
    #: :meth:`with_annotation` carries it across copies so re-annotated
    #: relays never re-render it.
    payload_repr: Optional[str] = field(default=None, repr=False, compare=False)

    @property
    def is_control(self) -> bool:
        """True for DEFINED's own control traffic (not application data)."""
        return self.protocol in CONTROL_PROTOCOLS

    def canonical_payload_repr(self) -> str:
        """The interned canonical payload repr, computed at most once.

        Callers on the identity path (tags, output ids) must use this
        instead of ``repr(self.payload)``: mutating a payload after
        origination is a store-contract violation (lint rule STO204), and
        the cache makes the freeze observable -- identity stays what it
        was when the message entered the network.
        """
        text = self.payload_repr
        if text is None:
            text = intern_payload_repr(self.payload)
            self.payload_repr = text
        return text

    def with_annotation(self, annotation: Annotation) -> "Message":
        """Return a copy carrying ``annotation`` (messages are value-like)."""
        return replace(self, annotation=annotation)

    def describe(self) -> str:
        """One-line human-readable summary used by the interactive debugger."""
        ann = ""
        if self.annotation is not None:
            a = self.annotation
            ann = f" [g={a.group} d={a.delay_us} n={a.origin} s={a.seq}.{a.sub}]"
        return f"{self.protocol} {self.src}->{self.dst} uid={self.uid}{ann}"


@dataclass
class Unsend:
    """Payload of an anti-message: roll back the listed message uids.

    Sent by a node performing a rollback to every neighbor it had sent
    now-invalidated messages to (Section 2.2, "Performing the rollback").

    ``uids`` must be **canonical** (sorted, duplicate-free): the rollback
    planners (:func:`repro.core.rollback.collect_unsends`, the lockstep
    unsend buffers) produce them that way at origination, so the
    constructor no longer re-canonicalizes on every construction -- this
    sits on the rollback hot path of flap storms.  Use :meth:`of` for
    uids of unknown provenance.
    """

    uids: Tuple[int, ...] = field(default_factory=tuple)

    @classmethod
    def of(cls, uids) -> "Unsend":
        """Canonicalize arbitrary uids (sorted, deduplicated) once."""
        return cls(uids=tuple(sorted(set(uids))))
