"""Per-node statistics used by the evaluation harness.

The paper's figures are all distributions over per-node or per-event
measurements: control packets per node (Fig 6a/8a), convergence times
(Fig 6b/8b/8d), per-step response times (Fig 6c/8c), rollback and
non-rollback processing overheads (Fig 7a/7b), and memory (Fig 7c).  The
counters here are the raw material for those distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class NodeStats:
    """Counters accumulated by one node during a run."""

    node: str = ""

    # --- wire traffic -------------------------------------------------
    data_packets_sent: int = 0
    data_packets_received: int = 0
    control_packets_sent: int = 0
    control_packets_received: int = 0
    beacons_received: int = 0
    bytes_sent: int = 0

    # --- DEFINED-RB behaviour ------------------------------------------
    deliveries: int = 0
    rollbacks: int = 0
    messages_rolled_back: int = 0
    unsends_sent: int = 0
    unsends_received: int = 0
    annihilated: int = 0

    # --- modelled costs (simulated microseconds) -----------------------
    checkpoint_cost_us: int = 0
    restore_cost_us: int = 0
    replay_cost_us: int = 0
    processing_samples_us: List[int] = field(default_factory=list)
    rollback_samples_us: List[int] = field(default_factory=list)

    # --- memory accounting (bytes) --------------------------------------
    virtual_memory_samples: List[int] = field(default_factory=list)
    physical_memory_samples: List[int] = field(default_factory=list)

    def total_packets(self, include_control: bool = True) -> int:
        """Packets this node handled (sent + received)."""
        total = self.data_packets_sent + self.data_packets_received
        if include_control:
            total += self.control_packets_sent + self.control_packets_received
        return total

    def record_processing(self, cost_us: int) -> None:
        self.processing_samples_us.append(cost_us)

    def record_rollback(self, cost_us: int, depth: int) -> None:
        self.rollbacks += 1
        self.messages_rolled_back += depth
        self.rollback_samples_us.append(cost_us)

    def record_memory(self, virtual_bytes: int, physical_bytes: int) -> None:
        self.virtual_memory_samples.append(virtual_bytes)
        self.physical_memory_samples.append(physical_bytes)


@dataclass
class RunStats:
    """Network-wide statistics for one experiment run."""

    per_node: Dict[str, NodeStats] = field(default_factory=dict)
    convergence_times_us: List[int] = field(default_factory=list)
    step_times_us: List[int] = field(default_factory=list)
    wall_seconds: float = 0.0

    def node(self, node_id: str) -> NodeStats:
        if node_id not in self.per_node:
            self.per_node[node_id] = NodeStats(node=node_id)
        return self.per_node[node_id]

    def packets_per_node(self, include_control: bool = True) -> List[int]:
        """The Fig 6a metric: one number per node (sorted node order)."""
        return [
            self.per_node[nid].total_packets(include_control)
            for nid in sorted(self.per_node)
        ]

    def total_rollbacks(self) -> int:
        return sum(s.rollbacks for s in self.per_node.values())

    def total_control_packets(self) -> int:
        return sum(
            s.control_packets_sent + s.control_packets_received
            for s in self.per_node.values()
        )

    def all_processing_samples(self) -> List[int]:
        out: List[int] = []
        for nid in sorted(self.per_node):
            out.extend(self.per_node[nid].processing_samples_us)
        return out

    def all_rollback_samples(self) -> List[int]:
        out: List[int] = []
        for nid in sorted(self.per_node):
            out.extend(self.per_node[nid].rollback_samples_us)
        return out
