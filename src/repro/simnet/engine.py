"""Deterministic discrete-event simulation engine.

The engine is the foundation of the reproduction: everything above it
(links, daemons, the DEFINED shim) schedules work through a single priority
queue keyed on ``(time_us, sequence)``.  The secondary ``sequence`` key makes
tie-breaking deterministic: two events scheduled for the same microsecond
always execute in scheduling order, on every run.

Simulated time is an integer number of microseconds.  Using integers (rather
than floats) removes any possibility of platform-dependent rounding
differences, which matters because the whole point of the paper is
bit-for-bit reproducible executions.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

#: One millisecond expressed in engine time units (microseconds).
MS = 1_000
#: One second expressed in engine time units (microseconds).
SECOND = 1_000_000


class SimulationError(RuntimeError):
    """Raised when the engine is used inconsistently (e.g. time travel)."""


class EventHandle:
    """A cancellable reference to a scheduled event.

    Handles are returned by :meth:`Simulator.schedule`.  Cancellation is
    lazy: the entry stays in the heap but is skipped when popped.  The
    owning simulator counts cancellations so it can compact the heap when
    dead entries pile up (routing daemons reset timers constantly, which
    would otherwise bloat long runs).
    """

    __slots__ = ("time_us", "seq", "callback", "args", "cancelled", "label", "_sim")

    def __init__(
        self,
        time_us: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        label: str = "",
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time_us = time_us
        self.seq = seq
        self.callback: Optional[Callable[..., None]] = callback
        self.args = args
        self.cancelled = False
        self.label = label
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        self.callback = None
        self.args = ()
        sim, self._sim = self._sim, None
        if sim is not None:
            sim._note_cancelled()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time_us, self.seq) < (other.time_us, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time_us}us seq={self.seq} {state} {self.label!r}>"


class Simulator:
    """A single-threaded discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(10 * MS, callback, arg1, arg2)
        sim.run(until_us=SECOND)

    The engine guarantees:

    * events fire in nondecreasing time order;
    * events with equal timestamps fire in the order they were scheduled;
    * ``sim.now`` never moves backwards.
    """

    #: Cancelled-entry compaction threshold: the heap is rebuilt (dropping
    #: dead entries) once at least this many cancellations are queued *and*
    #: they outnumber the live entries.  The amortized cost is O(1) per
    #: cancellation while memory stays within 2x the live event count.
    COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[EventHandle] = []
        self._cancelled_in_queue = 0
        self._compactions = 0
        self._events_executed = 0
        self._running = False

    @property
    def now(self) -> int:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of events dispatched so far."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of *live* (non-cancelled) events still queued."""
        return len(self._queue) - self._cancelled_in_queue

    @property
    def queue_size(self) -> int:
        """Raw queue length, including lazily-cancelled entries."""
        return len(self._queue)

    @property
    def compactions(self) -> int:
        """How many times the heap has been compacted (observability)."""
        return self._compactions

    def _note_cancelled(self) -> None:
        """Called by :meth:`EventHandle.cancel` for handles still queued."""
        self._cancelled_in_queue += 1
        if (
            self._cancelled_in_queue >= self.COMPACT_MIN_CANCELLED
            and self._cancelled_in_queue * 2 >= len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without the lazily-cancelled entries."""
        self._queue = [h for h in self._queue if not h.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0
        self._compactions += 1

    def schedule(
        self,
        delay_us: int,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay_us`` from now.

        ``delay_us`` must be non-negative; a zero delay runs the callback
        after all events already scheduled for the current instant.
        """
        if delay_us < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay_us})")
        handle = EventHandle(
            self._now + delay_us, self._seq, callback, args, label, sim=self
        )
        self._seq += 1
        heapq.heappush(self._queue, handle)
        return handle

    def schedule_at(
        self,
        time_us: int,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time_us < self._now:
            raise SimulationError(
                f"cannot schedule at {time_us} (now is {self._now})"
            )
        return self.schedule(time_us - self._now, callback, *args, label=label)

    def step(self) -> bool:
        """Run the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        """
        while self._queue:
            handle = heapq.heappop(self._queue)
            if handle.cancelled:
                self._cancelled_in_queue -= 1
                continue
            if handle.time_us < self._now:
                raise SimulationError("event queue corrupted: time went backwards")
            self._now = handle.time_us
            callback, args = handle.callback, handle.args
            handle.callback, handle.args = None, ()
            handle._sim = None  # fired: a later cancel() must not count
            self._events_executed += 1
            assert callback is not None
            callback(*args)
            return True
        return False

    def run(
        self,
        until_us: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains, ``until_us`` passes, or
        ``max_events`` have executed.

        Returns the number of events executed by this call.  When
        ``until_us`` is given, the clock is advanced to exactly ``until_us``
        on return even if the queue drained earlier, so repeated bounded
        runs tile time seamlessly.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    self._cancelled_in_queue -= 1
                    continue
                if until_us is not None and head.time_us > until_us:
                    break
                if max_events is not None and executed >= max_events:
                    break
                if self.step():
                    executed += 1
            if until_us is not None and self._now < until_us:
                self._now = until_us
        finally:
            self._running = False
        return executed

    def drain(self, max_events: int = 10_000_000) -> int:
        """Run until the queue is completely empty (bounded as a safeguard)."""
        executed = self.run(max_events=max_events)
        if self._queue and executed >= max_events:
            raise SimulationError(
                f"drain() hit the {max_events}-event safety bound; "
                "likely a livelock in the simulated system"
            )
        return executed
