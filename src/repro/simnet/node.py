"""Nodes and protocol stacks.

A :class:`Node` is a host in the simulated network.  It owns two layers:

* a **daemon** -- the control-plane software (an OSPF/BGP/RIP
  implementation from :mod:`repro.routing`), and
* a **stack** -- the layer between the daemon and the wire.

The stack is where DEFINED lives.  Three stacks are provided across the
code base, all implementing the same :class:`Stack` interface:

* :class:`VanillaStack` (here) -- no instrumentation; messages are
  delivered in arrival order and timers fire on the (jittered) system
  clock.  This models an uninstrumented XORP/Quagga deployment and is the
  baseline in every figure.
* :class:`repro.core.shim.DefinedShim` -- DEFINED-RB.
* :class:`repro.core.lockstep.LockstepStack` -- DEFINED-LS.

Daemons never talk to the network or the simulator directly; they only use
the :class:`Stack` API.  This is the paper's "user-space shim layer"
boundary: function wrappers around message sending, message receiving, and
timer calls.
"""

from __future__ import annotations

import abc
import random
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.core.fingerprint import DeliveryLog
from repro.simnet.events import ExternalEvent
from repro.simnet.messages import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.network import Network


class Stack(abc.ABC):
    """Interface between a control-plane daemon and the network.

    The *app-facing* half (``send`` / ``set_timer`` / ``cancel_timer`` /
    ``time_units`` / ``neighbors``) is everything a daemon may use.  The
    *node-facing* half (``start`` / ``on_wire`` / ``on_external``) is
    driven by the :class:`Node` and the network.
    """

    def __init__(self, node: "Node") -> None:
        self.node = node
        #: Ordered log of events delivered to the daemon, as stable string
        #: tags.  The set of per-node logs is the run's *fingerprint*:
        #: two runs with equal fingerprints are the same execution in the
        #: sense of Netzer and Miller's lemma (Lemma 1).  The log keeps a
        #: rolling per-node digest so fingerprinting at run end is O(1)
        #: per node (see :class:`repro.core.fingerprint.DeliveryLog`).
        self.delivery_log: DeliveryLog = DeliveryLog()

    # ------------------------------------------------------------------
    # app-facing API
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def send(
        self,
        dst: str,
        protocol: str,
        payload: Any,
        parent: Optional[Message] = None,
        size_bytes: int = 64,
    ) -> None:
        """Send ``payload`` to the adjacent node ``dst``.

        ``parent`` marks the *immediate causal relationship* of Section 3:
        daemons pass the message they are currently processing so the shim
        can propagate (n_i, s_i, d_i) annotations and know what to unsend
        on rollback.  ``parent=None`` marks an *originated* message (caused
        by an external event or a timer).
        """

    @abc.abstractmethod
    def set_timer(self, delay_units: int, key: str) -> None:
        """Arm (or re-arm) the named timer ``delay_units`` virtual-time
        units in the future.  One unit corresponds to one beacon interval
        (250 ms by default)."""

    @abc.abstractmethod
    def cancel_timer(self, key: str) -> None:
        """Disarm the named timer.  Cancelling an unarmed timer is a no-op."""

    @abc.abstractmethod
    def time_units(self) -> int:
        """Current time in virtual-time units.  Under DEFINED this is the
        beacon-driven deterministic virtual clock (Section 3)."""

    def neighbors(self) -> List[str]:
        """Identifiers of nodes adjacent over currently-up links."""
        return self.node.network.live_neighbors(self.node.node_id)

    # ------------------------------------------------------------------
    # node-facing API
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def start(self) -> None:
        """Boot the stack and the daemon."""

    @abc.abstractmethod
    def on_wire(self, msg: Message) -> None:
        """A packet arrived from the network."""

    @abc.abstractmethod
    def on_external(self, event: ExternalEvent) -> None:
        """An external event was observed at this node."""

    def on_crash(self) -> None:
        """The node is about to fail-stop (``node_down``).

        Called while the node is still up, immediately before liveness
        flips.  The default is a true fail-stop (no goodbye); stacks that
        survive their daemon (the DEFINED shim interposes in user space)
        may use it to quantize the observable death to a deterministic
        boundary."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def log_delivery(self, tag: str) -> None:
        self.delivery_log.append(tag)

    @property
    def daemon(self):
        return self.node.daemon

    @property
    def sim(self):
        return self.node.network.sim


class Node:
    """A host: daemon + stack + liveness state."""

    def __init__(self, node_id: str, network: "Network") -> None:
        self.node_id = node_id
        self.network = network
        self.up = True
        self.stack: Optional[Stack] = None
        self.daemon = None

    @property
    def stats(self):
        return self.network.run_stats.node(self.node_id)

    def start(self) -> None:
        if self.stack is None:
            raise RuntimeError(f"node {self.node_id} has no stack attached")
        self.stack.start()

    def deliver(self, msg: Message) -> None:
        """Called by the network when a packet arrives."""
        if not self.up or self.stack is None:
            return
        if msg.protocol == "_beacon":
            self.stats.beacons_received += 1
        elif msg.is_control:
            self.stats.control_packets_received += 1
        else:
            self.stats.data_packets_received += 1
        self.stack.on_wire(msg)

    def observe_external(self, event: ExternalEvent) -> None:
        """Called by the network when an external event touches this node."""
        if not self.up or self.stack is None:
            return
        self.stack.on_external(event)

    def set_up(self, up: bool) -> None:
        self.up = up

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.node_id} {'up' if self.up else 'DOWN'}>"


class VanillaStack(Stack):
    """The uninstrumented baseline stack.

    Messages are delivered to the daemon immediately in arrival order --
    which, because link jitter differs run to run (seed to seed), makes
    the *ordering* of deliveries nondeterministic.  Timers fire on the
    simulated wall clock with a small jittered skew, making *timing*
    nondeterministic as well.  These are exactly the two classes of
    nondeterministic bugs the paper targets (Section 1).
    """

    def __init__(
        self,
        node: "Node",
        timer_jitter_us: int = 20_000,
        proc_model=None,
    ) -> None:
        super().__init__(node)
        self.timer_jitter_us = timer_jitter_us
        #: Optional callable ``rng -> cost_us`` modelling the daemon's
        #: baseline per-message processing time (the "XORP" lines of
        #: Figure 7b).  ``None`` means zero-cost processing.
        self.proc_model = proc_model
        self._timers: Dict[str, Any] = {}
        self._rng: Optional[random.Random] = None
        self._cost_rng: Optional[random.Random] = None
        self._send_delay_us = 0
        self._started = False
        self._prestart: list = []

    def _timer_rng(self) -> random.Random:
        if self._rng is None:
            self._rng = self.node.network.rng_stream(f"timer|{self.node.node_id}")
        return self._rng

    # -- app-facing ----------------------------------------------------
    def send(
        self,
        dst: str,
        protocol: str,
        payload: Any,
        parent: Optional[Message] = None,
        size_bytes: int = 64,
    ) -> None:
        msg = Message(
            src=self.node.node_id,
            dst=dst,
            protocol=protocol,
            payload=payload,
            size_bytes=size_bytes,
        )
        self.node.network.transmit(msg, extra_delay_us=self._send_delay_us)

    def set_timer(self, delay_units: int, key: str) -> None:
        self.cancel_timer(key)
        unit_us = self.node.network.time_unit_us
        jitter = 0
        if self.timer_jitter_us:
            # symmetric skew: real event loops fire early or late around
            # the nominal deadline; a one-sided jitter would accumulate
            # into a systematic drift for frequently re-armed timers
            jitter = self._timer_rng().randint(
                -self.timer_jitter_us, self.timer_jitter_us
            )
        handle = self.sim.schedule(
            max(0, delay_units * unit_us + jitter),
            self._fire_timer,
            key,
            label=f"timer:{self.node.node_id}:{key}",
        )
        self._timers[key] = handle

    def cancel_timer(self, key: str) -> None:
        handle = self._timers.pop(key, None)
        if handle is not None:
            handle.cancel()

    def time_units(self) -> int:
        return self.sim.now // self.node.network.time_unit_us

    # -- node-facing ----------------------------------------------------
    def start(self) -> None:
        if self.daemon is not None:
            self.daemon.on_start()
        self._started = True
        buffered, self._prestart = self._prestart, []
        for kind, item in buffered:
            if kind == "wire":
                self.on_wire(item)
            else:
                self.on_external(item)

    def _proc_cost_us(self) -> int:
        if self.proc_model is None:
            return 0
        if self._cost_rng is None:
            self._cost_rng = self.node.network.rng_stream(
                f"cost|{self.node.node_id}"
            )
        return int(self.proc_model(self._cost_rng))

    def on_wire(self, msg: Message) -> None:
        if msg.is_control:
            return  # vanilla nodes ignore DEFINED control traffic
        if not self._started:
            # staggered cold boot: hold arrivals for the boot window
            self._prestart.append(("wire", msg))
            return
        self.log_delivery(f"msg:{msg.protocol}:{msg.src}:{_payload_tag(msg.payload)}")
        self.node.stats.deliveries += 1
        cost = self._proc_cost_us()
        if cost:
            self.node.stats.record_processing(cost)
        if self.daemon is not None:
            self._send_delay_us = cost
            try:
                self.daemon.on_message(msg)
            finally:
                self._send_delay_us = 0

    def on_external(self, event: ExternalEvent) -> None:
        if not self._started:
            self._prestart.append(("ext", event))
            return
        self.log_delivery(f"ext:{event.kind}:{event.target!r}")
        if self.daemon is not None:
            self.daemon.on_external(event)

    def _fire_timer(self, key: str) -> None:
        if not self.node.up:
            return
        self._timers.pop(key, None)
        self.log_delivery(f"timer:{key}")
        if self.daemon is not None:
            self.daemon.on_timer(key)


def _payload_tag(payload: Any) -> str:
    """A stable, order-insensitive string tag for a message payload."""
    try:
        return repr(payload)
    except Exception:  # pragma: no cover - defensive
        return f"<{type(payload).__name__}>"
