"""The simulated network: topology, transmission, failures, workloads.

A :class:`Network` ties together the event engine, the links, and the
nodes.  It is deliberately the *only* place where modelled nondeterminism
enters the system: every random draw (link jitter, loss, timer skew) comes
from a named RNG stream derived from the network's ``seed``.  Running the
same workload with two different seeds yields two different "real world"
executions -- different message orderings and timings -- which is the
nondeterminism DEFINED-RB is designed to mask.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.simnet.engine import Simulator
from repro.simnet.events import (
    ANNOUNCE,
    LINK_DOWN,
    LINK_UP,
    NODE_DOWN,
    NODE_UP,
    EventSchedule,
    ExternalEvent,
)
from repro.simnet.faults import LinkFaultWindow, NetworkTuning
from repro.simnet.link import DelayModel, Link
from repro.simnet.messages import Message
from repro.simnet.node import Node, Stack, VanillaStack
from repro.simnet.stats import RunStats

#: Default virtual-time unit: the paper broadcasts one beacon every 250 ms
#: and advances virtual time by one unit per beacon (Section 3).
DEFAULT_TIME_UNIT_US = 250_000

StackFactory = Callable[[Node], Stack]
DaemonFactory = Callable[[str, Stack], object]


class Network:
    """A simulated network of control-plane nodes.

    Parameters
    ----------
    seed:
        Seed for all modelled-nondeterminism RNG streams.  Two runs with
        the same topology, workload and seed are bit-identical; changing
        the seed changes arrival orderings and timer skews.
    time_unit_us:
        Length of one virtual-time unit (= beacon interval under DEFINED).
    """

    def __init__(self, seed: int = 0, time_unit_us: int = DEFAULT_TIME_UNIT_US) -> None:
        self.sim = Simulator()
        self.seed = seed
        self.time_unit_us = time_unit_us
        self.nodes: Dict[str, Node] = {}
        self.links: Dict[Tuple[str, str], Link] = {}
        self._adjacency: Dict[str, List[Link]] = {}
        self.run_stats = RunStats()
        self._uid = 0
        self._rng_cache: Dict[str, random.Random] = {}
        self._delay_matrix: Optional[Dict[str, Dict[str, int]]] = None
        #: Per-direction FIFO enforcement: physical links do not reorder
        #: packets, so a later transmission never arrives before an
        #: earlier one on the same (link, direction).  Without this,
        #: i.i.d. per-packet jitter would shuffle back-to-back bursts
        #: (e.g. a database exchange), which no real wire does.
        self._fifo_front: Dict[Tuple[str, str], int] = {}
        #: Messages annihilated in flight by an anti-message; checked at
        #: delivery time.  Maintained by the DEFINED-RB shims via
        #: :meth:`annihilate`.
        self._annihilated: set = set()
        #: Optional observer invoked for every applied external event.
        #: Production harnesses hook the DEFINED recorder here so topology
        #: facts (which have no single observing daemon) enter the partial
        #: recording.
        self.event_tap = None
        #: Per-node constant clock skew applied to beacon fan-out delays
        #: (chaos DSL ``clock_skew`` fault); empty means no skew anywhere.
        #: Consumed by :class:`repro.core.groups.BeaconService`.
        self.clock_skew_us: Dict[str, int] = {}
        #: Installed link-layer fault windows, in installation order.  The
        #: transmit hot path checks truthiness first, so a network with no
        #: faults draws exactly the same RNG sequence as before the chaos
        #: subsystem existed.
        self._link_faults: Tuple[LinkFaultWindow, ...] = ()
        #: Duplicated uids whose first copy has not arrived yet, and uids
        #: whose surviving copy already arrived (next copy is suppressed).
        self._dup_pending: set = set()
        self._dup_suppress: set = set()
        #: Applied link up/down transitions, in application order, as
        #: ``(time_us, link_id, up)``.  Post-run analyses (the chaos
        #: DSL's route-damping expectation, flap forensics) read this
        #: instead of re-deriving flaps from schedules, so mid-run state
        #: (a link still down at run end) is captured too.
        self.link_transitions: List[Tuple[int, str, bool]] = []
        #: Observability counters for the fault families, keyed by effect.
        self.fault_stats: Dict[str, int] = {
            "duplicated": 0,
            "dup_suppressed": 0,
            "reordered": 0,
            "gray_drops": 0,
        }

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: str) -> Node:
        if node_id in self.nodes:
            raise ValueError(f"duplicate node id {node_id!r}")
        node = Node(node_id, self)
        self.nodes[node_id] = node
        self._adjacency.setdefault(node_id, [])
        return node

    def add_link(
        self,
        a: str,
        b: str,
        model: DelayModel = DelayModel(),
        model_reverse: Optional[DelayModel] = None,
    ) -> Link:
        for end in (a, b):
            if end not in self.nodes:
                raise ValueError(f"unknown node {end!r}")
        key = self._link_key(a, b)
        if key in self.links:
            raise ValueError(f"duplicate link {a}-{b}")
        link = Link(a, b, model, model_reverse)
        self.links[key] = link
        self._adjacency[a].append(link)
        self._adjacency[b].append(link)
        self._delay_matrix = None
        return link

    def attach(
        self,
        stack_factory: StackFactory,
        daemon_factory: Optional[DaemonFactory] = None,
    ) -> None:
        """Instantiate a stack (and optionally a daemon) on every node."""
        for node in self.nodes.values():
            node.stack = stack_factory(node)
            if daemon_factory is not None:
                node.daemon = daemon_factory(node.node_id, node.stack)

    def attach_vanilla(
        self,
        daemon_factory: Optional[DaemonFactory] = None,
        timer_jitter_us: int = 20_000,
    ) -> None:
        """Attach the uninstrumented baseline stack everywhere."""
        self.attach(
            lambda node: VanillaStack(node, timer_jitter_us=timer_jitter_us),
            daemon_factory,
        )

    def start(self, stagger_us: int = 0) -> None:
        """Boot every node's stack/daemon (deterministic node-id order).

        ``stagger_us`` optionally spaces the boots out (node index times
        the value).  Caveat for DEFINED-RB networks: the delay-sensitive
        ordering assumes origins transmit at roughly the same time
        (Section 2.2), so staggering boots makes later nodes' boot
        traffic systematically late relative to its d_i estimates and
        multiplies rollbacks.  Keep any spread below one beacon interval
        so all boot traffic stays in group 0.
        """
        for index, node_id in enumerate(sorted(self.nodes)):
            if stagger_us <= 0:
                self.nodes[node_id].start()
            else:
                self.sim.schedule(
                    index * stagger_us,
                    self.nodes[node_id].start,
                    label=f"boot:{node_id}",
                )

    # ------------------------------------------------------------------
    # topology queries
    # ------------------------------------------------------------------
    @staticmethod
    def _link_key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def link_between(self, a: str, b: str) -> Optional[Link]:
        return self.links.get(self._link_key(a, b))

    def live_neighbors(self, node_id: str) -> List[str]:
        """Neighbors reachable over up links to up nodes, sorted."""
        out = []
        for link in self._adjacency.get(node_id, []):
            other = link.other(node_id)
            if link.up and self.nodes[other].up:
                out.append(other)
        return sorted(out)

    def all_neighbors(self, node_id: str) -> List[str]:
        """Neighbors regardless of link state, sorted."""
        return sorted(link.other(node_id) for link in self._adjacency.get(node_id, []))

    def node_ids(self) -> List[str]:
        return sorted(self.nodes)

    # ------------------------------------------------------------------
    # deterministic delay estimates (the paper's measured average delays)
    # ------------------------------------------------------------------
    def avg_link_delay_us(self, src: str, dst: str) -> int:
        link = self.link_between(src, dst)
        if link is None:
            raise ValueError(f"no link {src}-{dst}")
        return link.avg_delay_us(src)

    def delay_matrix(self) -> Dict[str, Dict[str, int]]:
        """All-pairs shortest path delays over average link delays.

        Used for deterministic beacon propagation schedules and for the
        history-window bound (2x the maximum propagation time,
        Section 2.2).  Computed once and cached; link state changes do not
        invalidate it because the paper fixes delay estimates at launch.
        """
        if self._delay_matrix is None:
            self._delay_matrix = {
                src: self._dijkstra(src) for src in self.nodes
            }
        return self._delay_matrix

    def _dijkstra(self, src: str) -> Dict[str, int]:
        dist = {src: 0}
        heap: List[Tuple[int, str]] = [(0, src)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, float("inf")):
                continue
            for link in self._adjacency.get(u, []):
                v = link.other(u)
                nd = d + link.avg_delay_us(u)
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return dist

    def assert_lossless(self, context: str = "DEFINED-RB") -> None:
        """Fail fast when any link can drop packets.

        Deterministic execution assumes reliable delivery (the paper's
        control planes run over TCP; footnote 4 offers recording losses
        as the alternative, which this reproduction does not implement).
        Silently running an instrumented network over lossy links would
        produce recordings that cannot reproduce the execution.  Gray
        failures (lossy-but-up fault windows from the chaos DSL) are loss
        by another name and are rejected for the same reason.
        """
        for link in self.links.values():
            if link.model_ab.loss > 0 or link.model_ba.loss > 0:
                raise ValueError(
                    f"{context} requires lossless links, but {link.link_id} "
                    f"has a loss model; use loss=0 or an uninstrumented mode"
                )
        for fault in self._link_faults:
            if fault.kind == "gray":
                raise ValueError(
                    f"{context} requires lossless links, but a gray-failure "
                    f"window (loss={fault.loss}) is installed; gray scenarios "
                    f"run in uninstrumented modes only"
                )

    def max_propagation_us(self) -> int:
        """Largest finite all-pairs delay (the network 'diameter' in time)."""
        best = 0
        for row in self.delay_matrix().values():
            for d in row.values():
                if d > best:
                    best = d
        return best

    # ------------------------------------------------------------------
    # declarative perturbations (chaos DSL fault families)
    # ------------------------------------------------------------------
    def install_tuning(self, tuning: Optional[NetworkTuning]) -> None:
        """Install clock skew and link-layer fault windows before the run.

        Validates targets against the built topology: unknown node ids or
        link ids fail loudly here rather than silently perturbing nothing.
        Must be called before :meth:`start` -- fault windows are consulted
        at transmit time, so installing mid-run would perturb only the
        remaining traffic, which is not a scenario the DSL can express.
        """
        if tuning is None or not tuning:
            return
        for node_id, skew in tuning.clock_skew_us:
            if node_id not in self.nodes:
                raise ValueError(
                    f"clock-skew tuning references unknown node {node_id!r}"
                )
            self.clock_skew_us[node_id] = self.clock_skew_us.get(node_id, 0) + skew
        known_links = {link.link_id for link in self.links.values()}
        for fault in tuning.link_faults:
            for link_id in fault.links:
                if link_id not in known_links:
                    raise ValueError(
                        f"{fault.kind} fault window references unknown link "
                        f"{link_id!r}"
                    )
        self._link_faults = self._link_faults + tuple(tuning.link_faults)

    def _fault_transmit(
        self,
        link: Link,
        msg: Message,
        model: DelayModel,
        delay: int,
        extra_delay_us: int,
    ) -> bool:
        """Apply active link-layer fault windows to an outgoing packet.

        Returns True when the packet was fully handled here (gray-dropped
        or rescheduled out of FIFO order); the caller then skips the
        normal FIFO-clamped scheduling.  Duplication schedules the extra
        copy and returns False so the original proceeds normally.  All
        draws come from a dedicated per-(link, direction) stream so a
        scenario with no faults consumes the exact jitter sequence it did
        before this hook existed.
        """
        frng = self.rng_stream(f"fault|{link.link_id}|{msg.src}")
        for fault in self._link_faults:
            if not fault.matches(link.link_id) or not fault.active_at(self.sim.now):
                continue
            if fault.kind == "gray":
                if frng.random() < fault.loss:
                    self.fault_stats["gray_drops"] += 1
                    return True
            elif fault.kind == "reorder":
                if frng.random() < fault.probability:
                    # The packet takes a different path through the
                    # forwarding fabric: it skips the per-direction FIFO
                    # clamp entirely (may overtake or be overtaken) and
                    # picks up an extra uniform delay.
                    extra = (
                        frng.randrange(fault.magnitude_us + 1)
                        if fault.magnitude_us > 0
                        else 0
                    )
                    self.fault_stats["reordered"] += 1
                    self.sim.schedule(
                        delay + extra,
                        self._deliver,
                        msg,
                        label=f"deliver:{msg.uid}",
                    )
                    return True
            elif fault.kind == "duplicate":
                if frng.random() < fault.probability:
                    # Link-layer duplication beneath a deduplicating
                    # transport (the paper's control planes run over TCP):
                    # the daemon sees the uid once, at the earlier of the
                    # two independently delayed arrivals; the later copy
                    # is suppressed in _deliver and only counted.
                    self.fault_stats["duplicated"] += 1
                    self._dup_pending.add(msg.uid)
                    copy_delay = model.sample_us(frng) + extra_delay_us
                    self.sim.schedule(
                        copy_delay,
                        self._deliver,
                        msg,
                        label=f"deliver-dup:{msg.uid}",
                    )
        return False

    # ------------------------------------------------------------------
    # RNG streams
    # ------------------------------------------------------------------
    def rng_stream(self, name: str) -> random.Random:
        """A named, seeded RNG stream.  Stable for a given (seed, name)."""
        if name not in self._rng_cache:
            self._rng_cache[name] = random.Random(f"{self.seed}|{name}")
        return self._rng_cache[name]

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def next_uid(self) -> int:
        self._uid += 1
        return self._uid

    def _count_sent(self, msg: Message) -> None:
        stats = self.nodes[msg.src].stats
        if msg.protocol == "_beacon":
            pass  # beacons are constant background, tracked at receivers
        elif msg.is_control:
            stats.control_packets_sent += 1
        else:
            stats.data_packets_sent += 1
        stats.bytes_sent += msg.size_bytes

    def transmit(self, msg: Message, extra_delay_us: int = 0) -> int:
        """Put ``msg`` on the wire.  Returns the assigned uid.

        ``extra_delay_us`` models sender-side processing latency (e.g. the
        checkpointing overhead charged by DEFINED-RB before a response
        leaves the node); it is added to the sampled link delay.

        The packet is dropped (silently, as in a real network) when the
        link is down, an endpoint is down, or the loss model fires.
        """
        if msg.uid < 0:
            msg.uid = self.next_uid()
        msg.sent_at_us = self.sim.now
        src_node = self.nodes[msg.src]
        self._count_sent(msg)

        link = self.link_between(msg.src, msg.dst)
        if link is None:
            raise ValueError(f"no link for {msg.src}->{msg.dst}")
        if not link.up or not src_node.up or not self.nodes[msg.dst].up:
            return msg.uid
        model = link.model_for(msg.src)
        rng = self.rng_stream(f"jitter|{link.link_id}|{msg.src}")
        if model.sample_loss(rng):
            return msg.uid
        delay = model.sample_us(rng) + extra_delay_us
        if self._link_faults and self._fault_transmit(
            link, msg, model, delay, extra_delay_us
        ):
            return msg.uid
        fifo_key = (link.link_id, msg.src)
        arrival = max(
            self.sim.now + delay, self._fifo_front.get(fifo_key, 0) + 1
        )
        self._fifo_front[fifo_key] = arrival
        self.sim.schedule(
            arrival - self.sim.now, self._deliver, msg, label=f"deliver:{msg.uid}"
        )
        return msg.uid

    def transmit_deterministic(self, msg: Message, delay_us: int) -> int:
        """Transmit with an exact delay and no loss (beacons, LS barriers).

        Bypasses link lookup: used for traffic whose propagation must be
        reproducible (beacon distribution trees, coordinator barriers),
        with delays taken from the deterministic :meth:`delay_matrix`.
        """
        if msg.uid < 0:
            msg.uid = self.next_uid()
        msg.sent_at_us = self.sim.now
        self._count_sent(msg)
        self.sim.schedule(delay_us, self._deliver, msg, label=f"deliver:{msg.uid}")
        return msg.uid

    def _deliver(self, msg: Message) -> None:
        if msg.uid in self._dup_suppress:
            # Second copy of a duplicated packet: the transport already
            # accepted the first arrival, so this one is dropped before
            # any other bookkeeping (including annihilation, which was
            # settled by the surviving copy).
            self._dup_suppress.discard(msg.uid)
            self.fault_stats["dup_suppressed"] += 1
            return
        if msg.uid in self._dup_pending:
            self._dup_pending.discard(msg.uid)
            self._dup_suppress.add(msg.uid)
        if msg.uid in self._annihilated:
            self._annihilated.discard(msg.uid)
            node = self.nodes.get(msg.dst)
            if node is not None:
                node.stats.annihilated += 1
            return
        node = self.nodes.get(msg.dst)
        if node is not None:
            node.deliver(msg)

    def annihilate(self, uid: int) -> None:
        """Mark an in-flight message as unsent (anti-message caught it in
        transit); it will be dropped at delivery time."""
        self._annihilated.add(uid)

    def forget_annihilated(self, uid: int) -> None:
        self._annihilated.discard(uid)

    # ------------------------------------------------------------------
    # external events
    # ------------------------------------------------------------------
    def schedule_events(self, schedule: EventSchedule) -> None:
        for event in schedule:
            self.sim.schedule_at(
                event.time_us, self.apply_event, event, label=f"ext:{event.kind}"
            )

    def apply_event(self, event: ExternalEvent) -> None:
        """Apply an external event *now* and notify observing nodes."""
        if self.event_tap is not None:
            self.event_tap(event)
        if event.kind in (LINK_DOWN, LINK_UP):
            a, b = event.target
            link = self.link_between(a, b)
            if link is None:
                raise ValueError(f"external event references unknown link {event.target}")
            link.up = event.kind == LINK_UP
            # flap history for post-run analysis (e.g. the chaos DSL's
            # route-damping expectations): (time_us, link id, up?)
            self.link_transitions.append((self.sim.now, link.link_id, link.up))
            for end in (a, b):
                self.nodes[end].observe_external(event)
        elif event.kind in (NODE_DOWN, NODE_UP):
            node = self.nodes[event.target]
            if event.kind == NODE_DOWN and node.up and node.stack is not None:
                node.stack.on_crash()
            node.set_up(event.kind == NODE_UP)
            if event.kind == NODE_UP:
                node.start()
            node.observe_external(event)
        elif event.kind == ANNOUNCE:
            self.nodes[event.target].observe_external(event)
        else:  # pragma: no cover - EventSchedule validates kinds
            raise ValueError(f"unknown event kind {event.kind}")

    # ------------------------------------------------------------------
    # execution fingerprints
    # ------------------------------------------------------------------
    def delivery_logs(self) -> Dict[str, Tuple[str, ...]]:
        """Per-node sequences of events delivered to the daemons."""
        out: Dict[str, Tuple[str, ...]] = {}
        for node_id in sorted(self.nodes):
            stack = self.nodes[node_id].stack
            out[node_id] = tuple(stack.delivery_log) if stack is not None else ()
        return out

    def execution_fingerprint(self) -> str:
        """Fingerprint the run from the live per-node logs.

        Equal by construction to ``execution_fingerprint(self.delivery_logs())``
        but feeds the stacks' :class:`~repro.core.fingerprint.DeliveryLog`
        objects straight to the fold, so each node contributes its rolling
        digest instead of re-encoding every entry at run end.
        """
        from repro.core.fingerprint import execution_fingerprint

        logs = {
            node_id: (node.stack.delivery_log if node.stack is not None else ())
            for node_id, node in self.nodes.items()
        }
        return execution_fingerprint(logs)

    def run(self, until_us: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Convenience passthrough to the engine."""
        if until_us is None and max_events is None:
            return self.sim.drain()
        return self.sim.run(until_us=until_us, max_events=max_events)


def build_network(
    topology: Iterable[Tuple[str, str, int]],
    seed: int = 0,
    jitter_us: int = 500,
    loss: float = 0.0,
    time_unit_us: int = DEFAULT_TIME_UNIT_US,
) -> Network:
    """Build a :class:`Network` from ``(a, b, base_delay_us)`` triples.

    A small convenience used by examples and tests; the topology package
    produces richer graphs via :func:`repro.topology.to_network`.
    """
    net = Network(seed=seed, time_unit_us=time_unit_us)
    seen = set()
    for a, b, base_us in topology:
        for end in (a, b):
            if end not in seen:
                net.add_node(end)
                seen.add(end)
        net.add_link(a, b, DelayModel(base_us=base_us, jitter_us=jitter_us, loss=loss))
    return net
