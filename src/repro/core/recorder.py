"""Partial recordings: the only log DEFINED needs.

The motivation of the paper is that *comprehensive* recording (every
message at every node, as in Friday/OFRewind) does not scale, while
*partial* recording (external events only) normally cannot reproduce
nondeterministic bugs.  DEFINED-RB's determinism closes that gap: with
internal nondeterminism masked, replaying just the external events --
annotated with the group number and origin sequence each received in
production -- reproduces the entire execution (Theorem 1).

The recorder therefore captures, per observed external event: the
observing node, the event itself, the group number current at observation,
and the node-local origin sequence number.  It additionally captures
*send drops*: the deterministic identities of messages the daemon emitted
over a down link (or toward a dead node).  These are interface-with-the-
world facts (Section 2.5, "DEFINED records inputs at interfaces with
external systems") that the lockstep replay must honor, since its reliable
transport would otherwise deliver them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.simnet.events import ExternalEvent

#: Deterministic identity of one emitted message: (sender, origin, seq,
#: sub, group, dst, protocol).  Stable across runs because the sending
#: daemon executes deterministically under DEFINED.  The sender is part
#: of the identity because per-node sub counters can coincide across
#: senders.
SendIdentity = Tuple[str, str, int, int, int, str, str]


@dataclass(frozen=True)
class RecordedEvent:
    """One external event as logged at one node.

    ``offset_us`` is how far into its group the event was observed; the
    replay feeds it back into the d_i estimates of messages the event's
    processing originates (mid-group originations genuinely arrive later
    than the group's beacon-aligned traffic).
    """

    node: str
    time_us: int
    kind: str
    target: Any
    data: Any
    group: int
    seq: int
    offset_us: int = 0

    def to_external_event(self) -> ExternalEvent:
        return ExternalEvent(
            time_us=self.time_us, kind=self.kind, target=self.target, data=self.data
        )

    def estimated_bytes(self) -> int:
        """Approximate on-disk footprint (for the log-volume ablation)."""
        return 48 + len(self.node) + len(self.kind) + len(repr(self.target)) + len(
            repr(self.data)
        )


@dataclass
class Recording:
    """A complete partial recording of one production run."""

    events: List[RecordedEvent] = field(default_factory=list)
    drops: FrozenSet[SendIdentity] = frozenset()
    #: Highest group number the production run reached; the lockstep
    #: replay iterates groups 0..horizon_group inclusive so that purely
    #: timer-driven activity (periodic announcements) is reproduced too.
    horizon_group: int = 0
    #: Per-hop processing estimate the production shims folded into d_i;
    #: the replay must use the same value or its annotations (hence
    #: ordering keys) would differ from production's.
    hop_cost_us: int = 140
    #: The production network's measured average link delays, keyed
    #: ``"src>dst"``.  d_i estimates are *configuration* shared by both
    #: networks (Section 2.2 fixes them at launch); the debugging
    #: network's own links may have entirely different characteristics.
    delay_estimates: Dict[str, int] = field(default_factory=dict)
    #: The production beacon interval, used as the chain-delay spill
    #: bound: annotations whose accumulated d_i crosses it spill into the
    #: next group phase (see :meth:`Annotation.extended`).  The replay
    #: must use the production value, not its own network's, or its
    #: recomputed annotations (hence ordering keys and drop identities)
    #: would differ.  ``None`` disables spilling (recordings made before
    #: the bound existed replay with the estimates they were made with).
    spill_bound_us: Optional[int] = None

    def by_group(self) -> Dict[int, List[RecordedEvent]]:
        """Events bucketed by group, each bucket in (node, seq) order."""
        out: Dict[int, List[RecordedEvent]] = {}
        for ev in self.events:
            out.setdefault(ev.group, []).append(ev)
        for bucket in out.values():
            bucket.sort(key=lambda ev: (ev.node, ev.seq))
        return out

    def size_bytes(self) -> int:
        return sum(ev.estimated_bytes() for ev in self.events) + 32 * len(self.drops)

    # ------------------------------------------------------------------
    # (de)serialization -- recordings are meant to move from a production
    # site to a debugging site, so they must round-trip through files.
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        doc = {
            "format": "defined-recording-v1",
            "horizon_group": self.horizon_group,
            "hop_cost_us": self.hop_cost_us,
            "spill_bound_us": self.spill_bound_us,
            "delay_estimates": dict(sorted(self.delay_estimates.items())),
            "events": [
                {
                    "node": ev.node,
                    "time_us": ev.time_us,
                    "kind": ev.kind,
                    "target": _encode(ev.target),
                    "data": _encode(ev.data),
                    "group": ev.group,
                    "seq": ev.seq,
                    "offset_us": ev.offset_us,
                }
                for ev in self.events
            ],
            "drops": [list(d) for d in sorted(self.drops)],
        }
        return json.dumps(doc, indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Recording":
        doc = json.loads(text)
        if doc.get("format") != "defined-recording-v1":
            raise ValueError("not a DEFINED recording file")
        events = [
            RecordedEvent(
                node=e["node"],
                time_us=e["time_us"],
                kind=e["kind"],
                target=_decode(e["target"]),
                data=_decode(e["data"]),
                group=e["group"],
                seq=e["seq"],
                offset_us=e.get("offset_us", 0),
            )
            for e in doc["events"]
        ]
        drops = frozenset(tuple(d) for d in doc["drops"])
        return cls(
            events=events,
            drops=drops,
            horizon_group=doc["horizon_group"],
            hop_cost_us=doc.get("hop_cost_us", 140),
            delay_estimates=doc.get("delay_estimates", {}),
            spill_bound_us=doc.get("spill_bound_us"),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "Recording":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


def _encode(value: Any) -> Any:
    """JSON-encode targets/payloads, preserving tuples."""
    if isinstance(value, tuple):
        return {"__tuple__": [_encode(v) for v in value]}
    if isinstance(value, dict):
        return {k: _encode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_encode(v) for v in value]
    return value


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if "__tuple__" in value and len(value) == 1:
            return tuple(_decode(v) for v in value["__tuple__"])
        return {k: _decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


class Recorder:
    """Accumulates a :class:`Recording` during a production run.

    One recorder is shared by all shims in a network (the paper logs at
    each node; shipping the logs to one place is an offline concern).
    """

    #: Synthetic "observer" id for network-level topology facts; must stay
    #: in sync with :data:`repro.core.lockstep.NET_EVENTS_NODE`.
    NET_NODE = "__net__"

    def __init__(self) -> None:
        self._events: List[RecordedEvent] = []
        self._drops: set = set()
        self._horizon_group = 0
        self._topology_seq = 0
        #: Set by the harness to the shims' per-hop estimate (must reach
        #: the replay).
        self.hop_cost_us = 140
        #: Set by the harness to the production network's measured
        #: average link delays ("src>dst" -> microseconds).
        self.delay_estimates: Dict[str, int] = {}
        #: Set by the harness to the production beacon interval (the
        #: shims' chain-delay spill bound; must reach the replay).
        self.spill_bound_us: Optional[int] = None
        #: Group provider for topology events (typically ``lambda:
        #: beacon_service.group``); set by the harness.
        self.group_provider = None

    def record_event(
        self,
        node: str,
        event: ExternalEvent,
        group: int,
        seq: int,
        time_us: int,
        offset_us: int = 0,
    ) -> None:
        self._events.append(
            RecordedEvent(
                node=node,
                time_us=time_us,
                kind=event.kind,
                target=event.target,
                data=event.data,
                group=group,
                seq=seq,
                offset_us=offset_us,
            )
        )

    def record_send(self, identity: SendIdentity, deliverable: bool) -> None:
        """Record the outcome of one deterministic send: last outcome wins.

        The drop set must reflect the *final* execution, not the union of
        every speculative one: under rollbacks that straddle a link flap,
        the same send identity is re-emitted across re-executions under
        different physical link states.  A sticky "ever dropped" set then
        makes the lockstep replay suppress messages the final production
        execution delivered (or vice versa) -- the replay diverges with
        zero slack deficits.  Recording the latest outcome matches the
        final execution, because the final (never rolled back) emission of
        an identity is by definition the last one recorded.
        """
        if deliverable:
            self._drops.discard(identity)
        else:
            self._drops.add(identity)

    def record_drop(self, identity: SendIdentity) -> None:
        self.record_send(identity, deliverable=False)

    def record_topology(self, event: ExternalEvent, group: Optional[int] = None) -> None:
        """Log a network-level topology fact (link/node up/down).

        These have no observing daemon (a dead router records nothing) but
        the debugging network must still replay their effect; they are
        stored under the synthetic observer :data:`NET_NODE` and applied
        by the lockstep coordinator at the start of their group.
        """
        if group is None:
            group = self.group_provider() if self.group_provider is not None else 0
        self._events.append(
            RecordedEvent(
                node=self.NET_NODE,
                time_us=event.time_us,
                kind=event.kind,
                target=event.target,
                data=event.data,
                group=group,
                seq=self._topology_seq,
            )
        )
        self._topology_seq += 1

    def retag_topology_event(self, kind: str, target: Any, group: int) -> None:
        """Rewrite the group of the most recent network-level event
        matching ``(kind, target)``.

        The crash protocol needs this: the network logs the raw
        ``node_down`` under the beacon service's current group, but the
        dying shim then computes the *effective* death group (the first
        group whose traffic was not yet closed at the crash instant, see
        :meth:`DefinedShim.on_crash <repro.core.shim.DefinedShim.on_crash>`)
        and retracts everything from there -- so the replay must
        deactivate the node at that same group.
        """
        for i in range(len(self._events) - 1, -1, -1):
            ev = self._events[i]
            if ev.node == self.NET_NODE and ev.kind == kind and ev.target == target:
                self._events[i] = replace(ev, group=group)
                return

    def note_group(self, group: int) -> None:
        if group > self._horizon_group:
            self._horizon_group = group

    def recording(self) -> Recording:
        return Recording(
            events=list(self._events),
            drops=frozenset(self._drops),
            horizon_group=self._horizon_group,
            hop_cost_us=self.hop_cost_us,
            delay_estimates=dict(self.delay_estimates),
            spill_bound_us=self.spill_bound_us,
        )

    @property
    def event_count(self) -> int:
        return len(self._events)
