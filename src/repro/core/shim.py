"""DEFINED-RB: the per-node user-space shim (Sections 2.2 and 3).

The shim interposes between the control-plane daemon and the network,
wrapping message sending, message receiving, and timer calls.  It makes
the node's execution deterministic with an *optimistic* protocol:

1. every arrival is delivered to the daemon immediately (speculation),
   after taking a checkpoint;
2. every arrival is also checked against the deterministic ordering
   function over the sliding history window;
3. if the arrival should have been delivered *earlier* than something
   already delivered, the node rolls back: restore the checkpoint from
   the divergence point, "unsend" the messages emitted since (anti-
   messages, which cascade at the receivers), and replay the inputs in
   the correct order.

Timers are virtualized: the daemon's timers live in a checkpointed
:class:`~repro.core.virtual_time.TimerTable` keyed to beacon-driven
virtual time, and timer firings flow through the same ordering/rollback
machinery as messages (they occupy ``major=-1`` slots in each group, i.e.
a group's timers are ordered before the group's messages).

The shim also implements the partial-recording hooks: external events are
tagged (group, origin-sequence) and logged, and sends that the physical
network cannot deliver (down link / dead peer) are logged as *drops* so
the lockstep replay, which runs over reliable transport, suppresses them.
"""

from __future__ import annotations

import bisect
import random
import warnings
from collections import deque
from typing import Optional, Set

from repro.core.checkpoint import (
    Checkpoint,
    CheckpointStrategy,
    MemoryIntercept,
    baseline_processing_model,
)
from repro.core.history import (
    DeliveredHistory,
    HistoryEntry,
    WindowHeadroomStats,
)
from repro.core.ordering import OptimizedOrdering, OrderingFunction
from repro.core.recorder import Recorder
from repro.core.rollback import collect_unsends, find_rollback_index, plan_replay
from repro.core.statestore import SnapshotStrategy, StateStore
from repro.core.virtual_time import TimerTable
from repro.simnet.events import ExternalEvent
from repro.simnet.messages import Annotation, Message, Unsend
from repro.simnet.node import Node, Stack

#: Default bound on causal chain length within one group (Section 2.2:
#: "We further bound the length of each causal chain within a timestep").
DEFAULT_CHAIN_BOUND = 64


def default_window_us(network) -> int:
    """The default history-retention window for a network: 2x the max
    propagation time plus slack (the paper's footnote 3 uses mean +
    4 sigma; we add two beacon intervals and a 500 ms guard).

    Module-level so the window-envelope mapper (:mod:`repro.envelope`)
    can derive its ``--windows auto`` ladder from the same formula the
    shims will apply.
    """
    return (
        2 * network.max_propagation_us()
        + 2 * network.time_unit_us
        + 500_000
    )


class HistoryWindowWarning(UserWarning):
    """The sliding history window's slack ran out: an arrival sorted
    below an already-pruned entry, so its deterministic ordering cannot
    be guaranteed (it is delivered unordered and counted in
    ``late_deliveries``).

    This is a *misconfiguration signal*, not a transient: the window
    (:meth:`DefinedShim.window_us`) is too small for the deployment's
    jitter/propagation envelope.  ``deficit_us`` is a lower bound on how
    much more window would have been needed to cover this arrival --
    re-run with ``window_us >= window_us + deficit_us`` (or reduce the
    injected jitter).
    """

    def __init__(
        self,
        node_id: str,
        window_us: int,
        deficit_us: Optional[int],
        late_count: int,
    ) -> None:
        self.node_id = node_id
        self.window_us = window_us
        self.deficit_us = deficit_us
        self.late_count = late_count
        deficit = (
            f"short by >= {deficit_us}us"
            if deficit_us is not None
            else "deficit unknown (pruned entry predates measurement)"
        )
        super().__init__(
            f"history window exhausted at node {node_id}: arrival sorts "
            f"below the pruned window (window_us={window_us}, {deficit}; "
            f"late delivery #{late_count}); raise window_us or reduce "
            "delivery jitter"
        )


class DefinedShim(Stack):
    """DEFINED-RB stack for one production-network node."""

    def __init__(
        self,
        node: Node,
        ordering: Optional[OrderingFunction] = None,
        strategy: Optional[CheckpointStrategy] = None,
        recorder: Optional[Recorder] = None,
        chain_bound: int = DEFAULT_CHAIN_BOUND,
        window_us: Optional[int] = None,
        process_bytes: int = 100 * 1024 * 1024,
        hop_cost_us: Optional[int] = None,
        snapshots: "SnapshotStrategy | str" = SnapshotStrategy.COW,
    ) -> None:
        super().__init__(node)
        self.ordering = ordering if ordering is not None else OptimizedOrdering()
        self.strategy = strategy if strategy is not None else MemoryIntercept()
        self.recorder = recorder
        self.chain_bound = chain_bound
        self.process_bytes = process_bytes
        #: How checkpoints are *taken* (``cow``: store-version snapshots,
        #: O(dirty); ``deepcopy``: the old full-copy fallback), as opposed
        #: to ``strategy``, which models what they *cost*.  Only effective
        #: for store-backed daemons; others use the legacy deepcopy path.
        self.snapshot_strategy = SnapshotStrategy.of(snapshots)
        self._store: Optional[StateStore] = None
        self._window_us_override = window_us
        #: Deterministic per-hop estimate folded into d_i on top of the
        #: measured average link delay.  The paper measures link delays
        #: store-and-forward, which includes the receiver's processing
        #: time; omitting it would make long causal chains systematically
        #: later than their estimates and turn every flood into rollbacks.
        if hop_cost_us is None:
            hop_cost_us = int(80 + self.strategy.delivery_mu)
        self.hop_cost_us = hop_cost_us
        #: Chain-delay spill bound: one beacon interval.  An annotation
        #: whose accumulated d_i crosses it is deterministically assigned
        #: to the next group phase (see :meth:`Annotation.extended`), so
        #: the estimate stays honest -- a message is always tagged with
        #: the group phase it is *predicted to arrive in*.  Without the
        #: bound, long floods under super-beacon jitter carry estimates a
        #: whole phase stale, and their keys sort below a full group of
        #: delivered traffic at every receiver: rollback cascades then
        #: reach deeper than the history window and the replay diverges
        #: with zero slack deficits (the PR-4 Theorem-1 hole).
        self.spill_bound_us = node.network.time_unit_us

        self.vt = 0
        self.history = DeliveredHistory()
        self.timers = TimerTable()
        self._origin_seq = 0
        self._sub_seq = 0
        self._ext_seq = 0
        self._annihilate_pending: Set[int] = set()
        #: Messages tagged with a group our beacon has not opened yet.
        #: Delivering them speculatively would be *guaranteed* wrong
        #: whenever that group has due timers (their keys sort first), so
        #: they wait -- at most one beacon-propagation skew -- and drain in
        #: arrival order when the beacon lands.  This is what keeps the
        #: optimized ordering's rollback count at the paper's "rare" level.
        self._future_buffer: list = []
        self._current_entry: Optional[HistoryEntry] = None
        self._send_delay_us = 0
        self._replaying = False
        self._group_open_us = 0
        self._started = False
        #: Arrivals before the daemon booted (staggered cold start): a
        #: real router's NIC would drop these, but a drop at the receiver
        #: is invisible to the sender's recording, so we hold them for the
        #: (sub-beacon-interval) boot window instead.
        self._prestart_buffer: list = []
        #: Distinguishes the cold boot from a reboot (node_up after a
        #: node_down): a rebooting node must rejoin at the *current*
        #: group, not at virtual time 0.
        self._booted_once = False
        #: Arrival times of recent beacons (group -> sim time), kept for
        #: the crash protocol's group-closure test; pruned alongside the
        #: history window.
        self._beacon_seen_at: dict = {}
        self._window_us: Optional[int] = None
        self._cost_rng: Optional[random.Random] = None
        #: Arrivals that sorted below an already-pruned entry; determinism
        #: cannot be guaranteed for them (window mis-sized).  Counted so
        #: experiments can assert it stayed at zero.
        self.late_deliveries = 0
        #: Slack deficit of every *measured* late delivery, cumulative
        #: across reboots.  Warnings only surface the first/escalating
        #: deficits; the full distribution feeds :meth:`headroom_stats`
        #: and, through it, the window-envelope mapper's suggestion.
        self.deficit_samples_us: list = []
        #: Late deliveries whose pruned predecessor predates measurement:
        #: late for sure, deficit unknown.  Tracked separately instead of
        #: appending a fabricated 0 sample, which dragged the quantiles
        #: toward 0 and made ``envelope --suggest`` optimistic.
        self.deficit_unmeasured = 0
        #: While a late arrival is being delivered *outside* the ordered
        #: window, this floors the group that timers armed (and messages
        #: originated) by its processing are tagged with.  Without the
        #: floor they would inherit the arrival's stale group and re-enter
        #: the ordered machinery with keys sorting below delivered
        #: history -- crashing a rollback replay instead of just counting
        #: the one late delivery.
        self._unordered_floor: Optional[int] = None
        #: Largest slack deficit already reported via
        #: :class:`HistoryWindowWarning`; warnings are emitted on the
        #: first late delivery and on every deficit escalation, not per
        #: event -- a misconfigured run must not pay O(late_deliveries)
        #: warning traffic on its delivery hot path.
        self._reported_deficit_us: Optional[int] = None
        #: uid -> delivery-log index of message entries pruned from the
        #: history window.  An unsend normally retracts its targets via
        #: the live history; one that arrives *after* its target was
        #: pruned (a rollback cascade outran the window) would otherwise
        #: leave the tag in the execution log forever -- a permanent
        #: fingerprint orphan that no counter records.  The map lets the
        #: retraction still happen, and the event is counted as a window
        #: deficit (the state rollback itself is unrecoverable: the
        #: checkpoint was released with the entry).
        self._pruned_uid_log: dict = {}
        #: Unsends whose target had already been pruned from the window
        #: (counted into ``late_deliveries``/deficits too: they are the
        #: same misconfiguration signal, seen from the retraction side).
        self.pruned_retractions = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Boot (or reboot, after a node_up event) the shim and daemon.

        A cold boot starts at virtual time 0 (all origins boot into group
        0 together).  A *reboot* performs the rejoin handshake first:
        learn the current group number from the beacon service (modelled
        as a deterministic query; a real deployment reads it off the next
        beacon or any annotated packet) and boot into *that* group.
        Booting at a stale virtual time would tag the boot traffic with a
        long-closed group, making it unorderably late at every receiver
        -- exactly the nondeterminism DEFINED exists to rule out.  The
        node's ``node_up`` observation is recorded at the rejoin group,
        and the lockstep replay reboots it at that same group
        (``LockstepStack.start`` uses the coordinator's current group).
        """
        reboot = self._booted_once
        self._booted_once = True
        self.vt = 0
        self.history = DeliveredHistory()
        # Adopt a store-backed daemon's state store as the node's unified
        # checkpoint store: daemon namespaces + timer table + counters are
        # then captured by a single store version per delivery.  Reboots
        # drop the old run's snapshots (the history window is reset too).
        store = getattr(self.daemon, "store", None) if self.daemon is not None else None
        if store is not None:
            store.reset()
            store.strategy = self.snapshot_strategy
        self._store = store
        self.timers = TimerTable(store=store)
        self._origin_seq = 0
        self._sub_seq = 0
        self._annihilate_pending.clear()
        self._future_buffer = []
        self._current_entry = None
        self._send_delay_us = 0
        self._replaying = False
        self._beacon_seen_at = {}
        self._pruned_uid_log = {}
        if reboot:
            if self.recorder is not None and self.recorder.group_provider is not None:
                self.vt = self.recorder.group_provider()
            self._group_open_us = self.sim.now
        if self.daemon is not None:
            self.daemon.on_start()
        self._started = True
        buffered, self._prestart_buffer = self._prestart_buffer, []
        for msg in buffered:
            self.on_wire(msg)

    def _closed_before(self) -> int:
        """First group *not* provably complete at this node right now.

        Group ``g`` is complete (closed) once the beacon opening ``g+1``
        was observed at least one conservative hold ago -- the same bound
        the stop-and-wait DDOS baseline uses: worst-case propagation plus
        a chain allowance -- so no group-``g`` message can still be in
        flight toward us.  Anything from the returned group onward may
        have unseen traffic pending.
        """
        hold_us = self.node.network.max_propagation_us() + 100_000
        cutoff = self.vt  # the current group is never closed
        while cutoff > 0:
            opened = self._beacon_seen_at.get(cutoff)
            if opened is not None and self.sim.now - opened >= hold_us:
                break  # group cutoff-1 is closed
            cutoff -= 1
        return cutoff

    def on_crash(self) -> None:
        """Quantize a fail-stop to a closed group boundary.

        The recording (and therefore the lockstep replay) kills a node at
        the granularity of a group: the replayed node processes *none* of
        the groups from its recorded ``node_down`` onward, and *all* of
        every earlier group.  Physically, though, the daemon dies
        mid-group: it has processed part of the open groups' traffic --
        and possibly answered it -- while more of that traffic is still
        in flight.  The shim interposes in user space and outlives the
        daemon, so it closes the gap the same way a rollback would: it
        retracts every delivery from the first non-closed group onward
        (truncating the execution log back to that boundary) and
        anti-messages everything those deliveries emitted.  It then
        retags the recorded ``node_down`` with that group, so the replay
        deactivates the node at exactly the retraction boundary -- which
        is what makes crash scenarios reproduce bit-for-bit even when
        the crash lands next to a group boundary with flood traffic in
        flight.
        """
        if not self._started:
            return
        cutoff = self._closed_before()
        if self.recorder is not None:
            self.recorder.retag_topology_event(
                "node_down", self.node.node_id, cutoff
            )
        index = None
        for i, entry in enumerate(self.history.entries):
            if entry.group >= cutoff:
                index = i
                break
        if index is None:
            return
        rolled = self.history.truncate_from(index)
        base = rolled[0]
        if base.log_index >= 0:
            del self.delivery_log[base.log_index:]
        plan = collect_unsends(rolled)
        network = self.node.network
        for dst in sorted(plan):
            self.node.stats.unsends_sent += 1
            network.transmit_deterministic(
                Message(
                    src=self.node.node_id,
                    dst=dst,
                    protocol="_unsend",
                    payload=Unsend(uids=tuple(plan[dst])),
                    size_bytes=16 + 8 * len(plan[dst]),
                ),
                network.avg_link_delay_us(self.node.node_id, dst),
            )
        # no restore, no replay: the daemon is dead; only the observable
        # side effects needed retracting

    # ------------------------------------------------------------------
    # app-facing API
    # ------------------------------------------------------------------
    def send(
        self,
        dst: str,
        protocol: str,
        payload,
        parent: Optional[Message] = None,
        size_bytes: int = 64,
    ) -> None:
        network = self.node.network
        link = network.link_between(self.node.node_id, dst)
        if link is None:
            raise ValueError(f"{self.node.node_id} has no link to {dst}")
        hop_estimate = link.avg_delay_us(self.node.node_id) + self.hop_cost_us

        if parent is not None and parent.annotation is not None:
            pa = parent.annotation
            self._sub_seq += 1
            annotation = pa.extended(
                link_delay_us=hop_estimate,
                sub=self._sub_seq,
                over_chain_bound=pa.chain + 1 > self.chain_bound,
                sender=self.node.node_id,
                spill_bound_us=self.spill_bound_us,
            )
        else:
            self._origin_seq += 1
            offset = (
                self._current_entry.origin_offset_us
                if self._current_entry is not None
                else 0
            )
            annotation = Annotation(
                origin=self.node.node_id,
                seq=self._origin_seq,
                delay_us=offset + hop_estimate,
                group=self._origination_group(),
                chain=0,
                sub=0,
                sender=self.node.node_id,
            )

        msg = Message(
            src=self.node.node_id,
            dst=dst,
            protocol=protocol,
            payload=payload,
            annotation=annotation,
            size_bytes=size_bytes,
        )
        # origination freezes the payload (store contract): render and
        # intern its canonical repr now, so every later identity use --
        # delivery tags, rollback re-tags, replay -- reuses one string
        msg.canonical_payload_repr()

        deliverable = link.up and self.node.up and network.nodes[dst].up
        if self.recorder is not None:
            # every send's outcome is recorded, not just drops: the same
            # identity re-emitted by a rollback re-execution can flip
            # between deliverable and not when the rollback straddles a
            # link flap, and the replay must honor the *final* outcome
            self.recorder.record_send(
                (annotation.sender, annotation.origin, annotation.seq,
                 annotation.sub, annotation.group, dst, protocol),
                deliverable,
            )
        network.transmit(msg, extra_delay_us=self._send_delay_us)
        if deliverable and self._current_entry is not None:
            self._current_entry.outputs.append((msg.uid, dst))

    def set_timer(self, delay_units: int, key: str) -> None:
        self.timers.set(key, self._timer_base_vt(), delay_units)

    def cancel_timer(self, key: str) -> None:
        self.timers.cancel(key)

    def _timer_base_vt(self) -> int:
        """Virtual-time base for arming timers.

        Timers armed while processing an event are based on that event's
        *group*, not on the beacon count at the instant the processing
        physically ran.  A group-g message can be delivered after beacon
        g+1 (late crossing, or during a rollback replay); basing its
        timers on the live beacon count would make expiries depend on
        wall-clock accidents and break determinism.

        Exception: *unordered* (late) deliveries.  Their group already
        fell off the history window, so a timer based on it would expire
        into long-delivered groups and crash the ordered machinery; such
        timers are floored to the current group instead (determinism for
        that arrival is forfeit either way -- it is counted late).
        """
        if self._current_entry is not None:
            group = self._current_entry.group
            if self._unordered_floor is not None:
                group = max(group, self._unordered_floor)
            return group
        return self.vt

    def time_units(self) -> int:
        return self.vt

    def _origination_group(self) -> int:
        """Group number for a message with no causal parent.

        Messages triggered while processing an external event or a timer
        inherit that entry's group (they are part of its timestep);
        anything else (boot traffic) uses the current virtual time.
        Originations from an unordered (late) delivery are floored to the
        current group -- a stale tag would make them unorderably late at
        every receiver, cascading one window miss across the network.
        """
        if self._current_entry is not None:
            group = self._current_entry.group
            if self._unordered_floor is not None:
                group = max(group, self._unordered_floor)
            return group
        return self.vt

    # ------------------------------------------------------------------
    # node-facing API
    # ------------------------------------------------------------------
    def on_wire(self, msg: Message) -> None:
        if not self._started:
            self._prestart_buffer.append(msg)
            return
        if msg.protocol == "_beacon":
            self._on_beacon(msg.payload)
        elif msg.protocol == "_unsend":
            self._on_unsend(msg)
        elif msg.is_control:
            pass  # other control traffic is not for RB nodes
        else:
            self._on_data(msg)

    def on_external(self, event: ExternalEvent) -> None:
        group = self.vt
        seq = self._ext_seq
        self._ext_seq += 1
        # How far into the group the event landed.  Messages originated by
        # its processing start their d_i estimates from this offset: the
        # ordering function's arrival prediction assumes group-start
        # origins, and a mid-group event's flood genuinely arrives later
        # than the group's beacon-aligned traffic.  Deterministic (event
        # times and beacon arrivals are), and recorded for the replay.
        offset = max(0, self.sim.now - self._group_open_us)
        if self.recorder is not None:
            self.recorder.record_event(
                self.node.node_id, event, group, seq, self.sim.now,
                offset_us=offset,
            )
        entry = HistoryEntry(
            kind="ext",
            key=self.ordering.external_key(group, self.node.node_id, seq),
            event=event,
            group=group,
            seq=seq,
            origin_offset_us=offset,
        )
        self._admit(entry)

    # ------------------------------------------------------------------
    # beacons, timers, groups
    # ------------------------------------------------------------------
    def _on_beacon(self, group: int) -> None:
        if group <= self.vt:
            return
        self.vt = group
        self._group_open_us = self.sim.now
        self._beacon_seen_at[group] = self.sim.now
        if len(self._beacon_seen_at) > 16:
            for stale in [g for g in self._beacon_seen_at if g < group - 8]:
                del self._beacon_seen_at[stale]
        self._fire_due_timers()
        self._drain_future()
        self._prune_window()
        self._sample_memory()

    def _drain_future(self) -> None:
        """Admit held messages whose group the beacon just opened, in their
        original arrival order (speculation resumes among them)."""
        ready = [m for m in self._future_buffer if m.annotation.group <= self.vt]
        if not ready:
            return
        self._future_buffer = [
            m for m in self._future_buffer if m.annotation.group > self.vt
        ]
        for msg in ready:
            self._admit_data(msg)

    def _fire_due_timers(self) -> None:
        while True:
            due = self.timers.next_due(self.vt)
            if due is None:
                return
            expiry, seq, timer_key = due
            entry = HistoryEntry(
                kind="timer",
                key=self.ordering.timer_key(expiry, self.node.node_id, seq),
                group=expiry,
                seq=seq,
                timer_key=timer_key,
            )
            self._admit(entry)

    # ------------------------------------------------------------------
    # admission: speculation + ordering check
    # ------------------------------------------------------------------
    def _on_data(self, msg: Message) -> None:
        if msg.uid in self._annihilate_pending:
            # an anti-message beat the message here; drop it on arrival
            self._annihilate_pending.discard(msg.uid)
            self.node.stats.annihilated += 1
            return
        if msg.annotation is None:
            raise ValueError(
                f"unannotated message {msg.describe()} reached a DEFINED-RB node"
            )
        if msg.annotation.group > self.vt:
            self._future_buffer.append(msg)
            return
        self._admit_data(msg)

    def _admit_data(self, msg: Message) -> None:
        if msg.uid in self._annihilate_pending:
            self._annihilate_pending.discard(msg.uid)
            self.node.stats.annihilated += 1
            return
        entry = HistoryEntry(
            kind="msg",
            key=self.ordering.key(msg.annotation),
            msg=msg,
            group=msg.annotation.group,
        )
        existing = self.history.find_exact(entry.key)
        if existing is not None:
            # Anti-message race: the upstream node rolled back and re-sent
            # this logical message, and the copies arrived out of send
            # order relative to the unsend.  Uids are globally increasing,
            # so the higher uid is the live version: replace a stale
            # delivery, or drop a stale arrival.
            held = self.history[existing]
            assert held.kind == "msg" and held.msg is not None
            if msg.uid > held.msg.uid:
                self._rollback(existing, [entry], removed_uids={held.msg.uid})
            else:
                # stale original outrun by its replacement: drop it here;
                # its unsend (still in flight) will find nothing to do
                self.node.stats.annihilated += 1
            return
        self._admit(entry)

    def _admit(self, entry: HistoryEntry) -> None:
        if self.history.is_late(entry.key):
            # The window failed to cover this arrival; determinism is no
            # longer guaranteed for it.  Count it, surface the slack
            # deficit as a structured warning (window mis-sizing is a
            # configuration bug, not noise), and hand it straight to the
            # daemon outside the ordered window (crashing a production
            # router would be worse).  Experiments assert this stayed at 0.
            self.late_deliveries += 1
            deficit: Optional[int] = None
            pruned_at = self.history.last_pruned_at_us
            if pruned_at is not None and pruned_at >= 0:
                # the window would have needed to reach back to the
                # pruned predecessor's delivery; anything older is a
                # lower bound (the true predecessor may be older still)
                deficit = max(0, (self.sim.now - pruned_at) - self.window_us())
            self._record_window_deficit(deficit)
            self._deliver_unordered(entry)
            return
        index = self.history.insertion_index(entry.key)
        if index == len(self.history):
            self._speculative_deliver(entry)
        else:
            new_inputs = [entry] if entry.kind != "timer" else []
            self._rollback(index, new_inputs, removed_uids=set())

    def _record_window_deficit(self, deficit: Optional[int]) -> None:
        """Count one window miss and surface first/escalating deficits.

        ``deficit=None`` means "late, but the pruned predecessor predates
        measurement": counted as unmeasured, never invented as a zero
        sample (that conflation skewed the headroom quantiles).
        """
        if deficit is None:
            self.deficit_unmeasured += 1
        else:
            self.deficit_samples_us.append(deficit)
        escalated = self._reported_deficit_us is None or (
            deficit is not None and deficit > self._reported_deficit_us
        )
        if escalated:
            self._reported_deficit_us = deficit or 0
            warnings.warn(
                HistoryWindowWarning(
                    node_id=self.node.node_id,
                    window_us=self.window_us(),
                    deficit_us=deficit,
                    late_count=self.late_deliveries,
                ),
                stacklevel=3,
            )

    def _speculative_deliver(self, entry: HistoryEntry) -> None:
        rng = self._costs()
        checkpoint_cost = self.strategy.delivery_cost_us(rng)
        processing_cost = baseline_processing_model(rng)
        stats = self.node.stats
        stats.checkpoint_cost_us += checkpoint_cost
        stats.record_processing(checkpoint_cost + processing_cost)
        # Outputs leave after the *nominal* processing latency, which is
        # exactly the per-hop term folded into d_i.  Charging the sampled
        # cost instead would add hop-accumulated variance that the delay
        # estimates cannot see, turning flood waves into rollback storms.
        # The sampled distribution still feeds the Figure 7b statistics.
        self._deliver(entry, self._take_checkpoint(), extra_delay_us=self.hop_cost_us)

    def _deliver_unordered(self, entry: HistoryEntry) -> None:
        """Late-arrival escape hatch: bypass the ordered window entirely.

        The floor keeps the damage contained to this one delivery: timers
        and originations triggered by it are tagged with the *current*
        group, not the arrival's long-pruned one (see
        :meth:`_timer_base_vt`).
        """
        self.log_delivery("late:" + entry.tag())
        self.node.stats.deliveries += 1
        if entry.kind == "timer":
            self.timers.pop(entry.timer_key)
        self._current_entry = entry
        self._unordered_floor = self.vt
        try:
            if self.daemon is not None:
                if entry.kind == "msg":
                    self.daemon.on_message(entry.msg)
                elif entry.kind == "ext":
                    self.daemon.on_external(entry.event)
                else:
                    self.daemon.on_timer(entry.timer_key)
        finally:
            self._current_entry = None
            self._unordered_floor = None

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def _take_checkpoint(self) -> Checkpoint:
        store = self._store
        if store is not None:
            # one store version covers daemon state + timers; the shim's
            # two counters ride alongside (plain ints, no copying needed)
            return Checkpoint(
                app_state=store.snapshot(),
                shim_state=(self._origin_seq, self._sub_seq, None),
                state_bytes=store.live_bytes(),
                taken_at_us=self.sim.now,
            )
        app_state = self.daemon.snapshot() if self.daemon is not None else None
        shim_state = (self._origin_seq, self._sub_seq, self.timers.snapshot())
        state_bytes = (
            self.daemon.state_size_bytes() if self.daemon is not None else 256
        )
        return Checkpoint(
            app_state=app_state,
            shim_state=shim_state,
            state_bytes=state_bytes,
            taken_at_us=self.sim.now,
        )

    def _deliver(
        self, entry: HistoryEntry, checkpoint: Checkpoint, extra_delay_us: int
    ) -> None:
        entry.checkpoint = checkpoint
        entry.delivered_at_us = self.sim.now
        entry.log_index = len(self.delivery_log)
        self.history.append(entry)
        self.log_delivery(entry.tag())
        self.node.stats.deliveries += 1

        if entry.kind == "timer":
            # Popped *after* the checkpoint so a rollback past this firing
            # re-arms it and the replay loop re-fires it deterministically.
            self.timers.pop(entry.timer_key)

        self._current_entry = entry
        self._send_delay_us = extra_delay_us
        try:
            if self.daemon is not None:
                if entry.kind == "msg":
                    self.daemon.on_message(entry.msg)
                elif entry.kind == "ext":
                    self.daemon.on_external(entry.event)
                else:
                    self.daemon.on_timer(entry.timer_key)
        finally:
            self._current_entry = None
            self._send_delay_us = 0

    # ------------------------------------------------------------------
    # rollback
    # ------------------------------------------------------------------
    def _on_unsend(self, msg: Message) -> None:
        self.node.stats.unsends_received += 1
        unsend: Unsend = msg.payload
        uids = set(unsend.uids)
        # messages still held in the future buffer are simply forgotten
        held = {m.uid for m in self._future_buffer if m.uid in uids}
        if held:
            self._future_buffer = [
                m for m in self._future_buffer if m.uid not in held
            ]
            self.node.stats.annihilated += len(held)
            uids -= held
        pruned_hits = sorted(u for u in uids if u in self._pruned_uid_log)
        if pruned_hits:
            self._retract_pruned(pruned_hits)
            uids -= set(pruned_hits)
        hit_indices = [
            i
            for i, entry in enumerate(self.history.entries)
            if entry.kind == "msg" and entry.msg is not None and entry.msg.uid in uids
        ]
        delivered_uids = {
            self.history[i].msg.uid for i in hit_indices  # type: ignore[union-attr]
        }
        # anything not yet arrived will be annihilated on arrival
        self._annihilate_pending.update(uids - delivered_uids)
        if hit_indices:
            self._rollback(min(hit_indices), [], removed_uids=uids)

    def _retract_pruned(self, uids: list) -> None:
        """An unsend reached back *past* the pruned history window.

        The rollback cascade outran the retention window: the targeted
        deliveries' checkpoints and output records are gone, so the state
        rollback and the unsend cascade cannot happen -- determinism for
        this node is forfeit, exactly like a late arrival, and it is
        counted the same way (``late_deliveries`` + a slack deficit, so
        "verified" stays an honest claim).  What *can* still be honored
        is the execution log: the tags are excised so the fingerprint
        reflects the final execution instead of keeping orphans of a
        retracted causal chain forever.
        """
        hits = [self._pruned_uid_log.pop(u) for u in uids]
        removed = sorted(idx for idx, _at in hits)
        now = self.sim.now
        for idx, delivered_at in hits:
            self.late_deliveries += 1
            self.pruned_retractions += 1
            self._record_window_deficit(
                max(0, (now - delivered_at) - self.window_us())
            )
        for i in reversed(removed):
            del self.delivery_log[i]
        # log indices of everything delivered after an excised tag shift
        # down; fix up the live history and the remaining pruned map
        def _shifted(index: int) -> int:
            return index - bisect.bisect_left(removed, index)

        for entry in self.history.entries:
            if entry.log_index >= 0:
                entry.log_index = _shifted(entry.log_index)
        self._pruned_uid_log = {
            u: (_shifted(idx), at) for u, (idx, at) in self._pruned_uid_log.items()
        }

    def _rollback(self, index, new_entries, removed_uids: Set[int]) -> None:
        if self._replaying:
            raise RuntimeError(
                "rollback triggered during replay; replay must be in-order"
            )
        rolled = self.history.truncate_from(index)
        depth = len(rolled)
        base = rolled[0]
        assert base.checkpoint is not None

        # 1. restore daemon + shim state from the divergence point
        if self._store is not None:
            self._store.restore(base.checkpoint.app_state)
            self._origin_seq, self._sub_seq, _ = base.checkpoint.shim_state
        else:
            if self.daemon is not None:
                self.daemon.restore(base.checkpoint.app_state)
            self._origin_seq, self._sub_seq, timer_snap = base.checkpoint.shim_state
            self.timers.restore(timer_snap)

        # 2. retract the rolled-back deliveries from the execution log
        if base.log_index >= 0:
            del self.delivery_log[base.log_index:]

        # 3. anti-messages: unsend everything those deliveries emitted
        plan = collect_unsends(rolled)
        network = self.node.network
        for dst in sorted(plan):
            self.node.stats.unsends_sent += 1
            unsend_msg = Message(
                src=self.node.node_id,
                dst=dst,
                protocol="_unsend",
                payload=Unsend(uids=tuple(plan[dst])),
                size_bytes=16 + 8 * len(plan[dst]),
            )
            # Control traffic rides a reliable channel (the paper assumes
            # TCP); deterministic average delay, immune to link loss.
            network.transmit_deterministic(
                unsend_msg, network.avg_link_delay_us(self.node.node_id, dst)
            )

        # 4. replay inputs in the correct order, interleaving due timers
        rng = self._costs()
        total_cost = self.strategy.restore_cost_us(rng)
        self.node.stats.restore_cost_us += total_cost
        inputs = deque(plan_replay(rolled, new_entries, removed_uids))
        self._replaying = True
        try:
            while True:
                due = self.timers.next_due(self.vt)
                timer_entry = None
                if due is not None:
                    expiry, seq, timer_key = due
                    timer_entry = HistoryEntry(
                        kind="timer",
                        key=self.ordering.timer_key(expiry, self.node.node_id, seq),
                        group=expiry,
                        seq=seq,
                        timer_key=timer_key,
                    )
                next_input = inputs[0] if inputs else None
                if timer_entry is not None and (
                    next_input is None or timer_entry.key < next_input.key
                ):
                    chosen = timer_entry
                else:
                    if next_input is None:
                        break
                    chosen = inputs.popleft()
                step_cost = self.strategy.replay_cost_us(rng)
                total_cost += step_cost
                self.node.stats.replay_cost_us += step_cost
                self._deliver(chosen, self._take_checkpoint(), extra_delay_us=total_cost)
        finally:
            self._replaying = False
        self.node.stats.record_rollback(total_cost, depth)

    # ------------------------------------------------------------------
    # window pruning + memory accounting
    # ------------------------------------------------------------------
    def window_us(self) -> int:
        """History retention window: the explicit override, or the
        network-derived default (:func:`default_window_us`)."""
        if self._window_us is None:
            if self._window_us_override is not None:
                self._window_us = self._window_us_override
            else:
                self._window_us = default_window_us(self.node.network)
        return self._window_us

    def headroom_stats(self) -> WindowHeadroomStats:
        """The slack-deficit distribution this node measured so far."""
        return WindowHeadroomStats.from_samples(
            self.window_us(),
            self.deficit_samples_us,
            unmeasured_count=self.deficit_unmeasured,
        )

    def _prune_window(self) -> None:
        cutoff = self.sim.now - self.window_us()
        if cutoff <= 0:
            return
        dropped: list = []
        pruned = self.history.prune_before_time(cutoff, collect=dropped)
        for entry in dropped:
            if entry.kind == "msg" and entry.msg is not None and entry.log_index >= 0:
                self._pruned_uid_log[entry.msg.uid] = (
                    entry.log_index,
                    entry.delivered_at_us,
                )
        if pruned and self._store is not None and len(self.history):
            # entries older than the window can never be rolled back to
            # again (Lemma 2): release their private copies in the store
            oldest = self.history[0].checkpoint
            if oldest is not None:
                self._store.release_before(oldest.app_state)

    def _sample_memory(self) -> None:
        if self._store is not None:
            # real shared-vs-private accounting: the live state is shared
            # with every checkpoint; the store's undo journals (or, under
            # the deepcopy fallback, its materialized snapshots) are the
            # private bytes the checkpoints actually instantiated
            state_bytes = self._store.live_bytes()
            private: Optional[int] = self._store.private_bytes()
        else:
            state_bytes = (
                self.daemon.state_size_bytes() if self.daemon is not None else 256
            )
            private = None
        virtual, physical = self.strategy.memory_bytes(
            state_bytes, len(self.history), self.process_bytes,
            private_bytes=private,
        )
        self.node.stats.record_memory(virtual, physical)

    def _costs(self) -> random.Random:
        if self._cost_rng is None:
            self._cost_rng = self.node.network.rng_stream(
                f"cost|{self.node.node_id}"
            )
        return self._cost_rng
