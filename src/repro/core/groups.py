"""Beacons and group numbers (Section 2.2).

DEFINED-RB divides time into *timesteps*: one node periodically broadcasts
beacons carrying strictly increasing group numbers; external events are
tagged with the group current at the observing node, internal messages
inherit their causal parent's group, and the ordering function is applied
per group.  Beacons also drive virtual time: one unit per beacon
(Section 3), 250 ms apart by default.

**Leader election.**  The paper delegates fault tolerance to classical
leader-election algorithms [Lynch 96].  We model the election's *outcome*
rather than its message exchange: at every beacon interval the live node
with the smallest identifier acts as the beacon source, and the group
counter survives leader changes because any new leader has observed the
previous leader's beacons.  This keeps the reproduction focused on the
paper's contribution while preserving the property the election provides
(beaconing continues, monotonically, across failures).

**Propagation.**  Beacons travel on a deterministic distribution tree:
each node receives the beacon after the shortest-path delay (over
measured average link delays) from the leader.  Determinism here is
load-bearing -- group tagging of external events must not depend on the
jitter seed, or DEFINED-RB's execution would not be reproducible.
Footnote 2 of the paper discusses exactly this sensitivity (and the
subnetwork remedy for very large diameters).
"""

from __future__ import annotations

from typing import Optional

from repro.simnet.messages import Message
from repro.simnet.network import Network


class BeaconService:
    """Periodic group-number broadcast for a DEFINED-RB network."""

    def __init__(
        self,
        network: Network,
        interval_us: Optional[int] = None,
        recorder=None,
    ) -> None:
        self.network = network
        self.interval_us = interval_us if interval_us is not None else network.time_unit_us
        if self.interval_us <= 0:
            raise ValueError("beacon interval must be positive")
        self.recorder = recorder
        self.group = 0
        self.beacons_sent = 0
        self._handle = None
        self._stopped = False

    def current_leader(self) -> Optional[str]:
        """The live node with the smallest id (modelled election outcome)."""
        for node_id in self.network.node_ids():
            if self.network.nodes[node_id].up:
                return node_id
        return None

    def start(self) -> None:
        """Begin beaconing.  Group 0 is implicit from time zero; the first
        beacon (group 1) goes out after one interval."""
        self._stopped = False
        self._handle = self.network.sim.schedule(
            self.interval_us, self._tick, label="beacon-tick"
        )

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        if self._stopped:
            return
        leader = self.current_leader()
        if leader is not None:
            self.group += 1
            if self.recorder is not None:
                self.recorder.note_group(self.group)
            # Uniform distribution-tree depth: every node observes the
            # beacon at the same instant (leader's max propagation).  The
            # uniform arrival matters: timers across the network fire
            # simultaneously, so timer-originated message waves satisfy
            # the ordering function's common-case assumption that
            # "originating nodes send out messages at roughly the same
            # time" (Section 2.2).  Staggered beacon arrival would turn
            # every hello wave into systematic rollbacks -- the
            # sensitivity footnote 2 warns about.
            delays = self.network.delay_matrix()[leader]
            depth = max(delays.values()) if delays else 0
            skews = self.network.clock_skew_us
            for node_id in self.network.node_ids():
                if node_id not in delays:
                    continue  # partitioned from the leader (footnote 2)
                beacon = Message(
                    src=leader,
                    dst=node_id,
                    protocol="_beacon",
                    payload=self.group,
                    size_bytes=16,
                )
                # Per-node clock skew (chaos DSL): a skewed node observes
                # every beacon a constant offset late (positive) or early
                # (negative), shifting which group its external events are
                # tagged with.  Group tagging stays deterministic -- the
                # skew is configuration, not a jitter draw -- and replay
                # is unaffected because recordings carry group numbers.
                delay = depth + skews.get(node_id, 0) if skews else depth
                self.network.transmit_deterministic(beacon, max(0, delay))
                self.beacons_sent += 1
        self._handle = self.network.sim.schedule(
            self.interval_us, self._tick, label="beacon-tick"
        )
