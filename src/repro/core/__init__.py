"""DEFINED: the paper's primary contribution.

Two cooperating subsystems, both layered under unmodified control-plane
daemons through the :class:`~repro.simnet.node.Stack` interface:

* **DEFINED-RB** (:mod:`repro.core.shim`) instruments a *production*
  network: speculative delivery checked against a deterministic ordering
  function, with checkpoint/rollback and anti-messages when the
  speculation misses (Section 2.2 of the paper).
* **DEFINED-LS** (:mod:`repro.core.lockstep`) drives a *debugging*
  network in lockstep phases from a partial recording, reproducing the
  production execution exactly (Theorem 1), with an interactive stepper
  on top (:mod:`repro.core.debugger`).

Supporting pieces: ordering functions (:mod:`repro.core.ordering`),
beacon-driven group numbering (:mod:`repro.core.groups`), virtual-time
timers (:mod:`repro.core.virtual_time`), checkpoint strategies and cost
models (:mod:`repro.core.checkpoint`), partial recordings
(:mod:`repro.core.recorder`), and execution fingerprints
(:mod:`repro.core.fingerprint`).
"""

from repro.core.checkpoint import (
    CheckpointStrategy,
    ForkOnReceive,
    MemoryIntercept,
    PreFork,
    PreForkTouch,
    baseline_processing_model,
    strategy_by_name,
)
from repro.core.debugger import Breakpoint, Debugger
from repro.core.fingerprint import execution_fingerprint, first_divergence
from repro.core.groups import BeaconService
from repro.core.gvt import GvtSample, GvtTracker
from repro.core.lockstep import LockstepCoordinator, LockstepStack
from repro.core.ordering import (
    OptimizedOrdering,
    OrderingFunction,
    RandomOrdering,
)
from repro.core.history import WindowHeadroomStats
from repro.core.recorder import RecordedEvent, Recorder, Recording
from repro.core.shim import (
    DefinedShim,
    HistoryWindowWarning,
    default_window_us,
)
from repro.core.virtual_time import TimerTable

__all__ = [
    "BeaconService",
    "Breakpoint",
    "CheckpointStrategy",
    "Debugger",
    "DefinedShim",
    "ForkOnReceive",
    "HistoryWindowWarning",
    "GvtSample",
    "GvtTracker",
    "LockstepCoordinator",
    "LockstepStack",
    "MemoryIntercept",
    "OptimizedOrdering",
    "OrderingFunction",
    "PreFork",
    "PreForkTouch",
    "RandomOrdering",
    "RecordedEvent",
    "Recorder",
    "Recording",
    "TimerTable",
    "WindowHeadroomStats",
    "baseline_processing_model",
    "default_window_us",
    "execution_fingerprint",
    "first_divergence",
    "strategy_by_name",
]
