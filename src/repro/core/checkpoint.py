"""Checkpoint strategies and their cost models (Section 3 and Section 5.2).

The paper's implementation checkpoints XORP/Quagga with ``fork()`` and
evaluates four variants of the non-rollback path (Figure 7b) plus two of
the rollback path (Figure 7a):

* **TF** -- fork when the new packet arrives (the naive scheme);
* **PF** -- *pre-fork* after the previous packet was processed, moving the
  fork into idle cycles (copy-on-write still charges the first write);
* **TM** -- pre-fork plus an overloaded ``malloc()`` that *touches memory*
  on the heap during the pre-fork, pre-paying the copy-on-write faults;
* **MI** -- *memory intercept*: track dirty bytes via
  ``/proc/<pid>/mem`` and copy only what changed (the paper uses this to
  identify the optimal bound; rollback cost drops to ~0.6 ms median).

We cannot fork a real router process, so each strategy is a *cost model*:
a distribution of per-delivery checkpoint cost, per-rollback restore and
replay costs, and a memory-accounting rule (virtual vs physical, Figure
7c).  The distributions are calibrated so the medians and orderings match
the paper's figures; the benches then measure them end-to-end through the
rollback engine, which supplies the workload-dependent variance (rollback
depth, state size).

The checkpointed *content* is exact regardless of strategy: a versioned
snapshot of the daemon state plus the shim's counters and timer table.
Cost-model strategies only differ in what the checkpoint is *charged*.

Orthogonally to the cost model, the checkpoint *mechanism* is selectable
per run (:class:`~repro.core.statestore.SnapshotStrategy`): store-backed
daemons checkpoint through a copy-on-write
:class:`~repro.core.statestore.StateStore` whose real cost is
O(dirty-bytes) -- the MI scheme's scaling, for real -- with the classic
full-deepcopy path kept as a fallback for differential testing.  When
the store is in play, :meth:`CheckpointStrategy.memory_bytes` receives
the *measured* private byte count (undo journals / materialized
snapshots) instead of modelling it as a fraction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Optional, Tuple

#: Default resident size of a router daemon process (Figure 7c's x-axis
#: starts around 100 MB for unmodified XORP).
DEFAULT_PROCESS_BYTES = 100 * 1024 * 1024


def _gauss_us(rng: random.Random, mu: float, sigma: float, floor: float) -> int:
    """A truncated-Gaussian cost draw in microseconds."""
    return int(max(floor, rng.gauss(mu, sigma)))


def baseline_processing_model(rng: random.Random) -> int:
    """Per-message processing cost of the *unmodified* daemon.

    This is the "XORP" line in Figure 7b: most packets take well under
    0.2 ms to process.
    """
    return _gauss_us(rng, mu=80.0, sigma=40.0, floor=10.0)


@dataclass
class Checkpoint:
    """One checkpoint: exact state plus bookkeeping for the cost models."""

    app_state: Any
    shim_state: Any
    state_bytes: int
    taken_at_us: int


class CheckpointStrategy:
    """Base class: cost/memory models for one checkpointing scheme.

    Subclasses override the class attributes; the draw methods are shared.
    All draws come from the caller's seeded RNG stream so runs stay
    reproducible per seed.
    """

    #: Short name used in figures ("TF", "PF", "TM", "MI").
    name: str = "?"
    #: Per-delivery checkpoint cost (charged on the non-rollback fast path).
    delivery_mu: float = 0.0
    delivery_sigma: float = 0.0
    delivery_floor: float = 0.0
    #: One-off state-restore cost when a rollback fires.
    restore_mu: float = 0.0
    restore_sigma: float = 0.0
    restore_floor: float = 0.0
    #: Per-entry cost of replaying a rolled-back delivery.
    replay_mu: float = 0.0
    replay_sigma: float = 0.0
    replay_floor: float = 0.0
    #: Fraction of the process image each live checkpoint instantiates
    #: physically (copy-on-write sharing keeps this small; Section 5.2
    #: reports <2% inflation over an entire run).
    physical_share: float = 0.02

    def delivery_cost_us(self, rng: random.Random) -> int:
        return _gauss_us(rng, self.delivery_mu, self.delivery_sigma, self.delivery_floor)

    def restore_cost_us(self, rng: random.Random) -> int:
        return _gauss_us(rng, self.restore_mu, self.restore_sigma, self.restore_floor)

    def replay_cost_us(self, rng: random.Random) -> int:
        return _gauss_us(rng, self.replay_mu, self.replay_sigma, self.replay_floor)

    def memory_bytes(
        self,
        state_bytes: int,
        live_checkpoints: int,
        process_bytes: int = DEFAULT_PROCESS_BYTES,
        private_bytes: Optional[int] = None,
    ) -> Tuple[int, int]:
        """(virtual, physical) memory footprint with ``live_checkpoints``
        outstanding.

        Virtual memory grows linearly with the number of forked processes
        (each maps the whole image); physical memory only pays the pages
        actually written since the fork.  When ``private_bytes`` is given
        (a store-backed run's *measured* private copies), it replaces the
        modelled per-checkpoint share.
        """
        virtual = process_bytes * (1 + live_checkpoints)
        if private_bytes is not None:
            return virtual, process_bytes + private_bytes
        physical = process_bytes + int(
            live_checkpoints * max(state_bytes, self.physical_share * state_bytes)
        )
        return virtual, physical

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CheckpointStrategy {self.name}>"


class ForkOnReceive(CheckpointStrategy):
    """TF: ``fork()`` synchronously when each packet arrives.

    Also the "FK" rollback line of Figure 7a: restoring means switching to
    the forked child and replaying, which costs milliseconds.
    """

    name = "TF"
    delivery_mu, delivery_sigma, delivery_floor = 400.0, 150.0, 100.0
    restore_mu, restore_sigma, restore_floor = 6_000.0, 2_500.0, 1_500.0
    replay_mu, replay_sigma, replay_floor = 1_800.0, 700.0, 500.0


class PreFork(ForkOnReceive):
    """PF: fork during idle cycles after the previous packet.

    Copy-on-write defers the page copies to the next packet's writes, so
    the fast path improves but does not reach the baseline.
    """

    name = "PF"
    delivery_mu, delivery_sigma, delivery_floor = 220.0, 80.0, 60.0


class PreForkTouch(PreFork):
    """TM: pre-fork plus touching heap pages during the idle fork,
    pre-paying the copy-on-write faults (the overloaded ``malloc()``
    heuristic of Section 5.2)."""

    name = "TM"
    delivery_mu, delivery_sigma, delivery_floor = 130.0, 50.0, 30.0


class MemoryIntercept(CheckpointStrategy):
    """MI: intercept memory writes and copy only changed bytes.

    The paper implements this with ``/proc/<pid>/mem`` to identify the
    optimal rollback bound; the median rollback cost drops to ~0.6 ms.
    """

    name = "MI"
    delivery_mu, delivery_sigma, delivery_floor = 60.0, 20.0, 15.0
    restore_mu, restore_sigma, restore_floor = 450.0, 150.0, 200.0
    replay_mu, replay_sigma, replay_floor = 70.0, 30.0, 20.0
    physical_share = 0.005


_STRATEGIES = {
    cls.name: cls for cls in (ForkOnReceive, PreFork, PreForkTouch, MemoryIntercept)
}
_STRATEGIES["FK"] = ForkOnReceive  # Figure 7a's name for the fork scheme


def strategy_by_name(name: str) -> CheckpointStrategy:
    """Factory used by the benchmark harness ("TF"/"FK"/"PF"/"TM"/"MI")."""
    try:
        return _STRATEGIES[name.upper()]()
    except KeyError:
        raise ValueError(
            f"unknown checkpoint strategy {name!r}; "
            f"expected one of {sorted(_STRATEGIES)}"
        ) from None
