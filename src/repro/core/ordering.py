"""Pseudorandom ordering functions (Section 2.2, "Computing a message
ordering").

An ordering function maps a message annotation to a totally-ordered key.
Every DEFINED node sorts the messages of a group by this key and forces
its daemon to consume them in exactly that order, rolling back whenever
speculation delivered them differently.  The function must be:

(i)   **deterministic** -- same annotations, same key, on every run;
(ii)  **consistent** -- it must respect causality.  ``d_i`` accumulates
      strictly along causal chains (a child's estimate is its parent's
      plus a positive link delay), so sorting by ``d_i`` first never
      orders an effect before its cause at the same node;
(iii) ideally **matched to the common case** so rollbacks are rare.

Two implementations are provided, matching the paper's evaluation:

* :class:`OptimizedOrdering` (the paper's **OO**): the delay-sensitive key
  ``(group, d_i, n_i, s_i)``.  Because ``d_i`` approximates a message's
  expected arrival time, the computed order usually equals the arrival
  order and rollbacks are rare (Figure 8a: at most ~2 extra packets per
  node).
* :class:`RandomOrdering` (the paper's **RO** baseline): a
  keyed-hash permutation within each group.  Still deterministic and
  causally consistent (the hash only reorders messages at equal ``d_i``
  *rank tiers*; see below), but uncorrelated with arrival order -- many
  more rollbacks (Figure 8a/8b RO curves).
"""

from __future__ import annotations

import abc
import hashlib
from typing import Tuple

from repro.simnet.messages import Annotation

#: Keys are 7-tuples: (group, major, origin, a, b, c, sender).  ``major``
#: carries the ordering family's primary criterion; timer pseudo-entries
#: use major=-1 so that the timers of group *g* precede every message of
#: group *g* (they fire when the beacon opening group *g* arrives, i.e.
#: causally before any group-*g* message exists).  The trailing sender
#: field makes keys total over *distinct messages*: per-node ``sub``
#: counters can coincide across senders, and so can accumulated delay
#: estimates.
OrderKey = Tuple[int, int, str, int, int, int, str]

TIMER_MAJOR = -1
EXTERNAL_MAJOR = 0


class OrderingFunction(abc.ABC):
    """Base class for deterministic message-ordering functions."""

    #: Short name used in reports ("OO", "RO").
    name: str = "?"

    @abc.abstractmethod
    def key(self, annotation: Annotation) -> OrderKey:
        """Total-order key for a data message's annotation."""

    def timer_key(self, group: int, node: str, seq: int) -> OrderKey:
        """Key for a timer pseudo-entry expiring when group ``group`` opens.

        Identical across ordering functions: timers are local and their
        relative order (creation sequence) is already deterministic.
        """
        return (group, TIMER_MAJOR, node, seq, 0, 0, node)

    def external_key(self, group: int, node: str, seq: int) -> OrderKey:
        """Key for an external event observed at ``node``.

        External events sort at ``major=0``: after the group's timers,
        before every internal message (whose ``d_i`` is at least one link
        delay, hence > 0).  This mirrors replay, where a group's recorded
        external events are injected before its messages circulate.
        """
        return (group, EXTERNAL_MAJOR, node, seq, 0, 0, node)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


class OptimizedOrdering(OrderingFunction):
    """The paper's delay-sensitive ordering (OO).

    Sorts by group, then ``d_i``, then ``n_i``, then ``s_i`` (Section 2.2),
    with the deterministic ``sub`` tiebreaker appended.
    """

    name = "OO"

    def key(self, annotation: Annotation) -> OrderKey:
        return (
            annotation.group,
            max(1, annotation.delay_us),
            annotation.origin,
            annotation.seq,
            annotation.sub,
            0,
            annotation.sender,
        )


class RandomOrdering(OrderingFunction):
    """The paper's random-ordering baseline (RO).

    Within a group, messages are permuted by a keyed cryptographic hash of
    their identity ``(n_i, s_i, sub)`` -- deterministic across runs but
    uncorrelated with arrival order.

    Causal consistency is preserved by hashing within *chain-depth tiers*:
    the major criterion is the annotation's causal chain length, and the
    hash only shuffles messages of equal depth.  A child is always at
    strictly greater depth than anything its parent's processing step
    consumed, so an effect never sorts before its cause.
    """

    name = "RO"

    def __init__(self, salt: int = 0) -> None:
        self.salt = salt

    def _hash(self, annotation: Annotation) -> int:
        material = (
            f"{self.salt}|{annotation.origin}|{annotation.seq}|"
            f"{annotation.sub}|{annotation.chain}"
        ).encode()
        return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")

    def key(self, annotation: Annotation) -> OrderKey:
        return (
            annotation.group,
            1 + annotation.chain,
            annotation.origin,
            self._hash(annotation),
            annotation.seq,
            annotation.sub,
            annotation.sender,
        )


def make_ordering(name: str, salt: int = 0) -> OrderingFunction:
    """Factory used by the benchmark harness ("OO" / "RO")."""
    if name.upper() == "OO":
        return OptimizedOrdering()
    if name.upper() == "RO":
        return RandomOrdering(salt=salt)
    raise ValueError(f"unknown ordering function {name!r} (expected OO or RO)")
