"""Execution fingerprints: making "the same execution" checkable.

Netzer and Miller's lemma (Lemma 1 in the paper) says a replay that
delivers messages in the same order as the original execution reproduces
it.  We operationalize this: every stack logs the ordered sequence of
events it delivers to its daemon (message receipts, external events, timer
fires) as stable string tags.  The network-wide *fingerprint* hashes the
per-node sequences.

Two runs with equal fingerprints delivered identical event sequences at
every node, hence (for deterministic daemons) are the same execution.
The reproduction's determinism claims are all phrased, and tested, as
fingerprint equalities:

* DEFINED-RB seed-invariance: same topology + same external schedule but
  different jitter seeds => same fingerprint;
* Theorem 1: DEFINED-LS replay of the partial recording => the production
  fingerprint.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Sequence, Tuple


def execution_fingerprint(logs: Dict[str, Tuple[str, ...]]) -> str:
    """Hash per-node delivery logs into one hex digest.

    Nodes are folded in sorted order so the digest is independent of dict
    iteration order.
    """
    digest = hashlib.sha256()
    for node_id in sorted(logs):
        digest.update(node_id.encode())
        digest.update(b"\x00")
        for entry in logs[node_id]:
            digest.update(entry.encode())
            digest.update(b"\x01")
        digest.update(b"\x02")
    return digest.hexdigest()


def first_divergence(
    a: Dict[str, Tuple[str, ...]],
    b: Dict[str, Tuple[str, ...]],
) -> Optional[Tuple[str, int, Optional[str], Optional[str]]]:
    """Locate the first point where two executions differ.

    Returns ``(node, index, a_entry, b_entry)`` for the first node (in
    sorted order) whose logs differ, with ``None`` entries marking one log
    being a strict prefix of the other.  Returns ``None`` when the
    executions are identical.  This is a debugging aid for the test suite:
    a failing determinism property points straight at the diverging event.
    """
    for node_id in sorted(set(a) | set(b)):
        la: Sequence[str] = a.get(node_id, ())
        lb: Sequence[str] = b.get(node_id, ())
        for i in range(max(len(la), len(lb))):
            ea = la[i] if i < len(la) else None
            eb = lb[i] if i < len(lb) else None
            if ea != eb:
                return (node_id, i, ea, eb)
    return None


def logs_equal(a: Dict[str, Tuple[str, ...]], b: Dict[str, Tuple[str, ...]]) -> bool:
    """Convenience: True iff the two executions are identical."""
    return first_divergence(a, b) is None
