"""Execution fingerprints: making "the same execution" checkable.

Netzer and Miller's lemma (Lemma 1 in the paper) says a replay that
delivers messages in the same order as the original execution reproduces
it.  We operationalize this: every stack logs the ordered sequence of
events it delivers to its daemon (message receipts, external events, timer
fires) as stable string tags.  The network-wide *fingerprint* hashes the
per-node sequences.

Two runs with equal fingerprints delivered identical event sequences at
every node, hence (for deterministic daemons) are the same execution.
The reproduction's determinism claims are all phrased, and tested, as
fingerprint equalities:

* DEFINED-RB seed-invariance: same topology + same external schedule but
  different jitter seeds => same fingerprint;
* Theorem 1: DEFINED-LS replay of the partial recording => the production
  fingerprint.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

#: Separators keeping the fold injective: node id / entry / node
#: boundaries cannot be confused by concatenation.
_NODE_SEP = b"\x00"
_ENTRY_SEP = b"\x01"
_NODE_END = b"\x02"


class DeliveryLog:
    """One node's ordered delivery log with a rolling identity digest.

    Quacks like the ``List[str]`` it replaces (append / len / index /
    slice / ``del log[i:]``), but each entry's UTF-8 encoding is cached
    at append time and folded into a per-node rolling SHA-256, so the
    end-of-run fingerprint never re-encodes (let alone re-renders) an
    entry.  Folding is lazy up to a watermark: a rollback that truncates
    *unfolded* tail entries costs nothing, and one that cuts below the
    watermark rebases the digest by refolding the cached bytes -- hash
    work only, no repr rebuild.
    """

    __slots__ = ("_tags", "_encoded", "_digest", "_folded")

    def __init__(self, entries: Sequence[str] = ()) -> None:
        self._tags: List[str] = []
        self._encoded: List[bytes] = []
        self._digest = hashlib.sha256()
        self._folded = 0
        for tag in entries:
            self.append(tag)

    # -- list protocol (the mutations the shims actually perform) -------
    def append(self, tag: str) -> None:
        self._tags.append(tag)
        self._encoded.append(tag.encode())

    def __len__(self) -> int:
        return len(self._tags)

    def __bool__(self) -> bool:
        return bool(self._tags)

    def __iter__(self) -> Iterator[str]:
        return iter(self._tags)

    def __getitem__(self, index: Union[int, slice]):
        return self._tags[index]

    def __delitem__(self, index: Union[int, slice]) -> None:
        if isinstance(index, slice):
            start = min(
                range(*index.indices(len(self._tags))),
                default=len(self._tags),
            )
        else:
            start = index if index >= 0 else len(self._tags) + index
        del self._tags[index]
        del self._encoded[index]
        if start < self._folded:
            # the digest covers bytes that are gone: rebase lazily
            self._digest = hashlib.sha256()
            self._folded = 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DeliveryLog):
            return self._tags == other._tags
        if isinstance(other, (list, tuple)):
            return self._tags == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DeliveryLog {len(self._tags)} entries>"

    def as_tuple(self) -> Tuple[str, ...]:
        return tuple(self._tags)

    # -- digest ---------------------------------------------------------
    def node_digest(self) -> bytes:
        """Digest of the entry sequence, folding only what append/rebase
        has not folded yet."""
        update = self._digest.update
        for data in self._encoded[self._folded:]:
            update(data)
            update(_ENTRY_SEP)
        self._folded = len(self._encoded)
        return self._digest.digest()


def _node_digest(log: Sequence[str]) -> bytes:
    if isinstance(log, DeliveryLog):
        return log.node_digest()
    digest = hashlib.sha256()
    for entry in log:
        digest.update(entry.encode())
        digest.update(_ENTRY_SEP)
    return digest.digest()


def execution_fingerprint(logs: Dict[str, Sequence[str]]) -> str:
    """Hash per-node delivery logs into one hex digest.

    Nodes are folded in sorted order so the digest is independent of dict
    iteration order.  Each node contributes a fixed-width per-node digest
    (rolling when the log is a :class:`DeliveryLog`), so the combine step
    is O(nodes) at run end regardless of how many entries were delivered.
    """
    digest = hashlib.sha256()
    for node_id in sorted(logs):
        digest.update(node_id.encode())
        digest.update(_NODE_SEP)
        digest.update(_node_digest(logs[node_id]))
        digest.update(_NODE_END)
    return digest.hexdigest()


def first_divergence(
    a: Dict[str, Tuple[str, ...]],
    b: Dict[str, Tuple[str, ...]],
) -> Optional[Tuple[str, int, Optional[str], Optional[str]]]:
    """Locate the first point where two executions differ.

    Returns ``(node, index, a_entry, b_entry)`` for the first node (in
    sorted order) whose logs differ, with ``None`` entries marking one log
    being a strict prefix of the other.  Returns ``None`` when the
    executions are identical.  This is a debugging aid for the test suite:
    a failing determinism property points straight at the diverging event.
    """
    for node_id in sorted(set(a) | set(b)):
        la: Sequence[str] = a.get(node_id, ())
        lb: Sequence[str] = b.get(node_id, ())
        for i in range(max(len(la), len(lb))):
            ea = la[i] if i < len(la) else None
            eb = lb[i] if i < len(lb) else None
            if ea != eb:
                return (node_id, i, ea, eb)
    return None


def logs_equal(a: Dict[str, Tuple[str, ...]], b: Dict[str, Tuple[str, ...]]) -> bool:
    """Convenience: True iff the two executions are identical."""
    return first_divergence(a, b) is None
