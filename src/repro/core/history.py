"""Delivered-event history: the sliding window of Section 2.2.

Each DEFINED-RB node keeps the events it has delivered to its daemon since
(roughly) the last couple of group intervals, *in delivered order* -- which
the rollback machinery keeps equal to ordering-function order at all
times.  Every entry carries the checkpoint taken just before it was
delivered and the uids of the messages its processing emitted, which is
exactly what a rollback needs: restore the checkpoint, unsend the outputs,
replay the inputs.

Entries become prunable once no message that could sort before them can
still arrive; the paper bounds this by twice the maximum propagation time
across the network (plus slack for jitter; see footnote 3).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.checkpoint import Checkpoint
from repro.core.ordering import OrderKey
from repro.simnet.events import ExternalEvent
from repro.simnet.messages import Message


def _quantile_us(ordered: Sequence[int], q: float) -> int:
    """Nearest-rank quantile over a pre-sorted sample list.

    Local on purpose: :mod:`repro.core` stays free of
    :mod:`repro.analysis` imports, and nearest-rank (no interpolation)
    keeps the stats integers -- they ride a fixed-width shared-memory
    record (:mod:`repro.sweep_stream`)."""
    if not ordered:
        return 0
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
    return int(ordered[rank])


@dataclass(frozen=True)
class WindowHeadroomStats:
    """The measured slack-deficit distribution of one DEFINED-RB run.

    Every arrival that sorts below the pruned history window carries a
    *slack deficit*: a lower bound on how much more ``window_us`` would
    have been needed to keep it ordered (see
    :class:`~repro.core.shim.HistoryWindowWarning`).  Warnings surface
    the first such delivery and escalations; this object captures the
    *full* distribution -- count, max, quantiles -- so the window-envelope
    mapper (:mod:`repro.envelope`) can recommend a window from data
    instead of from the worst warning alone.

    ``window_us`` is the effective window of the run (override or the
    default formula).  All deficit fields are 0 when ``late_count`` is 0.
    Late arrivals whose deficit could not be measured (the pruned
    predecessor predates measurement) are counted in ``late_count`` and
    ``unmeasured_count`` but contribute no sample -- counted, never
    invented.
    """

    window_us: int
    late_count: int = 0
    max_deficit_us: int = 0
    p50_deficit_us: int = 0
    p90_deficit_us: int = 0
    p99_deficit_us: int = 0
    #: Late arrivals whose pruned predecessor predates measurement: the
    #: window was definitely too small, but by an unknown amount.  They
    #: count toward ``late_count`` and are *excluded* from the deficit
    #: quantiles -- folding them in as zeros dragged p50/p90 toward 0 and
    #: made ``envelope --suggest`` optimistic.
    unmeasured_count: int = 0

    @classmethod
    def from_samples(
        cls,
        window_us: int,
        deficits_us: Sequence[int],
        unmeasured_count: int = 0,
    ) -> "WindowHeadroomStats":
        ordered = sorted(int(d) for d in deficits_us)
        return cls(
            window_us=int(window_us),
            late_count=len(ordered) + int(unmeasured_count),
            max_deficit_us=int(ordered[-1]) if ordered else 0,
            p50_deficit_us=_quantile_us(ordered, 0.50),
            p90_deficit_us=_quantile_us(ordered, 0.90),
            p99_deficit_us=_quantile_us(ordered, 0.99),
            unmeasured_count=int(unmeasured_count),
        )

    @property
    def clean(self) -> bool:
        """True when the window covered every arrival (zero deficits)."""
        return self.late_count == 0

    def deficit_at(self, quantile: float) -> int:
        """The recorded deficit closest to ``quantile`` (0..1].

        Only the fixed summary points travel through the result record,
        so this maps a requested quantile onto the nearest one at or
        above it -- conservative for window sizing."""
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile out of range: {quantile}")
        if quantile <= 0.50:
            return self.p50_deficit_us
        if quantile <= 0.90:
            return self.p90_deficit_us
        if quantile <= 0.99:
            return self.p99_deficit_us
        return self.max_deficit_us

    def to_dict(self) -> Dict[str, int]:
        return {
            "window_us": self.window_us,
            "late_count": self.late_count,
            "max_deficit_us": self.max_deficit_us,
            "p50_deficit_us": self.p50_deficit_us,
            "p90_deficit_us": self.p90_deficit_us,
            "p99_deficit_us": self.p99_deficit_us,
            "unmeasured_count": self.unmeasured_count,
        }


class _TagCacheSwitch:
    """Process-wide switch for the identity-tag fast path.

    On (the default), tags are rendered once per entry with the interned
    payload repr and cached.  Off, every ``tag()`` call re-renders from
    the live payload -- the pre-interning behaviour.  The differential
    grid runs the same cells under both settings and requires
    bit-identical fingerprints (tests/test_fingerprint_differential.py).
    """

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = True


_TAG_CACHE = _TagCacheSwitch()


def set_tag_cache(enabled: bool) -> bool:
    """Toggle the tag cache (differential tests only); returns the old value."""
    old = _TAG_CACHE.enabled
    _TAG_CACHE.enabled = bool(enabled)
    return old


@dataclass
class HistoryEntry:
    """One event delivered (or to be delivered) to the daemon.

    ``kind`` is ``"msg"`` (a data message), ``"ext"`` (an external event
    observed locally) or ``"timer"`` (a virtual-time timer firing).
    """

    kind: str
    key: OrderKey
    msg: Optional[Message] = None
    event: Optional[ExternalEvent] = None
    group: int = 0
    seq: int = 0
    timer_key: Optional[str] = None
    #: For "ext" entries: how far into the group the event was observed.
    #: Originations triggered by the event start their d_i estimates from
    #: this offset, so that a mid-group event's flood is predicted to
    #: arrive *after* the group's beacon-aligned traffic (which it does).
    origin_offset_us: int = 0
    checkpoint: Optional[Checkpoint] = None
    outputs: List[Tuple[int, str]] = field(default_factory=list)
    delivered_at_us: int = -1
    log_index: int = -1
    #: Cached identity tag.  The fields a tag encodes are fixed at
    #: creation (the payload by the store's freeze-at-origination
    #: contract), so the render happens at most once per entry --
    #: rollback re-executions and lockstep replay waves reuse it.
    cached_tag: Optional[str] = field(default=None, repr=False, compare=False)

    def tag(self) -> str:
        """Stable identity tag for the delivery log / fingerprint.

        Contains no timestamps, uids or other run-varying data -- only the
        deterministic identity of the event -- so DEFINED-RB runs under
        different seeds and DEFINED-LS replays produce comparable logs.
        Rendered once and cached; :meth:`render_tag` is the uncached
        reference path the differential tests pin against.
        """
        if not _TAG_CACHE.enabled:
            return self.render_tag()
        tag = self.cached_tag
        if tag is None:
            tag = self.render_tag(intern=True)
            self.cached_tag = tag
        return tag

    def render_tag(self, intern: bool = False) -> str:
        """Render the tag from the entry's fields (no cache).

        With ``intern=False`` the payload repr is rebuilt from the live
        payload object -- byte-for-byte the pre-interning behaviour, kept
        as the reference the differential grid compares fingerprints
        against.
        """
        if self.kind == "msg":
            assert self.msg is not None and self.msg.annotation is not None
            a = self.msg.annotation
            payload_repr = (
                self.msg.canonical_payload_repr() if intern
                else repr(self.msg.payload)
            )
            return (
                f"m|{self.msg.protocol}|{self.msg.src}|{a.origin}|{a.seq}|"
                f"{a.sub}|{a.group}|{a.delay_us}|{payload_repr}"
            )
        if self.kind == "ext":
            assert self.event is not None
            e = self.event
            return f"e|{e.kind}|{e.target!r}|{self.group}|{self.seq}"
        return f"t|{self.timer_key}|{self.group}"

    def reset_for_replay(self) -> None:
        """Strip per-delivery state so the entry can be delivered again.

        The cached tag survives: replay re-delivers the *same* event, so
        its identity -- and therefore its tag -- is unchanged by design.
        """
        self.checkpoint = None
        self.outputs = []
        self.delivered_at_us = -1
        self.log_index = -1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<HistoryEntry {self.kind} key={self.key}>"


class DeliveredHistory:
    """Sorted, prunable sequence of delivered :class:`HistoryEntry`.

    Invariant: ``entries`` is strictly increasing by ``key``.  Appends
    assert this; out-of-order admissions must go through rollback, which
    truncates and re-appends in sorted order.
    """

    def __init__(self) -> None:
        self.entries: List[HistoryEntry] = []
        self._keys: List[OrderKey] = []
        #: Largest key ever pruned; a later arrival sorting below this is
        #: a "late message" the window could not protect (counted, not
        #: crashed on -- see shim docs).
        self.last_pruned_key: Optional[OrderKey] = None
        #: Delivery time of that entry: how long ago the window boundary
        #: passed, which is what sizes the slack deficit when an arrival
        #: turns out to be late.
        self.last_pruned_at_us: Optional[int] = None
        self.total_pruned = 0

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, i: int) -> HistoryEntry:
        return self.entries[i]

    def __iter__(self):
        return iter(self.entries)

    def insertion_index(self, key: OrderKey) -> int:
        """Where ``key`` would slot into the current window.

        ``len(self)`` means "after everything delivered" (in-order, safe
        to deliver speculatively); anything smaller means a rollback to
        that index is required.
        """
        i = bisect.bisect_left(self._keys, key)
        if i < len(self._keys) and self._keys[i] == key:
            raise ValueError(f"duplicate ordering key {key}")
        return i

    def find_exact(self, key: OrderKey) -> Optional[int]:
        """Index of the entry with exactly ``key``, or None.

        Used for the anti-message race: a post-rollback re-send can reach
        a receiver *before* the unsend for the original copy; it carries
        the same deterministic key and must *replace* the original.
        """
        i = bisect.bisect_left(self._keys, key)
        if i < len(self._keys) and self._keys[i] == key:
            return i
        return None

    def append(self, entry: HistoryEntry) -> None:
        if self._keys and entry.key <= self._keys[-1]:
            raise ValueError(
                f"history append out of order: {entry.key} after {self._keys[-1]}"
            )
        self.entries.append(entry)
        self._keys.append(entry.key)

    def truncate_from(self, index: int) -> List[HistoryEntry]:
        """Remove and return ``entries[index:]`` (the rollback victims)."""
        rolled = self.entries[index:]
        del self.entries[index:]
        del self._keys[index:]
        return rolled

    def prune_before_time(
        self,
        cutoff_us: int,
        keep_min: int = 1,
        collect: Optional[List[HistoryEntry]] = None,
    ) -> int:
        """Drop leading entries delivered before ``cutoff_us``.

        At least ``keep_min`` entries are retained so a freshly-quiet node
        still has a rollback anchor.  Returns the number pruned; when
        ``collect`` is given, the pruned entries are appended to it (the
        shim keeps a uid -> log-index map of pruned message deliveries so
        an unsend that outruns the window can still retract its target
        from the execution log).
        """
        limit = len(self.entries) - keep_min
        n = 0
        while n < limit and self.entries[n].delivered_at_us < cutoff_us:
            n += 1
        if n > 0:
            self.last_pruned_key = self._keys[n - 1]
            self.last_pruned_at_us = self.entries[n - 1].delivered_at_us
            if collect is not None:
                collect.extend(self.entries[:n])
            del self.entries[:n]
            del self._keys[:n]
            self.total_pruned += n
        return n

    def is_late(self, key: OrderKey) -> bool:
        """True when ``key`` sorts below something already pruned."""
        return self.last_pruned_key is not None and key < self.last_pruned_key

    def keys(self) -> Tuple[OrderKey, ...]:
        return tuple(self._keys)
