"""Interactive stepping on top of DEFINED-LS (Sections 2.1 and 2.3).

The debugger is what the human troubleshooter actually touches: step
through the lockstep execution, set breakpoints on delivered events or on
predicates over daemon state, inspect a node's control-plane state and
pending messages, and manipulate state to test a hypothesis -- all with
the guarantee that the underlying execution is the production execution.

Granularities (the paper: "steps may be chosen at various levels of
granularity"):

* :meth:`Debugger.step` -- one lockstep cycle (transmission+processing),
  the unit whose response time Figures 6c/8c measure;
* :meth:`Debugger.step_group` -- one whole group (one timestep of
  external events, to quiescence);
* :meth:`Debugger.run` -- replay until a breakpoint fires or the
  recording is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.lockstep import LockstepCoordinator


@dataclass
class Breakpoint:
    """A named pause condition evaluated after every lockstep cycle."""

    name: str
    predicate: Callable[[LockstepCoordinator], bool]
    one_shot: bool = False
    hits: int = 0
    enabled: bool = True

    def check(self, coordinator: LockstepCoordinator) -> bool:
        if not self.enabled:
            return False
        if self.predicate(coordinator):
            self.hits += 1
            if self.one_shot:
                self.enabled = False
            return True
        return False


@dataclass
class StepReport:
    """What one debugger step did (shown to the troubleshooter)."""

    group: int
    cycle: int
    sent: int
    processed: int
    sim_time_us: int
    hit_breakpoint: Optional[str] = None
    new_deliveries: Dict[str, List[str]] = field(default_factory=dict)

    def summary(self) -> str:
        bp = f" BREAK[{self.hit_breakpoint}]" if self.hit_breakpoint else ""
        return (
            f"group={self.group} cycle={self.cycle} sent={self.sent} "
            f"processed={self.processed} t={self.sim_time_us}us{bp}"
        )


class Debugger:
    """Interactive front end over a :class:`LockstepCoordinator`."""

    def __init__(self, coordinator: LockstepCoordinator) -> None:
        self.coordinator = coordinator
        self.breakpoints: List[Breakpoint] = []
        coordinator.break_predicates.append(self._check_breakpoints)
        self._last_hit: Optional[Breakpoint] = None

    # ------------------------------------------------------------------
    # breakpoints
    # ------------------------------------------------------------------
    def _check_breakpoints(self, coordinator: LockstepCoordinator) -> bool:
        self._last_hit = None
        for bp in self.breakpoints:
            if bp.check(coordinator):
                self._last_hit = bp
                return True
        return False

    def add_breakpoint(
        self,
        name: str,
        predicate: Callable[[LockstepCoordinator], bool],
        one_shot: bool = False,
    ) -> Breakpoint:
        bp = Breakpoint(name=name, predicate=predicate, one_shot=one_shot)
        self.breakpoints.append(bp)
        return bp

    def break_on_delivery(self, substring: str, node: Optional[str] = None,
                          one_shot: bool = True) -> Breakpoint:
        """Pause when a delivery tag containing ``substring`` appears in the
        current group's deliveries (optionally at one node only)."""

        def predicate(coordinator: LockstepCoordinator) -> bool:
            for nid, tags in coordinator.group_deliveries().items():
                if node is not None and nid != node:
                    continue
                if any(substring in tag for tag in tags):
                    return True
            return False

        return self.add_breakpoint(f"delivery~{substring!r}", predicate, one_shot)

    def break_on_state(
        self,
        node: str,
        state_predicate: Callable[[Any], bool],
        name: Optional[str] = None,
        one_shot: bool = True,
    ) -> Breakpoint:
        """Pause when ``state_predicate(daemon)`` becomes true at ``node``
        -- the "watchpoint" workflow of the case studies."""

        def predicate(coordinator: LockstepCoordinator) -> bool:
            daemon = coordinator.network.nodes[node].daemon
            return daemon is not None and state_predicate(daemon)

        return self.add_breakpoint(name or f"state@{node}", predicate, one_shot)

    def clear_breakpoints(self) -> None:
        self.breakpoints.clear()

    # ------------------------------------------------------------------
    # execution control
    # ------------------------------------------------------------------
    def _report(self, sent: int, processed: int) -> StepReport:
        coordinator = self.coordinator
        return StepReport(
            group=coordinator.current_group,
            cycle=coordinator.cycle,
            sent=sent,
            processed=processed,
            sim_time_us=coordinator.network.sim.now,
            hit_breakpoint=self._last_hit.name if self._last_hit else None,
            new_deliveries=coordinator.group_deliveries(),
        )

    def step(self) -> StepReport:
        """Advance one lockstep cycle."""
        sent, processed = self.coordinator.advance_cycle()
        return self._report(sent, processed)

    def step_group(self) -> StepReport:
        """Advance until the current group quiesces (or a breakpoint)."""
        self.coordinator.run_group()
        return self._report(0, 0)

    def run(self, max_cycles: int = 10_000_000) -> StepReport:
        """Run until a breakpoint fires or the recording is exhausted."""
        self.coordinator.run_all(max_cycles=max_cycles)
        return self._report(0, 0)

    @property
    def finished(self) -> bool:
        return self.coordinator.finished

    # ------------------------------------------------------------------
    # inspection and manipulation
    # ------------------------------------------------------------------
    def inspect(self, node: str) -> Dict[str, Any]:
        """Snapshot of a node: daemon state, armed timers, queued inputs."""
        network = self.coordinator.network
        daemon = network.nodes[node].daemon
        stack = self.coordinator.stacks[node]
        return {
            "node": node,
            "group": self.coordinator.current_group,
            "daemon_state": daemon.snapshot() if daemon is not None else None,
            "timers": dict(stack.timers.snapshot()[0]),
            "pending_inputs": [e.tag() for e in stack.pending_inputs()],
            "deliveries_this_group": stack.group_deliveries(),
            "active": stack.active,
        }

    def pending_messages(self, node: str) -> List[str]:
        """Human-readable queue of the node's not-yet-final inputs."""
        return [e.tag() for e in self.coordinator.stacks[node].pending_inputs()]

    def modify(self, node: str, mutate: Callable[[Any], None]) -> None:
        """Apply ``mutate(daemon)`` to a node's control-plane state.

        The modification is folded into the group baseline (the group
        checkpoint is rebased) so subsequent re-executions within the
        group keep it -- this is the "manipulate state" workflow used to
        validate patches in the case studies.
        """
        daemon = self.coordinator.network.nodes[node].daemon
        if daemon is None:
            raise ValueError(f"node {node} has no daemon")
        mutate(daemon)
        self.coordinator.stacks[node].rebase_checkpoint()
