"""Copy-on-write snapshot store: checkpoints that cost what MI says.

The paper's best checkpoint scheme (MI, Section 5.2) tracks dirty bytes
and copies only what changed, dropping rollback cost to ~0.6 ms.  The
reproduction *modelled* that cost while still paying a full
``copy.deepcopy`` of the entire daemon state on every delivered message
-- the dominant real wall-clock cost of every sweep/envelope/fuzz grid
cell.  This module is the mechanism that makes the model honest:

* a :class:`StateStore` holds a node's complete checkpointable state as
  namespaced sub-stores (:class:`Namespace`): RIB, LSDB, peer tables,
  damping state, timer table, counters;
* every mutation goes through a thin **write barrier**
  (``ns[key] = value`` / ``del ns[key]`` / ``ns.clear()``) which, when a
  snapshot is live, journals the key's *previous* value into the newest
  snapshot's undo log -- first write per key per snapshot interval only;
* :meth:`StateStore.snapshot` is therefore **O(dirty-since-last-
  snapshot)** (in practice O(1): it seals the open undo logs and bumps a
  generation counter; the journaling cost was already paid by the writes
  themselves);
* :meth:`StateStore.restore` walks undo logs newest-first back to the
  requested version -- O(keys dirtied since that version) -- instead of
  re-deepcopying the world.  A restored version stays pristine and can
  be restored from again (rollback replays re-checkpoint on top of it).

Restores follow the rollback engine's **stack discipline**: restoring
version *v* discards every snapshot younger than *v*.  This is exactly
how DEFINED-RB uses checkpoints (roll back to a divergence point, then
replay forward taking fresh checkpoints) and how DEFINED-LS re-executes
a group from its group checkpoint.

**Determinism.**  Namespaces iterate in *sorted key order* via an
incrementally maintained sorted view, never in dict insertion order.
Insertion order is not restored by undo application (a key deleted and
re-added lands at the end of the dict), so any daemon behaviour hanging
off raw dict order would diverge between the COW and deepcopy paths.
Sorted iteration makes the two strategies bit-identical by construction
-- which the differential sweep tests assert fingerprint-for-fingerprint.

**Memory accounting.**  The store tracks a byte estimate of the live
state (:meth:`StateStore.live_bytes`, incrementally maintained by the
barrier) and of the retained private copies
(:meth:`StateStore.private_bytes`: undo-log entries under COW, full
materialized snapshots under DEEPCOPY).  The Figure-7c shared-vs-private
accounting reads these real counts instead of a modelled fraction.

:class:`SnapshotStrategy.DEEPCOPY` keeps the old full-deepcopy behaviour
behind the same API, selectable per run, so every grid can be run
differentially against the trusted-simple path.

**Sanitizer.**  The write-barrier contract (values are immutable; every
mutation is a replacement through the namespace API) is what the whole
snapshot-sharing scheme rests on, and a single in-place mutation of a
stored value corrupts every snapshot that shares it -- silently, in a
way the differential grid only catches probabilistically.  Sanitize mode
(``StateStore(sanitize=True)`` or ``REPRO_SANITIZE=1``) turns violations
into immediate :class:`StoreContractViolation` errors: reads hand out
freeze-proxy *views* of any mutable stored value (mutating through the
view raises at the mutation site), and :meth:`StateStore.snapshot`
verifies a structural digest of every mutable value against its
stored-time digest, catching *aliased escapes* -- a caller that kept the
raw reference it stored and mutated it behind the barrier.  The static
half of the same contract lives in :mod:`repro.lint`.
"""

from __future__ import annotations

import copy
import enum
import os
from bisect import bisect_left, insort
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: Sentinel in undo journals: the key was absent at snapshot time.
_MISSING = object()


class StoreContractViolation(RuntimeError):
    """A stored value was mutated in place behind the write barrier.

    Raised only in sanitize mode: either at the mutation site (the value
    was reached through a freeze-proxy view) or at the next
    ``snapshot()`` (the value was mutated through an aliased raw
    reference the caller kept from before/after storing it).
    """


def _env_sanitize() -> bool:
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
        "1", "true", "on", "yes"
    )


#: Value types the sanitizer treats as mutable (proxy-wrapped on read,
#: digest-tracked for aliased-escape detection at snapshot time).
_MUTABLE_TYPES = (list, dict, set, bytearray)


def _freeze_digest(value: Any) -> Any:
    """A stable structural digest of ``value`` (hashable, order-free for
    sets/dicts) used to detect in-place mutation between store and
    snapshot time."""
    if isinstance(value, dict):
        return ("d", tuple(sorted(
            (repr(k), _freeze_digest(v)) for k, v in value.items()
        )))
    if isinstance(value, (list, tuple)):
        return ("l", tuple(_freeze_digest(v) for v in value))
    if isinstance(value, (set, frozenset)):
        return ("s", tuple(sorted(repr(v) for v in value)))
    if isinstance(value, bytearray):
        return ("b", bytes(value))
    return repr(value)


class _FrozenViewBase:
    """Read-only, non-copying view of a mutable stored value.

    Reads delegate to (and re-wrap) the underlying object, so sanitized
    code sees identical data; any mutator raises
    :class:`StoreContractViolation` naming the namespace/key it came
    from.  The underlying object is shared, not copied -- the sanitizer
    detects contract violations, it does not paper over them.
    """

    __slots__ = ("_obj", "_where")

    def __init__(self, obj: Any, where: str):
        object.__setattr__(self, "_obj", obj)
        object.__setattr__(self, "_where", where)

    def _violate(self, op: str) -> None:
        raise StoreContractViolation(
            f"in-place {op} of a value stored in {self._where}: stored "
            "values are immutable behind the write barrier (snapshots "
            "share them structurally); store a replacement instead"
        )

    def __len__(self) -> int:
        return len(self._obj)

    def __iter__(self) -> Iterator[Any]:
        where = self._where
        return (_wrap_sanitized(v, where) for v in iter(self._obj))

    def __contains__(self, item: Any) -> bool:
        return _unwrap_sanitized(item) in self._obj

    def __eq__(self, other: Any) -> bool:
        return self._obj == _unwrap_sanitized(other)

    def __ne__(self, other: Any) -> bool:
        return self._obj != _unwrap_sanitized(other)

    def __lt__(self, other: Any):
        return self._obj < _unwrap_sanitized(other)

    def __le__(self, other: Any):
        return self._obj <= _unwrap_sanitized(other)

    def __gt__(self, other: Any):
        return self._obj > _unwrap_sanitized(other)

    def __ge__(self, other: Any):
        return self._obj >= _unwrap_sanitized(other)

    def __repr__(self) -> str:
        return repr(self._obj)

    def __bool__(self) -> bool:
        return bool(self._obj)

    def __deepcopy__(self, memo: Dict) -> Any:
        # deepcopy escapes the store entirely -- hand back a plain copy
        return copy.deepcopy(self._obj, memo)


class _FrozenListView(_FrozenViewBase):
    __slots__ = ()
    __hash__ = None  # unhashable, like list

    def __getitem__(self, index: Any) -> Any:
        item = self._obj[index]
        if isinstance(index, slice):
            return [_wrap_sanitized(v, self._where) for v in item]
        return _wrap_sanitized(item, self._where)

    def index(self, *args: Any) -> int:
        return self._obj.index(*args)

    def count(self, value: Any) -> int:
        return self._obj.count(value)

    def __add__(self, other: Any) -> list:
        return list(self._obj) + list(_unwrap_sanitized(other))

    def append(self, *a: Any) -> None:
        self._violate("append()")

    def extend(self, *a: Any) -> None:
        self._violate("extend()")

    def insert(self, *a: Any) -> None:
        self._violate("insert()")

    def remove(self, *a: Any) -> None:
        self._violate("remove()")

    def pop(self, *a: Any) -> None:
        self._violate("pop()")

    def clear(self) -> None:
        self._violate("clear()")

    def sort(self, *a: Any, **k: Any) -> None:
        self._violate("sort()")

    def reverse(self) -> None:
        self._violate("reverse()")

    def __setitem__(self, *a: Any) -> None:
        self._violate("item assignment")

    def __delitem__(self, *a: Any) -> None:
        self._violate("item deletion")

    def __iadd__(self, other: Any) -> None:
        self._violate("+=")

    def __imul__(self, other: Any) -> None:
        self._violate("*=")


class _FrozenDictView(_FrozenViewBase):
    __slots__ = ()
    __hash__ = None

    def __getitem__(self, key: Any) -> Any:
        return _wrap_sanitized(self._obj[key], self._where)

    def get(self, key: Any, default: Any = None) -> Any:
        if key in self._obj:
            return _wrap_sanitized(self._obj[key], self._where)
        return default

    def keys(self):
        return self._obj.keys()

    def values(self):
        where = self._where
        # repro-lint: disable=DET105(faithful view: must preserve the wrapped dict's own order)
        return [_wrap_sanitized(v, where) for v in self._obj.values()]

    def items(self):
        where = self._where
        # repro-lint: disable=DET105(faithful view: must preserve the wrapped dict's own order)
        return [(k, _wrap_sanitized(v, where)) for k, v in self._obj.items()]

    def __setitem__(self, *a: Any) -> None:
        self._violate("item assignment")

    def __delitem__(self, *a: Any) -> None:
        self._violate("item deletion")

    def pop(self, *a: Any) -> None:
        self._violate("pop()")

    def popitem(self) -> None:
        self._violate("popitem()")

    def clear(self) -> None:
        self._violate("clear()")

    def update(self, *a: Any, **k: Any) -> None:
        self._violate("update()")

    def setdefault(self, *a: Any) -> None:
        self._violate("setdefault()")

    def __ior__(self, other: Any) -> None:
        self._violate("|=")


class _FrozenSetView(_FrozenViewBase):
    __slots__ = ()
    __hash__ = None

    def isdisjoint(self, other: Any) -> bool:
        return self._obj.isdisjoint(_unwrap_sanitized(other))

    def issubset(self, other: Any) -> bool:
        return self._obj.issubset(_unwrap_sanitized(other))

    def issuperset(self, other: Any) -> bool:
        return self._obj.issuperset(_unwrap_sanitized(other))

    def union(self, *others: Any) -> set:
        return self._obj.union(*(_unwrap_sanitized(o) for o in others))

    def intersection(self, *others: Any) -> set:
        return self._obj.intersection(*(_unwrap_sanitized(o) for o in others))

    def difference(self, *others: Any) -> set:
        return self._obj.difference(*(_unwrap_sanitized(o) for o in others))

    def add(self, *a: Any) -> None:
        self._violate("add()")

    def remove(self, *a: Any) -> None:
        self._violate("remove()")

    def discard(self, *a: Any) -> None:
        self._violate("discard()")

    def pop(self) -> None:
        self._violate("pop()")

    def clear(self) -> None:
        self._violate("clear()")

    def update(self, *a: Any) -> None:
        self._violate("update()")

    def __ior__(self, other: Any) -> None:
        self._violate("|=")

    def __iand__(self, other: Any) -> None:
        self._violate("&=")

    def __isub__(self, other: Any) -> None:
        self._violate("-=")

    def __ixor__(self, other: Any) -> None:
        self._violate("^=")


class _FrozenByteArrayView(_FrozenViewBase):
    __slots__ = ()
    __hash__ = None

    def __getitem__(self, index: Any) -> Any:
        return self._obj[index]

    def append(self, *a: Any) -> None:
        self._violate("append()")

    def extend(self, *a: Any) -> None:
        self._violate("extend()")

    def __setitem__(self, *a: Any) -> None:
        self._violate("item assignment")

    def __delitem__(self, *a: Any) -> None:
        self._violate("item deletion")

    def __iadd__(self, other: Any) -> None:
        self._violate("+=")


_VIEW_BY_TYPE = {
    list: _FrozenListView,
    dict: _FrozenDictView,
    set: _FrozenSetView,
    bytearray: _FrozenByteArrayView,
}


def _wrap_sanitized(value: Any, where: str) -> Any:
    view = _VIEW_BY_TYPE.get(type(value))
    return view(value, where) if view is not None else value


def _unwrap_sanitized(value: Any) -> Any:
    return value._obj if isinstance(value, _FrozenViewBase) else value


def estimate_bytes(value: Any, depth: int = 0) -> int:
    """Cheap recursive size estimate (not sys.getsizeof exactness; the
    cost models only need a stable, monotone proxy)."""
    if depth > 6:
        return 8
    if isinstance(value, dict):
        return 32 + sum(
            estimate_bytes(k, depth + 1) + estimate_bytes(v, depth + 1)
            for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return 24 + sum(estimate_bytes(v, depth + 1) for v in value)
    if isinstance(value, str):
        return 48 + len(value)
    if isinstance(value, (int, float, bool)) or value is None:
        return 16
    return 64


class SnapshotStrategy(enum.Enum):
    """How :meth:`StateStore.snapshot` captures state.

    ``COW`` journals dirty keys per version (structural sharing);
    ``DEEPCOPY`` materializes a full deep copy per snapshot -- the
    trusted-simple fallback the COW path is differentially tested
    against, and the baseline the checkpoint benchmarks compare to.
    """

    COW = "cow"
    DEEPCOPY = "deepcopy"

    @classmethod
    def of(cls, value: "SnapshotStrategy | str") -> "SnapshotStrategy":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ValueError(
                f"unknown snapshot strategy {value!r}; expected one of "
                f"{[s.value for s in cls]}"
            ) from None


class StoreVersion:
    """Opaque checkpoint token returned by :meth:`StateStore.snapshot`.

    Under COW it names a version in the store's snapshot stack; under
    DEEPCOPY it additionally carries the materialized state.  Tokens are
    value-less handles: all restore logic lives in the store.
    """

    __slots__ = ("version", "payload")

    def __init__(self, version: int, payload: Optional[Dict[str, Dict]] = None):
        self.version = version
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "deepcopy" if self.payload is not None else "cow"
        return f"<StoreVersion {self.version} ({kind})>"


class _SnapshotRecord:
    """Book-keeping for one retained snapshot."""

    __slots__ = ("version", "undos", "bytes", "known")

    def __init__(self, version: int, known: Tuple[str, ...]):
        self.version = version
        #: Per-namespace undo journals, filled lazily by the barrier:
        #: ``{ns_name: {key: value_at_snapshot_time_or_MISSING}}``.
        self.undos: Dict[str, Dict[Any, Any]] = {}
        #: Byte estimate of the private data this record retains.
        self.bytes = 0
        #: Namespaces that existed when the snapshot was taken; ones
        #: created later are wiped on restore (they did not exist then).
        self.known = known


class Namespace:
    """One named sub-store: a key->value mapping behind a write barrier.

    Values must be treated as **immutable** by callers (tuples, ints,
    strings, frozen dataclasses): snapshots share them structurally.
    Mutating a stored value in place bypasses the barrier and corrupts
    every snapshot that references it -- store a replacement instead.

    Iteration (``iter`` / ``items`` / ``values``) is always in sorted
    key order, from an incrementally maintained sorted view; keys within
    one namespace must therefore be mutually comparable.
    """

    __slots__ = (
        "name", "_store", "_data", "_sorted", "_bytes", "_sizes",
        "_undo", "_undo_gen", "_listeners", "_dirty_total",
        "_sanitize", "_digests",
    )

    def __init__(self, name: str, store: Optional["StateStore"] = None):
        self.name = name
        self._store = store
        self._data: Dict[Any, Any] = {}
        self._sorted: List[Any] = []
        self._bytes = 0
        #: Per-key ``(key_size, value_size)`` byte-estimate cache: sizes
        #: are computed once per write and reused by the journal barrier,
        #: deletes and overwrites instead of re-estimating (sound because
        #: values are immutable by contract -- the sanitizer enforces it).
        self._sizes: Dict[Any, Tuple[int, int]] = {}
        self._undo: Optional[Dict[Any, Any]] = None
        self._undo_gen = -1
        #: Cumulative count of keys journalled into undo logs (first
        #: write per key per snapshot interval), i.e. how much COW
        #: journaling traffic this namespace generates.
        self._dirty_total = 0
        self._sanitize = store.sanitize if store is not None else _env_sanitize()
        #: Sanitize mode: structural digests of mutable stored values,
        #: verified at snapshot time to catch aliased escapes.
        self._digests: Dict[Any, Any] = {}
        #: Called (with no args) after the store rewinds this namespace;
        #: components keeping derived indexes (the timer table's due
        #: view) use it to invalidate them.
        self._listeners: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # write barrier
    # ------------------------------------------------------------------
    def _journal(self, key: Any, old: Any, cost: int) -> None:
        store = self._store
        if store is None or not store._journaling:
            return
        if self._undo_gen != store._gen:
            self._undo = {}
            self._undo_gen = store._gen
            store._top.undos[self.name] = self._undo
        undo = self._undo
        assert undo is not None
        if key not in undo:
            undo[key] = old
            self._dirty_total += 1
            store._top.bytes += cost
            store._private_bytes += cost

    def _track_sanitized(self, key: Any, value: Any) -> None:
        if isinstance(value, _MUTABLE_TYPES):
            self._digests[key] = _freeze_digest(value)
        else:
            self._digests.pop(key, None)

    def __setitem__(self, key: Any, value: Any) -> None:
        if self._sanitize:
            value = _unwrap_sanitized(value)
            self._track_sanitized(key, value)
        data = self._data
        old = data.get(key, _MISSING)
        if old is _MISSING:
            ksize = estimate_bytes(key)
            self._journal(key, old, ksize)
            insort(self._sorted, key)
            self._sizes[key] = (ksize, vsize := estimate_bytes(value))
            self._bytes += ksize + vsize
        else:
            if old is value or old == value:
                # values are immutable by contract, so an equal rewrite is
                # a no-op: journaling it would bloat every snapshot's undo
                # log with clean keys (wholesale replace() callers like
                # the OSPF SPF recompute would otherwise re-journal whole
                # tables per delivery, defeating O(dirty))
                return
            ksize, old_vsize = self._sizes[key]
            self._journal(key, old, ksize + old_vsize)
            self._sizes[key] = (ksize, vsize := estimate_bytes(value))
            self._bytes += vsize - old_vsize
        data[key] = value

    set = __setitem__

    def __delitem__(self, key: Any) -> None:
        data = self._data
        if key not in data:
            raise KeyError(key)
        old = data[key]
        ksize, vsize = self._sizes.pop(key)
        self._journal(key, old, ksize + vsize)
        del data[key]
        del self._sorted[bisect_left(self._sorted, key)]
        self._bytes -= ksize + vsize
        if self._sanitize:
            self._digests.pop(key, None)

    def pop(self, key: Any, *default: Any) -> Any:
        if key in self._data:
            value = self._data[key]
            del self[key]
            if self._sanitize:
                # the popped value may still be shared with undo journals
                return _wrap_sanitized(value, self._where(key))
            return value
        if default:
            return default[0]
        raise KeyError(key)

    def clear(self) -> None:
        for key in list(self._sorted):
            del self[key]

    def update(self, mapping: Dict[Any, Any]) -> None:
        for key in sorted(mapping):
            self[key] = mapping[key]

    def replace(self, mapping: Dict[Any, Any]) -> None:
        """Replace the whole contents (journalled like any other write)."""
        for key in list(self._sorted):
            if key not in mapping:
                del self[key]
        self.update(mapping)

    # ------------------------------------------------------------------
    # reads (no barrier)
    # ------------------------------------------------------------------
    def _where(self, key: Any) -> str:
        return f"namespace {self.name!r} key {key!r}"

    def __getitem__(self, key: Any) -> Any:
        value = self._data[key]
        if self._sanitize:
            return _wrap_sanitized(value, self._where(key))
        return value

    def get(self, key: Any, default: Any = None) -> Any:
        if self._sanitize:
            if key in self._data:
                return _wrap_sanitized(self._data[key], self._where(key))
            return default
        return self._data.get(key, default)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def __iter__(self) -> Iterator[Any]:
        return iter(tuple(self._sorted))

    def keys(self) -> Tuple[Any, ...]:
        return tuple(self._sorted)

    def items(self) -> List[Tuple[Any, Any]]:
        data = self._data
        if self._sanitize:
            return [
                (k, _wrap_sanitized(data[k], self._where(k)))
                for k in self._sorted
            ]
        return [(k, data[k]) for k in self._sorted]

    def values(self) -> List[Any]:
        data = self._data
        if self._sanitize:
            return [_wrap_sanitized(data[k], self._where(k)) for k in self._sorted]
        return [data[k] for k in self._sorted]

    def as_dict(self) -> Dict[Any, Any]:
        """Materialize (sorted key order -- deterministic repr)."""
        data = self._data
        if self._sanitize:
            return {
                k: _wrap_sanitized(data[k], self._where(k))
                for k in self._sorted
            }
        return {k: data[k] for k in self._sorted}

    def byte_size(self) -> int:
        return self._bytes

    def dirty_keys_total(self) -> int:
        """Cumulative COW journal traffic: keys journalled into undo
        logs over this namespace's lifetime (first write per key per
        snapshot interval)."""
        return self._dirty_total

    def _verify_digests(self) -> None:
        """Sanitize mode: re-digest every mutable stored value and
        compare against its stored-time digest -- catches a caller that
        kept the raw reference it stored and mutated it in place."""
        data = self._data
        for key, digest in self._digests.items():
            if key not in data:
                continue
            if _freeze_digest(data[key]) != digest:
                raise StoreContractViolation(
                    f"value stored in {self._where(key)} was mutated in "
                    "place through an aliased reference since it was "
                    "stored; stored values are immutable behind the "
                    "write barrier -- store a replacement instead"
                )

    def add_listener(self, fn: Callable[[], None]) -> None:
        self._listeners.append(fn)

    # ------------------------------------------------------------------
    # store-internal (no journaling -- used by undo application)
    # ------------------------------------------------------------------
    def _raw_set(self, key: Any, value: Any) -> None:
        old = self._data.get(key, _MISSING)
        vsize = estimate_bytes(value)
        if old is _MISSING:
            insort(self._sorted, key)
            ksize = estimate_bytes(key)
            self._bytes += ksize + vsize
        else:
            ksize, old_vsize = self._sizes[key]
            self._bytes += vsize - old_vsize
        self._sizes[key] = (ksize, vsize)
        self._data[key] = value
        if self._sanitize:
            self._track_sanitized(key, value)

    def _raw_delete(self, key: Any) -> None:
        old = self._data.pop(key, _MISSING)
        if old is _MISSING:
            return
        ksize, vsize = self._sizes.pop(key)
        del self._sorted[bisect_left(self._sorted, key)]
        self._bytes -= ksize + vsize
        if self._sanitize:
            self._digests.pop(key, None)

    def _load(self, data: Dict[Any, Any]) -> None:
        """Wholesale reload (deepcopy restore path): no journaling."""
        self._data = dict(data)
        self._sorted = sorted(self._data)
        self._sizes = {
            k: (estimate_bytes(k), estimate_bytes(v))
            for k, v in self._data.items()
        }
        self._bytes = sum(ks + vs for ks, vs in self._sizes.values())
        if self._sanitize:
            self._digests = {}
            for k, v in self._data.items():
                self._track_sanitized(k, v)

    def _wipe(self) -> None:
        self._data = {}
        self._sorted = []
        self._sizes = {}
        self._bytes = 0
        self._digests = {}

    def _notify(self) -> None:
        for fn in self._listeners:
            fn()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Namespace {self.name}: {len(self._data)} keys>"


class StateStore:
    """A node's versioned, structurally-sharing checkpointable state."""

    def __init__(
        self,
        strategy: "SnapshotStrategy | str" = SnapshotStrategy.COW,
        sanitize: Optional[bool] = None,
    ):
        self._strategy = SnapshotStrategy.of(strategy)
        #: Sanitize mode: default from ``REPRO_SANITIZE`` so whole
        #: sweeps can opt in without threading a flag everywhere.
        self._sanitize = _env_sanitize() if sanitize is None else bool(sanitize)
        self._namespaces: Dict[str, Namespace] = {}
        self._version = 0
        self._snapshots: List[_SnapshotRecord] = []
        self._private_bytes = 0
        #: Monotone generation; bumped whenever the "newest snapshot"
        #: identity changes so barriers can re-bind their undo dicts.
        self._gen = 0
        self._journaling = False
        self._top: Optional[_SnapshotRecord] = None

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    @property
    def sanitize(self) -> bool:
        return self._sanitize

    @property
    def strategy(self) -> SnapshotStrategy:
        return self._strategy

    @strategy.setter
    def strategy(self, value: "SnapshotStrategy | str") -> None:
        value = SnapshotStrategy.of(value)
        if value is not self._strategy and self._snapshots:
            raise RuntimeError(
                "cannot switch snapshot strategy with snapshots retained; "
                "call reset() first"
            )
        self._strategy = value

    def namespace(self, name: str) -> Namespace:
        """Create (or return the existing) namespace ``name``."""
        ns = self._namespaces.get(name)
        if ns is None:
            ns = Namespace(name, store=self)
            self._namespaces[name] = ns
        return ns

    def namespaces(self) -> Tuple[str, ...]:
        return tuple(sorted(self._namespaces))

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> StoreVersion:
        """Capture the current state; returns an opaque token.

        COW: O(1) -- seal the open undo journals and open fresh (lazy)
        ones.  DEEPCOPY: a full deep copy, the old per-delivery cost.
        """
        if self._sanitize:
            for ns in self._namespaces.values():
                ns._verify_digests()
        self._version += 1
        if self._strategy is SnapshotStrategy.DEEPCOPY:
            payload = {
                name: copy.deepcopy(ns._data)
                for name, ns in self._namespaces.items()
            }
            record = _SnapshotRecord(self._version, tuple(self._namespaces))
            record.bytes = self.live_bytes()
            self._snapshots.append(record)
            self._private_bytes += record.bytes
            self._top = record
            self._gen += 1
            return StoreVersion(self._version, payload)
        record = _SnapshotRecord(self._version, tuple(self._namespaces))
        self._snapshots.append(record)
        self._top = record
        self._gen += 1
        self._journaling = True
        return StoreVersion(self._version)

    def restore(self, token: StoreVersion) -> None:
        """Rewind the live state to ``token``'s version.

        Discards every younger snapshot (rollback stack discipline); the
        restored version itself stays retained and pristine, so it can
        be restored from again.
        """
        if token.payload is not None:
            self._restore_deepcopy(token)
        else:
            self._restore_cow(token)
        for ns in self._namespaces.values():
            ns._notify()

    def _check_retained(self, token: StoreVersion) -> None:
        """Validate BEFORE unwinding: a bad token must not destroy the
        retained stack on its way to the error.  Records are sorted by
        version, so this is a bisect, not a scan."""
        snapshots = self._snapshots
        i = bisect_left(snapshots, token.version, key=lambda r: r.version)
        if i == len(snapshots) or snapshots[i].version != token.version:
            raise ValueError(
                f"store version {token.version} is unknown or was released"
            )

    def _restore_cow(self, token: StoreVersion) -> None:
        self._check_retained(token)
        snapshots = self._snapshots
        while snapshots[-1].version > token.version:
            record = snapshots.pop()
            self._apply_undo(record)
            self._private_bytes -= record.bytes
        record = snapshots[-1]
        self._apply_undo(record)
        self._private_bytes -= record.bytes
        record.undos = {}
        record.bytes = 0
        self._wipe_unknown(record)
        # re-open journaling against the restored top
        self._top = record
        self._gen += 1

    def _restore_deepcopy(self, token: StoreVersion) -> None:
        self._check_retained(token)
        while self._snapshots[-1].version > token.version:
            record = self._snapshots.pop()
            self._private_bytes -= record.bytes
        assert token.payload is not None
        for name, data in token.payload.items():
            self.namespace(name)._load(copy.deepcopy(data))
        self._wipe_unknown(self._snapshots[-1])
        self._top = self._snapshots[-1]
        self._gen += 1

    def _apply_undo(self, record: _SnapshotRecord) -> None:
        for name, undo in record.undos.items():
            ns = self._namespaces[name]
            for key, old in undo.items():
                if old is _MISSING:
                    ns._raw_delete(key)
                else:
                    ns._raw_set(key, old)

    def _wipe_unknown(self, record: _SnapshotRecord) -> None:
        known = set(record.known)
        for name, ns in self._namespaces.items():
            if name not in known:
                ns._wipe()

    # ------------------------------------------------------------------
    # retention
    # ------------------------------------------------------------------
    def release_before(self, token: StoreVersion) -> int:
        """Drop retained snapshots older than ``token`` (their undo data
        can never be restored to again -- the history window moved past
        them).  Returns the number released."""
        snapshots = self._snapshots
        released = bisect_left(snapshots, token.version, key=lambda r: r.version)
        if released:
            for record in snapshots[:released]:
                self._private_bytes -= record.bytes
            # one slice deletion (single memmove) instead of per-record
            # pop(0) shifts: this runs on every beacon's window prune
            del snapshots[:released]
        return released

    def reset(self) -> None:
        """Forget every snapshot (reboot); live state is untouched."""
        self._snapshots = []
        self._private_bytes = 0
        self._journaling = False
        self._top = None
        self._gen += 1

    def retained_snapshots(self) -> int:
        return len(self._snapshots)

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def live_bytes(self) -> int:
        """Byte estimate of the live (shared) state."""
        return sum(ns._bytes for ns in self._namespaces.values())

    def dirty_key_counts(self) -> Dict[str, int]:
        """Per-namespace cumulative COW journal traffic (keys journalled
        into undo logs), sorted by namespace name."""
        return {
            name: self._namespaces[name]._dirty_total
            for name in sorted(self._namespaces)
        }

    def private_bytes(self) -> int:
        """Byte estimate of the retained private copies: undo-journal
        entries under COW, full materialized snapshots under DEEPCOPY."""
        return self._private_bytes

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def materialize(self) -> Dict[str, Dict[Any, Any]]:
        """A plain, independent dict-of-dicts copy of the live state."""
        return {
            name: copy.deepcopy(ns.as_dict())
            for name, ns in sorted(self._namespaces.items())
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<StateStore {self._strategy.value} v{self._version} "
            f"{len(self._namespaces)} ns, {len(self._snapshots)} snaps>"
        )
