"""Copy-on-write snapshot store: checkpoints that cost what MI says.

The paper's best checkpoint scheme (MI, Section 5.2) tracks dirty bytes
and copies only what changed, dropping rollback cost to ~0.6 ms.  The
reproduction *modelled* that cost while still paying a full
``copy.deepcopy`` of the entire daemon state on every delivered message
-- the dominant real wall-clock cost of every sweep/envelope/fuzz grid
cell.  This module is the mechanism that makes the model honest:

* a :class:`StateStore` holds a node's complete checkpointable state as
  namespaced sub-stores (:class:`Namespace`): RIB, LSDB, peer tables,
  damping state, timer table, counters;
* every mutation goes through a thin **write barrier**
  (``ns[key] = value`` / ``del ns[key]`` / ``ns.clear()``) which, when a
  snapshot is live, journals the key's *previous* value into the newest
  snapshot's undo log -- first write per key per snapshot interval only;
* :meth:`StateStore.snapshot` is therefore **O(dirty-since-last-
  snapshot)** (in practice O(1): it seals the open undo logs and bumps a
  generation counter; the journaling cost was already paid by the writes
  themselves);
* :meth:`StateStore.restore` walks undo logs newest-first back to the
  requested version -- O(keys dirtied since that version) -- instead of
  re-deepcopying the world.  A restored version stays pristine and can
  be restored from again (rollback replays re-checkpoint on top of it).

Restores follow the rollback engine's **stack discipline**: restoring
version *v* discards every snapshot younger than *v*.  This is exactly
how DEFINED-RB uses checkpoints (roll back to a divergence point, then
replay forward taking fresh checkpoints) and how DEFINED-LS re-executes
a group from its group checkpoint.

**Determinism.**  Namespaces iterate in *sorted key order* via an
incrementally maintained sorted view, never in dict insertion order.
Insertion order is not restored by undo application (a key deleted and
re-added lands at the end of the dict), so any daemon behaviour hanging
off raw dict order would diverge between the COW and deepcopy paths.
Sorted iteration makes the two strategies bit-identical by construction
-- which the differential sweep tests assert fingerprint-for-fingerprint.

**Memory accounting.**  The store tracks a byte estimate of the live
state (:meth:`StateStore.live_bytes`, incrementally maintained by the
barrier) and of the retained private copies
(:meth:`StateStore.private_bytes`: undo-log entries under COW, full
materialized snapshots under DEEPCOPY).  The Figure-7c shared-vs-private
accounting reads these real counts instead of a modelled fraction.

:class:`SnapshotStrategy.DEEPCOPY` keeps the old full-deepcopy behaviour
behind the same API, selectable per run, so every grid can be run
differentially against the trusted-simple path.
"""

from __future__ import annotations

import copy
import enum
from bisect import bisect_left, insort
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: Sentinel in undo journals: the key was absent at snapshot time.
_MISSING = object()


def estimate_bytes(value: Any, depth: int = 0) -> int:
    """Cheap recursive size estimate (not sys.getsizeof exactness; the
    cost models only need a stable, monotone proxy)."""
    if depth > 6:
        return 8
    if isinstance(value, dict):
        return 32 + sum(
            estimate_bytes(k, depth + 1) + estimate_bytes(v, depth + 1)
            for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return 24 + sum(estimate_bytes(v, depth + 1) for v in value)
    if isinstance(value, str):
        return 48 + len(value)
    if isinstance(value, (int, float, bool)) or value is None:
        return 16
    return 64


class SnapshotStrategy(enum.Enum):
    """How :meth:`StateStore.snapshot` captures state.

    ``COW`` journals dirty keys per version (structural sharing);
    ``DEEPCOPY`` materializes a full deep copy per snapshot -- the
    trusted-simple fallback the COW path is differentially tested
    against, and the baseline the checkpoint benchmarks compare to.
    """

    COW = "cow"
    DEEPCOPY = "deepcopy"

    @classmethod
    def of(cls, value: "SnapshotStrategy | str") -> "SnapshotStrategy":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ValueError(
                f"unknown snapshot strategy {value!r}; expected one of "
                f"{[s.value for s in cls]}"
            ) from None


class StoreVersion:
    """Opaque checkpoint token returned by :meth:`StateStore.snapshot`.

    Under COW it names a version in the store's snapshot stack; under
    DEEPCOPY it additionally carries the materialized state.  Tokens are
    value-less handles: all restore logic lives in the store.
    """

    __slots__ = ("version", "payload")

    def __init__(self, version: int, payload: Optional[Dict[str, Dict]] = None):
        self.version = version
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "deepcopy" if self.payload is not None else "cow"
        return f"<StoreVersion {self.version} ({kind})>"


class _SnapshotRecord:
    """Book-keeping for one retained snapshot."""

    __slots__ = ("version", "undos", "bytes", "known")

    def __init__(self, version: int, known: Tuple[str, ...]):
        self.version = version
        #: Per-namespace undo journals, filled lazily by the barrier:
        #: ``{ns_name: {key: value_at_snapshot_time_or_MISSING}}``.
        self.undos: Dict[str, Dict[Any, Any]] = {}
        #: Byte estimate of the private data this record retains.
        self.bytes = 0
        #: Namespaces that existed when the snapshot was taken; ones
        #: created later are wiped on restore (they did not exist then).
        self.known = known


class Namespace:
    """One named sub-store: a key->value mapping behind a write barrier.

    Values must be treated as **immutable** by callers (tuples, ints,
    strings, frozen dataclasses): snapshots share them structurally.
    Mutating a stored value in place bypasses the barrier and corrupts
    every snapshot that references it -- store a replacement instead.

    Iteration (``iter`` / ``items`` / ``values``) is always in sorted
    key order, from an incrementally maintained sorted view; keys within
    one namespace must therefore be mutually comparable.
    """

    __slots__ = (
        "name", "_store", "_data", "_sorted", "_bytes",
        "_undo", "_undo_gen", "_listeners",
    )

    def __init__(self, name: str, store: Optional["StateStore"] = None):
        self.name = name
        self._store = store
        self._data: Dict[Any, Any] = {}
        self._sorted: List[Any] = []
        self._bytes = 0
        self._undo: Optional[Dict[Any, Any]] = None
        self._undo_gen = -1
        #: Called (with no args) after the store rewinds this namespace;
        #: components keeping derived indexes (the timer table's due
        #: view) use it to invalidate them.
        self._listeners: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # write barrier
    # ------------------------------------------------------------------
    def _journal(self, key: Any, old: Any) -> None:
        store = self._store
        if store is None or not store._journaling:
            return
        if self._undo_gen != store._gen:
            self._undo = {}
            self._undo_gen = store._gen
            store._top.undos[self.name] = self._undo
        undo = self._undo
        assert undo is not None
        if key not in undo:
            undo[key] = old
            cost = estimate_bytes(key) + (
                0 if old is _MISSING else estimate_bytes(old)
            )
            store._top.bytes += cost
            store._private_bytes += cost

    def __setitem__(self, key: Any, value: Any) -> None:
        data = self._data
        old = data.get(key, _MISSING)
        if old is _MISSING:
            self._journal(key, old)
            insort(self._sorted, key)
            self._bytes += estimate_bytes(key) + estimate_bytes(value)
        else:
            if old is value or old == value:
                # values are immutable by contract, so an equal rewrite is
                # a no-op: journaling it would bloat every snapshot's undo
                # log with clean keys (wholesale replace() callers like
                # the OSPF SPF recompute would otherwise re-journal whole
                # tables per delivery, defeating O(dirty))
                return
            self._journal(key, old)
            self._bytes += estimate_bytes(value) - estimate_bytes(old)
        data[key] = value

    set = __setitem__

    def __delitem__(self, key: Any) -> None:
        data = self._data
        if key not in data:
            raise KeyError(key)
        old = data[key]
        self._journal(key, old)
        del data[key]
        del self._sorted[bisect_left(self._sorted, key)]
        self._bytes -= estimate_bytes(key) + estimate_bytes(old)

    def pop(self, key: Any, *default: Any) -> Any:
        if key in self._data:
            value = self._data[key]
            del self[key]
            return value
        if default:
            return default[0]
        raise KeyError(key)

    def clear(self) -> None:
        for key in list(self._sorted):
            del self[key]

    def update(self, mapping: Dict[Any, Any]) -> None:
        for key in sorted(mapping):
            self[key] = mapping[key]

    def replace(self, mapping: Dict[Any, Any]) -> None:
        """Replace the whole contents (journalled like any other write)."""
        for key in list(self._sorted):
            if key not in mapping:
                del self[key]
        self.update(mapping)

    # ------------------------------------------------------------------
    # reads (no barrier)
    # ------------------------------------------------------------------
    def __getitem__(self, key: Any) -> Any:
        return self._data[key]

    def get(self, key: Any, default: Any = None) -> Any:
        return self._data.get(key, default)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def __iter__(self) -> Iterator[Any]:
        return iter(tuple(self._sorted))

    def keys(self) -> Tuple[Any, ...]:
        return tuple(self._sorted)

    def items(self) -> List[Tuple[Any, Any]]:
        data = self._data
        return [(k, data[k]) for k in self._sorted]

    def values(self) -> List[Any]:
        data = self._data
        return [data[k] for k in self._sorted]

    def as_dict(self) -> Dict[Any, Any]:
        """Materialize (sorted key order -- deterministic repr)."""
        data = self._data
        return {k: data[k] for k in self._sorted}

    def byte_size(self) -> int:
        return self._bytes

    def add_listener(self, fn: Callable[[], None]) -> None:
        self._listeners.append(fn)

    # ------------------------------------------------------------------
    # store-internal (no journaling -- used by undo application)
    # ------------------------------------------------------------------
    def _raw_set(self, key: Any, value: Any) -> None:
        old = self._data.get(key, _MISSING)
        if old is _MISSING:
            insort(self._sorted, key)
            self._bytes += estimate_bytes(key) + estimate_bytes(value)
        else:
            self._bytes += estimate_bytes(value) - estimate_bytes(old)
        self._data[key] = value

    def _raw_delete(self, key: Any) -> None:
        old = self._data.pop(key, _MISSING)
        if old is _MISSING:
            return
        del self._sorted[bisect_left(self._sorted, key)]
        self._bytes -= estimate_bytes(key) + estimate_bytes(old)

    def _load(self, data: Dict[Any, Any]) -> None:
        """Wholesale reload (deepcopy restore path): no journaling."""
        self._data = dict(data)
        self._sorted = sorted(self._data)
        self._bytes = sum(
            estimate_bytes(k) + estimate_bytes(v) for k, v in self._data.items()
        )

    def _wipe(self) -> None:
        self._data = {}
        self._sorted = []
        self._bytes = 0

    def _notify(self) -> None:
        for fn in self._listeners:
            fn()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Namespace {self.name}: {len(self._data)} keys>"


class StateStore:
    """A node's versioned, structurally-sharing checkpointable state."""

    def __init__(self, strategy: "SnapshotStrategy | str" = SnapshotStrategy.COW):
        self._strategy = SnapshotStrategy.of(strategy)
        self._namespaces: Dict[str, Namespace] = {}
        self._version = 0
        self._snapshots: List[_SnapshotRecord] = []
        self._private_bytes = 0
        #: Monotone generation; bumped whenever the "newest snapshot"
        #: identity changes so barriers can re-bind their undo dicts.
        self._gen = 0
        self._journaling = False
        self._top: Optional[_SnapshotRecord] = None

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    @property
    def strategy(self) -> SnapshotStrategy:
        return self._strategy

    @strategy.setter
    def strategy(self, value: "SnapshotStrategy | str") -> None:
        value = SnapshotStrategy.of(value)
        if value is not self._strategy and self._snapshots:
            raise RuntimeError(
                "cannot switch snapshot strategy with snapshots retained; "
                "call reset() first"
            )
        self._strategy = value

    def namespace(self, name: str) -> Namespace:
        """Create (or return the existing) namespace ``name``."""
        ns = self._namespaces.get(name)
        if ns is None:
            ns = Namespace(name, store=self)
            self._namespaces[name] = ns
        return ns

    def namespaces(self) -> Tuple[str, ...]:
        return tuple(sorted(self._namespaces))

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> StoreVersion:
        """Capture the current state; returns an opaque token.

        COW: O(1) -- seal the open undo journals and open fresh (lazy)
        ones.  DEEPCOPY: a full deep copy, the old per-delivery cost.
        """
        self._version += 1
        if self._strategy is SnapshotStrategy.DEEPCOPY:
            payload = {
                name: copy.deepcopy(ns._data)
                for name, ns in self._namespaces.items()
            }
            record = _SnapshotRecord(self._version, tuple(self._namespaces))
            record.bytes = self.live_bytes()
            self._snapshots.append(record)
            self._private_bytes += record.bytes
            self._top = record
            self._gen += 1
            return StoreVersion(self._version, payload)
        record = _SnapshotRecord(self._version, tuple(self._namespaces))
        self._snapshots.append(record)
        self._top = record
        self._gen += 1
        self._journaling = True
        return StoreVersion(self._version)

    def restore(self, token: StoreVersion) -> None:
        """Rewind the live state to ``token``'s version.

        Discards every younger snapshot (rollback stack discipline); the
        restored version itself stays retained and pristine, so it can
        be restored from again.
        """
        if token.payload is not None:
            self._restore_deepcopy(token)
        else:
            self._restore_cow(token)
        for ns in self._namespaces.values():
            ns._notify()

    def _check_retained(self, token: StoreVersion) -> None:
        """Validate BEFORE unwinding: a bad token must not destroy the
        retained stack on its way to the error.  Records are sorted by
        version, so this is a bisect, not a scan."""
        snapshots = self._snapshots
        i = bisect_left(snapshots, token.version, key=lambda r: r.version)
        if i == len(snapshots) or snapshots[i].version != token.version:
            raise ValueError(
                f"store version {token.version} is unknown or was released"
            )

    def _restore_cow(self, token: StoreVersion) -> None:
        self._check_retained(token)
        snapshots = self._snapshots
        while snapshots[-1].version > token.version:
            record = snapshots.pop()
            self._apply_undo(record)
            self._private_bytes -= record.bytes
        record = snapshots[-1]
        self._apply_undo(record)
        self._private_bytes -= record.bytes
        record.undos = {}
        record.bytes = 0
        self._wipe_unknown(record)
        # re-open journaling against the restored top
        self._top = record
        self._gen += 1

    def _restore_deepcopy(self, token: StoreVersion) -> None:
        self._check_retained(token)
        while self._snapshots[-1].version > token.version:
            record = self._snapshots.pop()
            self._private_bytes -= record.bytes
        assert token.payload is not None
        for name, data in token.payload.items():
            self.namespace(name)._load(copy.deepcopy(data))
        self._wipe_unknown(self._snapshots[-1])
        self._top = self._snapshots[-1]
        self._gen += 1

    def _apply_undo(self, record: _SnapshotRecord) -> None:
        for name, undo in record.undos.items():
            ns = self._namespaces[name]
            for key, old in undo.items():
                if old is _MISSING:
                    ns._raw_delete(key)
                else:
                    ns._raw_set(key, old)

    def _wipe_unknown(self, record: _SnapshotRecord) -> None:
        known = set(record.known)
        for name, ns in self._namespaces.items():
            if name not in known:
                ns._wipe()

    # ------------------------------------------------------------------
    # retention
    # ------------------------------------------------------------------
    def release_before(self, token: StoreVersion) -> int:
        """Drop retained snapshots older than ``token`` (their undo data
        can never be restored to again -- the history window moved past
        them).  Returns the number released."""
        snapshots = self._snapshots
        released = bisect_left(snapshots, token.version, key=lambda r: r.version)
        if released:
            for record in snapshots[:released]:
                self._private_bytes -= record.bytes
            # one slice deletion (single memmove) instead of per-record
            # pop(0) shifts: this runs on every beacon's window prune
            del snapshots[:released]
        return released

    def reset(self) -> None:
        """Forget every snapshot (reboot); live state is untouched."""
        self._snapshots = []
        self._private_bytes = 0
        self._journaling = False
        self._top = None
        self._gen += 1

    def retained_snapshots(self) -> int:
        return len(self._snapshots)

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def live_bytes(self) -> int:
        """Byte estimate of the live (shared) state."""
        return sum(ns._bytes for ns in self._namespaces.values())

    def private_bytes(self) -> int:
        """Byte estimate of the retained private copies: undo-journal
        entries under COW, full materialized snapshots under DEEPCOPY."""
        return self._private_bytes

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def materialize(self) -> Dict[str, Dict[Any, Any]]:
        """A plain, independent dict-of-dicts copy of the live state."""
        return {
            name: copy.deepcopy(ns.as_dict())
            for name, ns in sorted(self._namespaces.items())
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<StateStore {self._strategy.value} v{self._version} "
            f"{len(self._namespaces)} ns, {len(self._snapshots)} snaps>"
        )
