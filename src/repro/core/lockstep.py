"""DEFINED-LS: lockstep execution of a debugging network (Section 2.3).

A debugging network replays a partial recording produced by a DEFINED-RB
production run.  A :class:`LockstepCoordinator` (the paper's "runtime
coordinator") drives all nodes through alternating **transmission** and
**processing** phases, synchronized by a distributed-semaphore barrier:
the coordinator broadcasts a phase-begin control message and every node
answers with a *marker* when it has nothing further to do in the phase.
One recorded group of external events is replayed at a time; when a full
transmission+processing cycle moves no messages, the group is complete
and the next group begins (groups with no recorded events still execute,
because timer-driven traffic such as periodic announcements exists in
every group).

Message delivery order inside each node uses **exactly the same ordering
function as the production network**, which is what makes the replay
reproduce the production execution (Theorem 1).

**A soundness refinement.**  The paper's prose processes each wave of
arrivals as it lands.  Within a group, however, a later wave can carry a
message whose ordering key is *smaller* than one already processed (three
fast hops can beat two slow ones in ``d_i``), and a wave-at-a-time replay
would then diverge from DEFINED-RB's (key-sorted) production order.  We
therefore process each group *optimistically with group-local re-
execution*: every node checkpoints at group start, processes its known
inputs in key order, and -- should a later wave violate that order --
restores the group checkpoint, retracts the outputs that are no longer
produced (anti-messages over the reliable transport), and re-processes
the full input set.  Output retraction is differential: logically
identical re-emissions keep their uid and are not resent, so the group
reaches a fixpoint in at most diameter-many cycles.  The final per-node
order is the key-sorted full input set -- precisely DEFINED-RB's final
order -- making Theorem 1 hold mechanically (and testably).

Losses cannot perturb this: all traffic rides the reliable transport of
:mod:`repro.simnet.transport` ("The nodes use TCP ... which is necessary
for determinism").  Messages the production network could not deliver
(down link / dead router) are suppressed from replay via the recording's
*drop set*.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.checkpoint import Checkpoint
from repro.core.history import HistoryEntry
from repro.core.ordering import OptimizedOrdering, OrderingFunction, OrderKey
from repro.core.recorder import RecordedEvent, Recording
from repro.core.statestore import SnapshotStrategy, StateStore
from repro.core.virtual_time import TimerTable
from repro.simnet.events import ExternalEvent, LINK_DOWN, LINK_UP, NODE_DOWN, NODE_UP
from repro.simnet.messages import Annotation, Message, Unsend
from repro.simnet.network import Network
from repro.simnet.node import Node, Stack
from repro.simnet.transport import ReliableTransport

#: Synthetic "node id" under which network-level topology events are
#: recorded (they have no observing daemon; the coordinator applies them
#: to the debugging network's logical topology at group start).
NET_EVENTS_NODE = "__net__"

#: Output identity used for differential retransmission: logically equal
#: re-emissions are recognized and keep their uid.
OutputId = Tuple[str, int, int, int, str, str, str]


class LockstepStack(Stack):
    """DEFINED-LS stack for one debugging-network node."""

    def __init__(
        self,
        node: Node,
        ordering: OrderingFunction,
        recording: Recording,
        chain_bound: int = 64,
        rto_us: int = 50_000,
        poll_us: int = 2_000,
        snapshots: "SnapshotStrategy | str" = SnapshotStrategy.COW,
    ) -> None:
        super().__init__(node)
        self.ordering = ordering
        self.drops = recording.drops
        self.chain_bound = chain_bound
        self.poll_us = poll_us
        #: Group checkpoints go through a store-backed daemon's state
        #: store (one version per group, restored per re-execution cycle);
        #: must match the production shims for differential runs, though
        #: either mechanism replays identically.
        self.snapshot_strategy = SnapshotStrategy.of(snapshots)
        self._store: Optional[StateStore] = None
        #: Must equal the production shims' values: annotations (hence
        #: ordering keys and drop identities) are recomputed here and have
        #: to match bit for bit.  Delay estimates come from the recording
        #: (they are production-measured configuration); the debugging
        #: network's own link characteristics are irrelevant to them.
        self.hop_cost_us = recording.hop_cost_us
        self._delay_estimates = recording.delay_estimates
        #: Chain-delay spill bound: the *production* beacon interval, from
        #: the recording (the debugging network's own interval is
        #: irrelevant -- annotations must match production bit for bit).
        self.spill_bound_us = recording.spill_bound_us
        self.transport = ReliableTransport(
            node.node_id, node.network, self._on_logical, rto_us=rto_us
        )
        self.coordinator: Optional["LockstepCoordinator"] = None
        self.active = True
        self.logical_down_links: Set[frozenset] = set()

        self.vt = 0
        self.timers = TimerTable()
        self._origin_seq = 0
        self._sub_seq = 0

        # --- current-group state -------------------------------------
        self._group_checkpoint: Optional[Checkpoint] = None
        self._group_log_index = 0
        self._inputs: Dict[OrderKey, HistoryEntry] = {}
        self._uid_to_key: Dict[int, OrderKey] = {}
        self._future: List[Message] = []
        self._annihilate: Set[int] = set()
        self._emitted: Dict[OutputId, int] = {}
        self._send_buffer: List[Message] = []
        self._unsend_buffer: Dict[str, List[int]] = {}
        self._new_outputs: List[Tuple[OutputId, Message]] = []
        self._collecting = False
        self._current_entry: Optional[HistoryEntry] = None
        self._dirty = True
        self._processed_once = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.vt = (
            self.coordinator.current_group
            if self.coordinator is not None and self.coordinator.current_group >= 0
            else 0
        )
        store = getattr(self.daemon, "store", None) if self.daemon is not None else None
        if store is not None:
            store.reset()
            store.strategy = self.snapshot_strategy
        self._store = store
        self.timers = TimerTable(store=store)
        self._origin_seq = 0
        self._sub_seq = 0
        self._inputs.clear()
        self._uid_to_key.clear()
        self._emitted = {}
        self._unsend_buffer = {}
        self._dirty = True
        self._processed_once = False
        if self.daemon is not None:
            self.daemon.on_start()

    # ------------------------------------------------------------------
    # app-facing API (mirrors DefinedShim so daemons are oblivious)
    # ------------------------------------------------------------------
    def send(
        self,
        dst: str,
        protocol: str,
        payload,
        parent: Optional[Message] = None,
        size_bytes: int = 64,
    ) -> None:
        link_estimate = self._delay_estimates.get(f"{self.node.node_id}>{dst}")
        if link_estimate is None:
            link_estimate = self.node.network.avg_link_delay_us(self.node.node_id, dst)
        hop_estimate = link_estimate + self.hop_cost_us
        if parent is not None and parent.annotation is not None:
            pa = parent.annotation
            self._sub_seq += 1
            annotation = pa.extended(
                link_delay_us=hop_estimate,
                sub=self._sub_seq,
                over_chain_bound=pa.chain + 1 > self.chain_bound,
                sender=self.node.node_id,
                spill_bound_us=self.spill_bound_us,
            )
        else:
            self._origin_seq += 1
            group = (
                self._current_entry.group if self._current_entry is not None else self.vt
            )
            offset = (
                self._current_entry.origin_offset_us
                if self._current_entry is not None
                else 0
            )
            annotation = Annotation(
                origin=self.node.node_id,
                seq=self._origin_seq,
                delay_us=offset + hop_estimate,
                group=group,
                chain=0,
                sub=0,
                sender=self.node.node_id,
            )
        identity = (
            annotation.sender,
            annotation.origin,
            annotation.seq,
            annotation.sub,
            annotation.group,
            dst,
            protocol,
        )
        if identity in self.drops:
            return  # the production network never delivered this message
        msg = Message(
            src=self.node.node_id,
            dst=dst,
            protocol=protocol,
            payload=payload,
            annotation=annotation,
            size_bytes=size_bytes,
        )
        # origination freezes the payload (store contract); the interned
        # repr is shared by the output id below and every delivery tag
        msg.canonical_payload_repr()
        if self._collecting:
            # The differential-retransmission identity must cover every
            # annotation field that shapes downstream ordering keys: a
            # later re-execution can re-emit the "same" logical message
            # with a corrected delay estimate (its causal parent changed),
            # and treating that as unchanged would leave receivers holding
            # the stale annotation -- diverging from production.
            out_id = identity + (
                annotation.delay_us,
                annotation.chain,
                msg.canonical_payload_repr(),
            )
            self._new_outputs.append((out_id, msg))
        else:
            # boot-time traffic: emitted once, never retracted
            msg.uid = self.node.network.next_uid()
            self._send_buffer.append(msg)

    def set_timer(self, delay_units: int, key: str) -> None:
        # same rule as the production shim: expiries are based on the
        # group of the event being processed, never on wall-clock accident
        base = (
            self._current_entry.group if self._current_entry is not None else self.vt
        )
        self.timers.set(key, base, delay_units)

    def cancel_timer(self, key: str) -> None:
        self.timers.cancel(key)

    def time_units(self) -> int:
        return self.vt

    def neighbors(self) -> List[str]:
        """Adjacency under the *replayed* (logical) topology state."""
        out = []
        for other in self.node.network.all_neighbors(self.node.node_id):
            if frozenset((self.node.node_id, other)) in self.logical_down_links:
                continue
            out.append(other)
        return out

    # ------------------------------------------------------------------
    # node-facing API
    # ------------------------------------------------------------------
    def on_wire(self, msg: Message) -> None:
        self.transport.on_wire(msg)

    def on_external(self, event: ExternalEvent) -> None:  # pragma: no cover
        raise RuntimeError(
            "a debugging network has no live external events; "
            "inject them through the recording"
        )

    # ------------------------------------------------------------------
    # coordinator protocol
    # ------------------------------------------------------------------
    def _on_coordinator(self, payload: Dict[str, Any]) -> None:
        kind = payload["type"]
        if kind == "group":
            self._begin_group(payload["group"], payload["events"])
            self._marker(payload, count=0)
        elif kind == "transmit":
            self._do_transmission(payload)
        elif kind == "process":
            count = self._do_processing()
            self._marker(payload, count=count)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown coordinator message {kind!r}")

    def _marker(self, payload: Dict[str, Any], count: int) -> None:
        assert self.coordinator is not None
        self.node.stats.control_packets_sent += 1
        self.sim.schedule(
            self.coordinator.delay_to(self.node.node_id),
            self.coordinator.on_marker,
            self.node.node_id,
            payload["type"],
            count,
            label=f"marker:{self.node.node_id}",
        )

    # ------------------------------------------------------------------
    # group handling
    # ------------------------------------------------------------------
    def _begin_group(self, group: int, events: List[RecordedEvent]) -> None:
        self.vt = group
        # the previous group quiesced: its inputs are final and their
        # effects are baked into the state the new group checkpoint will
        # capture -- drop them so they are not replayed into this group
        self._inputs = {}
        self._uid_to_key = {}
        still_future: List[Message] = []
        for msg in self._future:
            assert msg.annotation is not None
            if msg.annotation.group == group:
                self._add_input_msg(msg)
            else:
                still_future.append(msg)
        self._future = still_future
        for rev in events:
            entry = HistoryEntry(
                kind="ext",
                key=self.ordering.external_key(group, self.node.node_id, rev.seq),
                event=rev.to_external_event(),
                group=group,
                seq=rev.seq,
                origin_offset_us=rev.offset_us,
            )
            self._inputs[entry.key] = entry
        self._group_checkpoint = self._take_checkpoint()
        if self._store is not None:
            # the previous group's checkpoint can never be restored again
            self._store.release_before(self._group_checkpoint.app_state)
        self._group_log_index = len(self.delivery_log)
        self._emitted = {}
        self._processed_once = False
        self._dirty = True

    def _take_checkpoint(self) -> Checkpoint:
        if self._store is not None:
            return Checkpoint(
                app_state=self._store.snapshot(),
                shim_state=(self._origin_seq, self._sub_seq, None),
                state_bytes=0,
                taken_at_us=self.sim.now,
            )
        app_state = self.daemon.snapshot() if self.daemon is not None else None
        shim_state = (self._origin_seq, self._sub_seq, self.timers.snapshot())
        return Checkpoint(
            app_state=app_state,
            shim_state=shim_state,
            state_bytes=0,
            taken_at_us=self.sim.now,
        )

    def rebase_checkpoint(self) -> None:
        """Re-anchor the group checkpoint at the *current* state.

        Used by the interactive debugger after a state modification: the
        troubleshooter's edit becomes part of the baseline instead of
        being wiped by the next re-execution.
        """
        self._group_checkpoint = self._take_checkpoint()
        if self._store is not None:
            self._store.release_before(self._group_checkpoint.app_state)
        self._group_log_index = len(self.delivery_log)
        self._emitted = {}

    # ------------------------------------------------------------------
    # transmission phase
    # ------------------------------------------------------------------
    def _do_transmission(self, payload: Dict[str, Any]) -> None:
        count = 0
        for dst in sorted(self._unsend_buffer):
            uids = sorted(self._unsend_buffer[dst])
            self.node.stats.unsends_sent += 1
            self.transport.send_message(
                Message(
                    src=self.node.node_id,
                    dst=dst,
                    protocol="_unsend",
                    payload=Unsend(uids=tuple(uids)),
                    size_bytes=16 + 8 * len(uids),
                )
            )
            count += 1
        self._unsend_buffer = {}
        for msg in self._send_buffer:
            self.transport.send_message(msg)
            count += 1
        self._send_buffer = []
        self._await_idle(payload, count)

    def _await_idle(self, payload: Dict[str, Any], count: int) -> None:
        """Send the marker once every frame has been acknowledged
        (Section 2.3: "a node sends a marker packet when it has no
        further messages to send")."""
        if self.transport.idle():
            self._marker(payload, count=count)
        else:
            self.sim.schedule(
                self.poll_us,
                self._await_idle,
                payload,
                count,
                label=f"idlepoll:{self.node.node_id}",
            )

    # ------------------------------------------------------------------
    # processing phase
    # ------------------------------------------------------------------
    def _do_processing(self) -> int:
        if not self.active:
            return 0
        if self._processed_once and not self._dirty:
            # nothing re-executed, but traffic queued earlier (e.g. boot
            # sends) still keeps the group open until flushed
            return len(self._send_buffer) + len(self._unsend_buffer)
        count = self._reprocess_group()
        self._processed_once = True
        self._dirty = False
        # The marker must count queued outgoing traffic, not just
        # deliveries: a node whose inputs were ALL retracted re-executes
        # zero events yet still owes unsends -- if the coordinator closed
        # the group on a (sent=0, processed=0) cycle with those queued,
        # they would never be flushed and the replay would keep messages
        # the production execution retracted.
        return count + len(self._send_buffer) + len(self._unsend_buffer)

    def _reprocess_group(self) -> int:
        assert self._group_checkpoint is not None
        if self._store is not None:
            self._store.restore(self._group_checkpoint.app_state)
            self._origin_seq, self._sub_seq, _ = self._group_checkpoint.shim_state
        else:
            if self.daemon is not None:
                self.daemon.restore(self._group_checkpoint.app_state)
            self._origin_seq, self._sub_seq, timer_snap = self._group_checkpoint.shim_state
            self.timers.restore(timer_snap)
        del self.delivery_log[self._group_log_index:]

        self._new_outputs = []
        self._collecting = True
        count = 0
        pending = deque(sorted(self._inputs.values(), key=lambda e: e.key))
        try:
            while True:
                due = self.timers.next_due(self.vt)
                timer_entry = None
                if due is not None:
                    expiry, seq, timer_key = due
                    timer_entry = HistoryEntry(
                        kind="timer",
                        key=self.ordering.timer_key(expiry, self.node.node_id, seq),
                        group=expiry,
                        seq=seq,
                        timer_key=timer_key,
                    )
                next_input = pending[0] if pending else None
                if timer_entry is not None and (
                    next_input is None or timer_entry.key < next_input.key
                ):
                    chosen = timer_entry
                else:
                    if next_input is None:
                        break
                    chosen = pending.popleft()
                self._deliver(chosen)
                count += 1
        finally:
            self._collecting = False
        self._diff_outputs()
        return count

    def _deliver(self, entry: HistoryEntry) -> None:
        self.log_delivery(entry.tag())
        self.node.stats.deliveries += 1
        if entry.kind == "timer":
            self.timers.pop(entry.timer_key)
        self._current_entry = entry
        try:
            if self.daemon is not None:
                if entry.kind == "msg":
                    self.daemon.on_message(entry.msg)
                elif entry.kind == "ext":
                    self.daemon.on_external(entry.event)
                else:
                    self.daemon.on_timer(entry.timer_key)
        finally:
            self._current_entry = None

    def _diff_outputs(self) -> None:
        """Differential retransmission: unsend what is no longer produced,
        send what is new, keep logically-identical outputs untouched."""
        new_map: Dict[OutputId, Message] = {}
        for out_id, msg in self._new_outputs:
            if out_id in new_map:
                raise RuntimeError(f"duplicate output identity {out_id}")
            new_map[out_id] = msg
        result: Dict[OutputId, int] = {}
        for out_id, uid in sorted(self._emitted.items()):
            if out_id not in new_map:
                dst = out_id[5]  # (sender, origin, seq, sub, group, dst, ...)
                self._unsend_buffer.setdefault(dst, []).append(uid)
        # walk the emission-ordered list, not new_map: uid allocation
        # order must follow the daemon's deterministic output order
        for out_id, msg in self._new_outputs:
            if out_id in self._emitted:
                result[out_id] = self._emitted[out_id]
            else:
                msg.uid = self.node.network.next_uid()
                self._send_buffer.append(msg)
                result[out_id] = msg.uid
        self._emitted = result
        self._new_outputs = []

    # ------------------------------------------------------------------
    # receive path (from the reliable transport)
    # ------------------------------------------------------------------
    def _on_logical(self, msg: Message) -> None:
        if msg.protocol == "_unsend":
            self.node.stats.unsends_received += 1
            unsend: Unsend = msg.payload
            for uid in unsend.uids:
                self._remove_uid(uid)
            return
        if msg.uid in self._annihilate:
            self._annihilate.discard(msg.uid)
            self.node.stats.annihilated += 1
            return
        if msg.annotation is None:
            raise ValueError(f"unannotated message in debugging network: {msg.describe()}")
        group = msg.annotation.group
        if group == self.vt:
            self._add_input_msg(msg)
        elif group > self.vt:
            self._future.append(msg)
        else:
            raise RuntimeError(
                f"stale message for group {group} arrived during group "
                f"{self.vt} at {self.node.node_id}: {msg.describe()}"
            )

    def _remove_uid(self, uid: int) -> None:
        key = self._uid_to_key.pop(uid, None)
        if key is not None:
            entry = self._inputs.get(key)
            if entry is not None and entry.msg is not None and entry.msg.uid == uid:
                del self._inputs[key]
                self._dirty = True
                return
        for i, msg in enumerate(self._future):
            if msg.uid == uid:
                del self._future[i]
                return
        self._annihilate.add(uid)

    def _add_input_msg(self, msg: Message) -> None:
        assert msg.annotation is not None
        key = self.ordering.key(msg.annotation)
        old = self._inputs.get(key)
        if old is not None and old.msg is not None:
            # two copies of one logical message: keep the newer (higher
            # uid); the reliable per-peer FIFO makes this unreachable in
            # practice, but the shim-side race taught us to be explicit
            if msg.uid <= old.msg.uid:
                return
            self._uid_to_key.pop(old.msg.uid, None)
        entry = HistoryEntry(kind="msg", key=key, msg=msg, group=msg.annotation.group)
        self._inputs[key] = entry
        self._uid_to_key[msg.uid] = key
        self._dirty = True

    # ------------------------------------------------------------------
    # debugger introspection
    # ------------------------------------------------------------------
    def pending_inputs(self) -> List[HistoryEntry]:
        """Current group's known inputs, in ordering-function order."""
        return sorted(self._inputs.values(), key=lambda e: e.key)

    def group_deliveries(self) -> List[str]:
        """Delivery tags produced in the current group so far."""
        return list(self.delivery_log[self._group_log_index:])


class LockstepCoordinator:
    """The runtime coordinator of Section 2.3.

    Drives a debugging network through group replay.  All coordination
    travels with realistic latency (shortest-path delay from the
    coordinator node) and is counted as control traffic, which is what
    the step response time of Figures 6c/8c measures.
    """

    def __init__(
        self,
        network: Network,
        recording: Recording,
        ordering: Optional[OrderingFunction] = None,
        coordinator_node: Optional[str] = None,
    ) -> None:
        self.network = network
        self.recording = recording
        self.ordering = ordering if ordering is not None else OptimizedOrdering()
        ids = network.node_ids()
        if not ids:
            raise ValueError("cannot coordinate an empty network")
        self.coordinator_node = coordinator_node if coordinator_node else ids[0]
        self._delays = network.delay_matrix().get(self.coordinator_node, {})
        self.stacks: Dict[str, LockstepStack] = {}
        self._by_group = recording.by_group()
        self.horizon = recording.horizon_group
        self.current_group = -1
        self.next_group = 0
        self.in_group = False
        self.cycle = 0
        self.finished = False
        self.steps_executed = 0
        self._expected: Set[str] = set()
        self._counts: Dict[str, int] = {}
        self._phase_done = False
        #: Callables ``coordinator -> bool`` evaluated after every cycle;
        #: any True pauses execution (see :mod:`repro.core.debugger`).
        self.break_predicates: List[Callable[["LockstepCoordinator"], bool]] = []
        self.paused_on: Optional[Callable] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, daemon_factory, **stack_kwargs) -> None:
        """Instantiate lockstep stacks + daemons on every node."""

        def factory(node: Node) -> LockstepStack:
            stack = LockstepStack(
                node, ordering=self.ordering, recording=self.recording, **stack_kwargs
            )
            stack.coordinator = self
            self.stacks[node.node_id] = stack
            return stack

        self.network.attach(factory, daemon_factory)

    def start(self) -> None:
        """Boot all daemons (their boot traffic enters group 0)."""
        self.network.start()

    def delay_to(self, node_id: str) -> int:
        return self._delays.get(node_id, 0)

    # ------------------------------------------------------------------
    # barrier machinery
    # ------------------------------------------------------------------
    def _broadcast(self, payloads: Dict[str, Dict[str, Any]]) -> None:
        self._expected = set(payloads)
        self._counts = {}
        self._phase_done = not self._expected
        for node_id, payload in sorted(payloads.items()):
            self.network.sim.schedule(
                self.delay_to(node_id),
                self._deliver_ctrl,
                node_id,
                payload,
                label=f"barrier:{node_id}",
            )

    def _deliver_ctrl(self, node_id: str, payload: Dict[str, Any]) -> None:
        self.network.nodes[node_id].stats.control_packets_received += 1
        self.stacks[node_id]._on_coordinator(payload)

    def on_marker(self, node_id: str, phase: str, count: int) -> None:
        self._counts[node_id] = count
        if set(self._counts) >= self._expected:
            self._phase_done = True

    def _run_until_phase_done(self) -> None:
        guard = 0
        while not self._phase_done:
            if not self.network.sim.step():
                raise RuntimeError("lockstep deadlock: no events but phase incomplete")
            guard += 1
            if guard > 5_000_000:  # pragma: no cover - safety bound
                raise RuntimeError("lockstep livelock suspected")

    def _active_nodes(self) -> List[str]:
        return [nid for nid, stack in sorted(self.stacks.items()) if stack.active]

    # ------------------------------------------------------------------
    # group replay
    # ------------------------------------------------------------------
    def _start_group(self) -> None:
        group = self.next_group
        self.next_group += 1
        self.current_group = group
        self.cycle = 0
        events = self._by_group.get(group, [])
        self._apply_topology_events([e for e in events if e.node == NET_EVENTS_NODE])
        per_node: Dict[str, List[RecordedEvent]] = {}
        for ev in events:
            if ev.node != NET_EVENTS_NODE:
                per_node.setdefault(ev.node, []).append(ev)
        payloads = {
            nid: {"type": "group", "group": group, "events": per_node.get(nid, [])}
            for nid in self._active_nodes()
        }
        self._broadcast(payloads)
        self._run_until_phase_done()
        self.in_group = True

    def _apply_topology_events(self, events: List[RecordedEvent]) -> None:
        for ev in events:
            if ev.kind in (LINK_DOWN, LINK_UP):
                pair = frozenset(ev.target)
                for stack in self.stacks.values():
                    if ev.kind == LINK_DOWN:
                        stack.logical_down_links.add(pair)
                    else:
                        stack.logical_down_links.discard(pair)
            elif ev.kind == NODE_DOWN:
                self.stacks[ev.target].active = False
            elif ev.kind == NODE_UP:
                stack = self.stacks[ev.target]
                stack.active = True
                stack.start()

    def advance_cycle(self) -> Tuple[int, int]:
        """Run one transmission+processing cycle (one debugger "step").

        Returns (messages sent, events processed) network-wide.  When both
        are zero the current group has quiesced and the next call starts
        the next group.
        """
        if self.finished:
            return (0, 0)
        if not self.in_group:
            self._start_group()
        start_us = self.network.sim.now
        active = self._active_nodes()
        self._broadcast({nid: {"type": "transmit", "cycle": self.cycle} for nid in active})
        self._run_until_phase_done()
        sent = sum(self._counts.values())
        self._broadcast({nid: {"type": "process", "cycle": self.cycle} for nid in active})
        self._run_until_phase_done()
        processed = sum(self._counts.values())
        self.cycle += 1
        self.steps_executed += 1
        self.network.run_stats.step_times_us.append(self.network.sim.now - start_us)
        if sent == 0 and processed == 0:
            self.in_group = False
            if self.next_group > self.horizon:
                self.finished = True
        self.paused_on = None
        for predicate in self.break_predicates:
            if predicate(self):
                self.paused_on = predicate
                break
        return sent, processed

    def run_group(self, max_cycles: int = 100_000) -> int:
        """Replay until the current group quiesces.  Returns cycles run."""
        ran = 0
        target = self.next_group if not self.in_group else self.current_group
        while not self.finished and ran < max_cycles:
            self.advance_cycle()
            ran += 1
            if self.paused_on is not None:
                break
            if not self.in_group and self.current_group >= target:
                break
        return ran

    def run_all(self, max_cycles: int = 10_000_000) -> int:
        """Replay the entire recording (or until a breakpoint pauses us)."""
        ran = 0
        while not self.finished and ran < max_cycles:
            self.advance_cycle()
            ran += 1
            if self.paused_on is not None:
                break
        return ran

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def group_deliveries(self) -> Dict[str, List[str]]:
        return {nid: stack.group_deliveries() for nid, stack in sorted(self.stacks.items())}
