"""Global Virtual Time (GVT) tracking -- Lemma 2 made observable.

The termination proof (Theorem 2) leans on Jefferson's lemma: *GVT, the
earliest point to which any node can ever again roll back, eventually
increases*.  In Time-Warp terms GVT is the floor below which history is
final; DEFINED-RB's sliding window (Section 2.2) is its practical
implementation -- entries older than the window can never be rolled back
and are pruned.

:class:`GvtTracker` samples a per-network GVT lower bound during a run:
for each node, the earliest surviving (un-pruned) history entry is the
earliest possible rollback target; the network GVT bound is the minimum
over nodes.  The bound is monotone nondecreasing -- pruning only moves
windows forward -- so a recorded series makes Lemma 2 checkable: the
termination tests assert the series advances and ends within one window
of the clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.shim import DefinedShim
from repro.simnet.network import Network


@dataclass
class GvtSample:
    """One observation of the network's rollback floor."""

    at_us: int
    gvt_us: int
    #: Node currently holding the floor (owning the oldest live entry).
    floor_node: Optional[str]
    #: Total live (rollback-able) history entries across the network.
    live_entries: int


@dataclass
class GvtTracker:
    """Periodic GVT sampling for a DEFINED-RB network."""

    network: Network
    samples: List[GvtSample] = field(default_factory=list)
    _handle: object = None
    _interval_us: int = 0

    def sample(self) -> GvtSample:
        """Take one sample now."""
        floor: Optional[Tuple[int, str]] = None
        live = 0
        for node_id in self.network.node_ids():
            stack = self.network.nodes[node_id].stack
            if not isinstance(stack, DefinedShim):
                continue
            live += len(stack.history)
            if len(stack.history):
                oldest = stack.history[0].delivered_at_us
                if floor is None or oldest < floor[0]:
                    floor = (oldest, node_id)
        now = self.network.sim.now
        sample = GvtSample(
            at_us=now,
            gvt_us=floor[0] if floor is not None else now,
            floor_node=floor[1] if floor is not None else None,
            live_entries=live,
        )
        self.samples.append(sample)
        return sample

    # ------------------------------------------------------------------
    # periodic operation
    # ------------------------------------------------------------------
    def start(self, interval_us: int) -> None:
        """Sample every ``interval_us`` until :meth:`stop`."""
        if interval_us <= 0:
            raise ValueError("sampling interval must be positive")
        self._interval_us = interval_us
        self._tick()

    def _tick(self) -> None:
        if self._interval_us <= 0:
            return
        self.sample()
        self._handle = self.network.sim.schedule(
            self._interval_us, self._tick, label="gvt-sample"
        )

    def stop(self) -> None:
        self._interval_us = 0
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # ------------------------------------------------------------------
    # Lemma 2 checks
    # ------------------------------------------------------------------
    def gvt_series(self) -> List[int]:
        return [s.gvt_us for s in self.samples]

    def is_monotone(self) -> bool:
        series = self.gvt_series()
        return all(b >= a for a, b in zip(series, series[1:]))

    def advanced(self) -> bool:
        """True when GVT made progress over the sampled run."""
        series = self.gvt_series()
        return len(series) >= 2 and series[-1] > series[0]

    def lag_us(self) -> int:
        """Distance between the clock and the rollback floor at the last
        sample -- bounded by the history window when Lemma 2 holds."""
        if not self.samples:
            raise ValueError("no samples taken")
        last = self.samples[-1]
        return last.at_us - last.gvt_us
