"""Rollback planning: the pure logic under DEFINED-RB's rollback engine.

Separated from the shim so the invariants can be property-tested in
isolation: divergence detection (where must we roll back to?), anti-message
collection (what must we unsend, to whom?), and replay planning (which
inputs are re-delivered, in what order?).

The shim (:mod:`repro.core.shim`) owns the stateful parts -- restoring
checkpoints, transmitting unsends, and re-driving the daemon.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.core.history import HistoryEntry
from repro.core.ordering import OrderKey


def find_rollback_index(keys: Sequence[OrderKey], new_key: OrderKey) -> int:
    """Index of the first delivered entry that must be rolled back.

    ``keys`` is the delivered window in (sorted) delivery order.  If the
    new key sorts after everything delivered, the speculation holds and
    ``len(keys)`` is returned (nothing to roll back).  Otherwise the node
    must roll back to the point just before the first entry ordered after
    the new arrival -- the paper's Figure 2 example.
    """
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < new_key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def collect_unsends(rolled: Iterable[HistoryEntry]) -> Dict[str, List[int]]:
    """Anti-message plan: per-neighbor lists of message uids to unsend.

    Every message emitted while processing a rolled-back entry is invalid
    (it was produced from state that no longer exists) and must be rolled
    back at its receiver -- the cascading process of Figure 3.

    The per-neighbor lists come back **canonical** (sorted; uids are
    globally unique so duplicates cannot occur), satisfying
    :class:`~repro.simnet.messages.Unsend`'s constructor contract without
    another canonicalization pass on the rollback hot path.
    """
    plan: Dict[str, List[int]] = {}
    for entry in rolled:
        for uid, dst in entry.outputs:
            plan.setdefault(dst, []).append(uid)
    for uids in plan.values():
        uids.sort()
    return plan


def plan_replay(
    rolled: Sequence[HistoryEntry],
    new_entries: Sequence[HistoryEntry],
    removed_uids: Set[int],
) -> List[HistoryEntry]:
    """Inputs to re-deliver after a rollback, in ordering-function order.

    * rolled-back *messages* are replayed unless an anti-message removed
      them (``removed_uids``);
    * rolled-back *external events* are always replayed (the world
      happened; only our processing of it is being redone);
    * rolled-back *timer* firings are NOT replay inputs -- restoring the
      checkpoint re-arms the timer table, and the shim's replay loop
      re-fires due timers interleaved by their keys;
    * ``new_entries`` (the out-of-order arrival that triggered the
      rollback, if it was a message or external event) are merged in.

    Entries are reset (checkpoints/outputs cleared) and returned sorted.
    """
    inputs: List[HistoryEntry] = []
    for entry in rolled:
        if entry.kind == "timer":
            continue
        if entry.kind == "msg" and entry.msg is not None and entry.msg.uid in removed_uids:
            continue
        inputs.append(entry)
    inputs.extend(new_entries)
    for entry in inputs:
        entry.reset_for_replay()
    inputs.sort(key=lambda e: e.key)
    for earlier, later in zip(inputs, inputs[1:]):
        if earlier.key == later.key:
            raise ValueError(f"replay plan contains duplicate key {earlier.key}")
    return inputs


def affected_indices(
    entries: Sequence[HistoryEntry], uids: Set[int]
) -> Tuple[int, ...]:
    """Indices of delivered entries whose message uid is being unsent."""
    return tuple(
        i
        for i, entry in enumerate(entries)
        if entry.kind == "msg" and entry.msg is not None and entry.msg.uid in uids
    )
