"""Virtual time and deterministic timers (Section 3, "Dealing with timers").

Control-plane software leans heavily on timers (hello intervals, route
expiry, retransmits), and real timers fire off the wall clock -- a source
of nondeterminism.  DEFINED runs daemons in *virtual time*: a counter that
advances by one unit on every beacon (250 ms apart by default), so the
perceived rate matches the wall clock while staying exactly reproducible.

:class:`TimerTable` is the per-node timer state.  It is part of the shim's
checkpointed state: rolling a node back re-arms the timers exactly as they
were, and the replay loop re-fires due timers interleaved with messages by
their deterministic ordering keys.

A timer armed at virtual time *v* for *k* units expires at ``v + max(1, k)``
and fires when the beacon opening that group is observed.  Expiry order
within a group is by creation sequence, which is deterministic because the
daemons themselves execute deterministically under DEFINED.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

TimerSnapshot = Tuple[Tuple[Tuple[str, Tuple[int, int]], ...], int]


class TimerTable:
    """Named virtual-time timers with snapshot/restore support."""

    def __init__(self) -> None:
        self._timers: Dict[str, Tuple[int, int]] = {}  # key -> (expiry_vt, seq)
        self._seq = 0

    def set(self, key: str, current_vt: int, delay_units: int) -> int:
        """Arm (or re-arm) ``key``.  Returns the expiry virtual time.

        Delays are clamped to at least one unit: virtual time has beacon
        granularity, so a zero-delay timer still fires at the next beacon.
        Re-arming replaces the expiry but assigns a fresh creation
        sequence number (the firing order within a group is creation
        order, matching a real event loop's re-insertion semantics).
        """
        expiry = current_vt + max(1, delay_units)
        self._timers[key] = (expiry, self._seq)
        self._seq += 1
        return expiry

    def cancel(self, key: str) -> bool:
        """Disarm ``key``.  Returns True if it was armed."""
        return self._timers.pop(key, None) is not None

    def pop(self, key: str) -> None:
        self._timers.pop(key, None)

    def is_armed(self, key: str) -> bool:
        return key in self._timers

    def expiry_of(self, key: str) -> Optional[int]:
        entry = self._timers.get(key)
        return entry[0] if entry else None

    def next_due(self, vt_now: int) -> Optional[Tuple[int, int, str]]:
        """The earliest timer with ``expiry <= vt_now``.

        Returns ``(expiry_vt, seq, key)`` or ``None``.  Ties on expiry are
        broken by creation sequence, then key -- all deterministic.
        """
        best: Optional[Tuple[int, int, str]] = None
        for key, (expiry, seq) in self._timers.items():
            if expiry <= vt_now:
                cand = (expiry, seq, key)
                if best is None or cand < best:
                    best = cand
        return best

    def due_count(self, vt_now: int) -> int:
        return sum(1 for expiry, _ in self._timers.values() if expiry <= vt_now)

    def __len__(self) -> int:
        return len(self._timers)

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def snapshot(self) -> TimerSnapshot:
        """An immutable snapshot of the table (cheap: tuples only)."""
        return (tuple(sorted(self._timers.items())), self._seq)

    def restore(self, snap: TimerSnapshot) -> None:
        items, seq = snap
        self._timers = dict(items)
        self._seq = seq
