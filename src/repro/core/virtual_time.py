"""Virtual time and deterministic timers (Section 3, "Dealing with timers").

Control-plane software leans heavily on timers (hello intervals, route
expiry, retransmits), and real timers fire off the wall clock -- a source
of nondeterminism.  DEFINED runs daemons in *virtual time*: a counter that
advances by one unit on every beacon (250 ms apart by default), so the
perceived rate matches the wall clock while staying exactly reproducible.

:class:`TimerTable` is the per-node timer state.  It is part of the shim's
checkpointed state: rolling a node back re-arms the timers exactly as they
were, and the replay loop re-fires due timers interleaved with messages by
their deterministic ordering keys.

A timer armed at virtual time *v* for *k* units expires at ``v + max(1, k)``
and fires when the beacon opening that group is observed.  Expiry order
within a group is by creation sequence, which is deterministic because the
daemons themselves execute deterministically under DEFINED.

The table's backing state lives in :class:`~repro.core.statestore.Namespace`
sub-stores, so a store-backed shim checkpoints timers through the same
copy-on-write versioning as the daemon state -- no per-snapshot
``tuple(sorted(...))`` materialization.  The due-order view (sorted by
``(expiry, seq, key)``) is maintained incrementally by ``set``/``cancel``/
``pop`` and rebuilt lazily after a store-level restore rewinds the
namespace underneath it.  Standalone tables (no store) keep the classic
``snapshot()``/``restore()`` tuple API for tests and legacy daemons.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Optional, Tuple

from repro.core.statestore import Namespace, StateStore

TimerSnapshot = Tuple[Tuple[Tuple[str, Tuple[int, int]], ...], int]


class TimerTable:
    """Named virtual-time timers with snapshot/restore support.

    ``store`` binds the table's state into a :class:`StateStore` (the
    shim's unified checkpoint store); construction wipes any previous
    contents of the backing namespaces (a fresh table on each boot).
    """

    def __init__(self, store: Optional[StateStore] = None, name: str = "_timers"):
        if store is not None:
            self._timers = store.namespace(name)
            self._meta = store.namespace(name + ".meta")
            self._timers._wipe()
            self._meta._wipe()
        else:
            self._timers = Namespace(name)
            self._meta = Namespace(name + ".meta")
        self._meta["seq"] = 0
        #: Due-order view: sorted list of (expiry_vt, seq, key), kept in
        #: lockstep with the namespace by the mutators below and rebuilt
        #: lazily when the store rewinds the namespace underneath us.
        self._due: list = []
        self._due_dirty = False
        # the namespaces are dedicated to this table: a reboot replaces
        # the table object, so displace any stale listener as well
        self._timers._listeners = [self._mark_dirty]
        self._meta._listeners = [self._mark_dirty]

    def _mark_dirty(self) -> None:
        self._due_dirty = True

    def _due_view(self) -> list:
        if self._due_dirty:
            self._due = sorted(
                (expiry, seq, key) for key, (expiry, seq) in self._timers.items()
            )
            self._due_dirty = False
        return self._due

    def set(self, key: str, current_vt: int, delay_units: int) -> int:
        """Arm (or re-arm) ``key``.  Returns the expiry virtual time.

        Delays are clamped to at least one unit: virtual time has beacon
        granularity, so a zero-delay timer still fires at the next beacon.
        Re-arming replaces the expiry but assigns a fresh creation
        sequence number (the firing order within a group is creation
        order, matching a real event loop's re-insertion semantics).
        """
        due = self._due_view()  # settle the view against pre-write state
        expiry = current_vt + max(1, delay_units)
        seq = self._meta["seq"]
        self._meta["seq"] = seq + 1
        old = self._timers.get(key)
        self._timers[key] = (expiry, seq)
        if old is not None:
            del due[bisect_left(due, (old[0], old[1], key))]
        insort(due, (expiry, seq, key))
        return expiry

    def _drop(self, key: str) -> bool:
        due = self._due_view()  # settle the view against pre-write state
        old = self._timers.pop(key, None)
        if old is None:
            return False
        del due[bisect_left(due, (old[0], old[1], key))]
        return True

    def cancel(self, key: str) -> bool:
        """Disarm ``key``.  Returns True if it was armed."""
        return self._drop(key)

    def pop(self, key: str) -> None:
        self._drop(key)

    def is_armed(self, key: str) -> bool:
        return key in self._timers

    def expiry_of(self, key: str) -> Optional[int]:
        entry = self._timers.get(key)
        return entry[0] if entry else None

    def next_due(self, vt_now: int) -> Optional[Tuple[int, int, str]]:
        """The earliest timer with ``expiry <= vt_now``.

        Returns ``(expiry_vt, seq, key)`` or ``None``.  Ties on expiry are
        broken by creation sequence, then key -- all deterministic.
        """
        due = self._due_view()
        if due and due[0][0] <= vt_now:
            return due[0]
        return None

    def due_count(self, vt_now: int) -> int:
        due = self._due_view()
        return bisect_left(due, (vt_now + 1,))

    def __len__(self) -> int:
        return len(self._timers)

    # ------------------------------------------------------------------
    # checkpoint support (standalone / legacy path; store-backed tables
    # are versioned wholesale by their StateStore)
    # ------------------------------------------------------------------
    def snapshot(self) -> TimerSnapshot:
        """An immutable snapshot of the table (cheap: the namespace's
        sorted view is already maintained, nothing is re-sorted)."""
        return (tuple(self._timers.items()), self._meta["seq"])

    def restore(self, snap: TimerSnapshot) -> None:
        items, seq = snap
        self._timers.replace(dict(items))
        self._meta["seq"] = seq
        self._due_dirty = True
