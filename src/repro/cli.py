"""Command-line interface: run productions, replay recordings, debug.

Usage (after ``pip install -e .``)::

    python -m repro.cli production --topology ebone --events 6 \
        --mode defined --seed 1 --recording-out /tmp/run.recording.json
    python -m repro.cli replay --topology ebone \
        --recording /tmp/run.recording.json
    python -m repro.cli sweep --seeds 1,2,3 --workers 4
    python -m repro.cli sweep --scenarios flap_storm@40 --repeats 3 \
        --workers 4 --report-out /tmp/grid.json
    python -m repro.cli sweep --scenarios flap-storm,partition --sizes 20,40
    python -m repro.cli sweep --compose flap_storm+partition \
        --boundary-jitter-us 1 --seeds 8
    python -m repro.cli fuzz --scenarios flap-storm,partition \
        --seeds 1,2 --jitters-us 0,1 --report-out /tmp/fuzz.json
    python -m repro.cli envelope --scenarios flap-storm@20 \
        --jitters 0,50,300 --windows auto --suggest
    python -m repro.cli scale --sizes 20,40 --events 4
    python -m repro.cli bench --json BENCH_5.json
    python -m repro.cli bench --baseline BENCH_5.json --tolerance 0.25
    python -m repro.cli casestudy bgp
    python -m repro.cli casestudy rip

The CLI covers the common operational loops (record in production, ship
the recording, replay and step at the debugging site); programmatic use
goes through :mod:`repro.harness`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.metrics import Cdf, mean
from repro.analysis.report import ascii_cdf, render_series, render_table
from repro.core.recorder import Recording
from repro.harness import run_ls_replay, run_production
from repro.simnet.engine import SECOND
from repro.topology import (
    TopologyGraph,
    barabasi_albert,
    rocketfuel_topology,
    waxman,
)
from repro.topology.rocketfuel import POP_COUNTS
from repro.topology.traces import compressed_trace


def load_topology(name: str, size: int, seed: int) -> TopologyGraph:
    if name in POP_COUNTS:
        return rocketfuel_topology(name)
    if name == "waxman":
        return waxman(size, seed=seed)
    if name == "ba":
        return barabasi_albert(size, seed=seed)
    raise SystemExit(
        f"unknown topology {name!r}: expected one of "
        f"{sorted(POP_COUNTS) + ['waxman', 'ba']}"
    )


def cmd_production(args: argparse.Namespace) -> int:
    graph = load_topology(args.topology, args.size, args.topology_seed)
    trace = compressed_trace(
        graph, n_events=args.events, gap_us=args.gap_s * SECOND,
        start_us=4_097_000, seed=args.seed,
    )
    print(f"topology {graph.name}: {graph.node_count()} nodes, "
          f"{graph.edge_count()} links; {len(trace)} external events")
    result = run_production(
        graph, trace, mode=args.mode, seed=args.seed,
        ordering=args.ordering, strategy=args.strategy,
        snapshots=args.snapshots,
    )
    rows = [
        ["fingerprint", result.fingerprint[:24] + "..."],
        ["events converged", len(result.convergence_times_us)],
        ["mean convergence (s)", mean(result.convergence_times_us) / 1e6],
        ["rollbacks", result.rollbacks],
        ["late deliveries", result.late_deliveries],
        ["wall time (s)", result.wall_seconds],
    ]
    if result.recording is not None:
        rows.append(["recording bytes", result.recording.size_bytes()])
    print(render_table(f"production run ({args.mode})", ["metric", "value"], rows))
    if result.packets_per_node_per_event:
        print()
        print(ascii_cdf(
            "control packets per node per event",
            {args.mode: Cdf.of(result.packets_per_node_per_event)},
            unit="pkts",
        ))
    if args.recording_out:
        if result.recording is None:
            raise SystemExit("only --mode defined produces a recording")
        result.recording.save(args.recording_out)
        print(f"\nrecording written to {args.recording_out}")
    if args.bundle_out:
        from repro.artifact import RunBundle

        bundle = RunBundle.from_production(result, context={
            "topology": args.topology, "size": args.size,
            "topology_seed": args.topology_seed, "events": args.events,
            "gap_s": args.gap_s, "mode": args.mode, "seed": args.seed,
            "ordering": args.ordering,
        })
        path = bundle.save(args.bundle_out)
        print(f"\nrun bundle written to {path} (sha256 {bundle.sha256[:12]})")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    # the debugging network must model the same topology the production
    # network had (the recording's drop set and estimates refer to it)
    graph = load_topology(args.topology, args.size, args.topology_seed)
    recording = Recording.load(args.recording)
    print(f"replaying {len(recording.events)} recorded events "
          f"({recording.horizon_group + 1} groups) on {graph.name}")
    result = run_ls_replay(graph, recording, seed=args.seed)
    print(render_table(
        "lockstep replay",
        ["metric", "value"],
        [
            ["fingerprint", result.fingerprint[:24] + "..."],
            ["lockstep cycles", result.cycles],
            ["mean step response (s)", mean(result.step_times_us) / 1e6],
            ["max step response (s)", max(result.step_times_us) / 1e6],
            ["wall time (s)", result.wall_seconds],
        ],
    ))
    if args.bundle_out:
        from repro.artifact import RunBundle

        bundle = RunBundle.from_replay(result, context={
            "topology": args.topology, "size": args.size,
            "topology_seed": args.topology_seed, "seed": args.seed,
            "recording": args.recording,
        })
        path = bundle.save(args.bundle_out)
        print(f"\nrun bundle written to {path} (sha256 {bundle.sha256[:12]})")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.artifact import RunBundle
    from repro.diff import diff_bundles, render_divergence

    a = RunBundle.load(args.a)
    b = RunBundle.load(args.b)
    for label, path, bundle in (("A", args.a, a), ("B", args.b, b)):
        print(f"{label}: {path}  role={bundle.role}  "
              f"sha256={bundle.sha256[:12]}  "
              f"fingerprint={bundle.fingerprint[:24]}...")
    print()
    divergence = diff_bundles(a, b)
    print(render_divergence(divergence, a_label="A", b_label="B"))
    if args.json_out:
        import json

        with open(args.json_out, "w") as fh:
            json.dump(
                divergence.to_dict() if divergence is not None else None,
                fh, indent=2,
            )
        print(f"\ndivergence written to {args.json_out}")
    return 0 if divergence is None else 1


def _parse_int_list(text: str, flag: str) -> List[int]:
    try:
        return [int(s) for s in text.split(",")]
    except ValueError:
        raise SystemExit(f"{flag} must be comma-separated integers, got {text!r}")


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import SweepRunner, get_scenario, scenario_names

    if args.list:
        rows = [
            [name, ",".join(get_scenario(name).modes), get_scenario(name).description]
            for name in scenario_names()
        ]
        print(render_table("registered scenarios", ["name", "modes", "description"], rows))
        return 0
    # --scenarios picks registered names; --compose adds on-the-fly
    # compositions ("a+b"); with --compose alone, only the compositions
    # run (an explicit --scenarios all still sweeps the whole catalogue
    # alongside them).  --sizes re-scales every selected scenario onto
    # N-node topologies (the "@N" dynamic variant); --boundary-jitter-us
    # N wraps every selected scenario in the boundary-jitter fuzzer (the
    # "~jNus" dynamic variant).  The default grid (and "all") excludes
    # the registered @N size variants -- 80-node cells run for minutes,
    # so sizes are an explicit opt-in via "name@N" or --sizes.
    names: List[str] = []
    file_specs = [
        spec.strip()
        for arg in (args.scenario_file or [])
        for spec in arg.split(",")
        if spec.strip()
    ]
    if args.scenarios == "all":
        names = scenario_names(include_sized=False)
    elif args.scenarios is None and not args.compose and not file_specs:
        names = scenario_names(include_sized=False)
    elif args.scenarios:
        names = args.scenarios.split(",")
    if args.compose:
        names.extend(spec.strip() for spec in args.compose.split(","))
    # chaos DSL documents join the grid by path; they take the same @N /
    # ~jNus suffixes as registered names and pass through
    # canonical_scenario_name unchanged
    names.extend(file_specs)
    # a compose spec may duplicate a registered composition (or another
    # spec, or an underscore alias of either): one canonical name, one
    # set of grid cells
    from repro.sweep import canonical_scenario_name

    names = list(dict.fromkeys(canonical_scenario_name(n) for n in names))
    if args.sizes:
        from repro.sweep import sized_spec

        sizes = _parse_int_list(args.sizes, "--sizes")
        try:
            names = [sized_spec(name, n) for name in names for n in sizes]
        except ValueError as exc:
            raise SystemExit(exc.args[0] if exc.args else str(exc))
    if args.boundary_jitter_us is not None:
        if args.boundary_jitter_us < 0:
            raise SystemExit("--boundary-jitter-us cannot be negative")
        from repro.sweep import _parse_fuzz_name

        # re-jitter already-jittered names at the requested magnitude and
        # dedupe: with --scenarios all, 'flap-storm' and the registered
        # 'flap-storm~j1us' must not become the same grid cell twice
        names = list(dict.fromkeys(
            f"{_parse_fuzz_name(name)[0]}~j{args.boundary_jitter_us}us"
            for name in names
        ))
    seeds = _parse_int_list(args.seeds, "--seeds")
    try:
        runner = SweepRunner(
            scenarios=names,
            seeds=seeds,
            modes=args.modes.split(",") if args.modes else None,
            workers=args.workers,
            repeats=args.repeats,
            transport=args.transport,
            snapshots=args.snapshots,
            artifact_dir=args.artifact_out,
            cell_timeout_s=args.cell_timeout,
            retries=args.retries,
            journal_dir=args.journal,
            resume_dir=args.resume,
        )
    except (KeyError, ValueError) as exc:
        raise SystemExit(exc.args[0] if exc.args else str(exc))
    print(
        f"sweeping {len(runner.grid())} cells "
        f"({len(names)} scenario(s) x {len(runner.seeds)} seed(s) "
        f"x {args.repeats} jitter-seed repeat(s)) "
        f"on {args.workers} worker(s)"
    )

    def progress(cell) -> None:
        status = "ERROR " + cell.error if cell.error else "ok"
        print(f"  {cell.scenario}/{cell.mode} seed={cell.seed}"
              f" repeat={cell.repeat}: {status}")

    report = runner.run(progress=progress if args.verbose else None)
    print(report.render())
    if args.report_out:
        import json

        with open(args.report_out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"\ndivergence report written to {args.report_out}")
    return 0 if report.ok() else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from repro.sweep import FuzzRunner

    scenarios = (
        None if args.scenarios == "all" else
        [s.strip() for s in args.scenarios.split(",")]
    )
    try:
        runner = FuzzRunner(
            scenarios=scenarios,
            seeds=_parse_int_list(args.seeds, "--seeds"),
            jitters_us=_parse_int_list(args.jitters_us, "--jitters-us"),
            mode=args.mode,
            workers=args.workers,
            minimize=not args.no_minimize,
        )
    except (KeyError, ValueError) as exc:
        raise SystemExit(exc.args[0] if exc.args else str(exc))
    print(
        f"fuzzing {len(runner.base_scenarios)} scenario(s) x "
        f"{len(runner.seeds)} seed(s) x jitters {list(runner.jitters_us)}us "
        f"in {args.mode} mode on {args.workers} worker(s)"
    )

    def progress(cell) -> None:
        status = "ERROR " + cell.error if cell.error else "ok"
        print(f"  {cell.scenario} seed={cell.seed}: {status}")

    report = runner.run(progress=progress if args.verbose else None)
    print(report.render())
    if args.report_out:
        with open(args.report_out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"\ndivergence report written to {args.report_out}")
    return 0 if report.ok() else 1


def cmd_envelope(args: argparse.Namespace) -> int:
    import json

    from repro.envelope import EnvelopeRunner

    try:
        jitters_ms = _parse_int_list(args.jitters, "--jitters")
        windows = (
            "auto" if args.windows == "auto"
            else _parse_int_list(args.windows, "--windows")
        )
        runner = EnvelopeRunner(
            scenarios=[s.strip() for s in args.scenarios.split(",")],
            jitters_us=[j * 1_000 for j in jitters_ms],
            windows_us=windows,
            seeds=_parse_int_list(args.seeds, "--seeds"),
            workers=args.workers,
            sizes=(
                _parse_int_list(args.sizes, "--sizes") if args.sizes else None
            ),
            boundary_jitter_us=args.boundary_jitter_us,
            target_quantile=args.target_quantile,
            margin=args.margin,
            artifact_dir=args.artifact_out,
            cell_timeout_s=args.cell_timeout,
            retries=args.retries,
        )
    except (KeyError, ValueError) as exc:
        raise SystemExit(exc.args[0] if exc.args else str(exc))
    print(
        f"mapping the window envelope: {len(runner.scenarios)} scenario(s) "
        f"x jitters {[j // 1_000 for j in runner.jitters_us]}ms "
        f"x windows {list(runner.windows_us)}us "
        f"x {len(runner.seeds)} seed(s) on {args.workers} worker(s)"
        + (" -- then verifying a suggested window" if args.suggest else "")
    )

    def progress(cell) -> None:
        status = "ERROR " + cell.error if cell.error else (
            f"late={cell.headroom.late_count}" if cell.headroom else "ok"
        )
        print(f"  {cell.scenario} jitter={cell.jitter_us}us "
              f"window={cell.window_us}us seed={cell.seed}: {status}")

    report = runner.run(
        suggest=args.suggest,
        progress=progress if args.verbose else None,
    )
    print(report.render())
    if args.report_out:
        with open(args.report_out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"\nenvelope report written to {args.report_out}")
    return 0 if report.ok() else 1


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import main_bench

    return main_bench(
        json_out=args.json,
        baseline_path=args.baseline,
        tolerance=args.tolerance,
        quick=args.quick,
    )


def cmd_scale(args: argparse.Namespace) -> int:
    sizes = [int(s) for s in args.sizes.split(",")]
    packets = {"XORP": [], "DEFINED-RB(OO)": []}
    convergence = {"XORP": [], "DEFINED-RB(OO)": []}
    for n in sizes:
        graph = waxman(n, seed=args.seed)
        trace = compressed_trace(graph, n_events=args.events,
                                 gap_us=8 * SECOND, start_us=4_097_000)
        for label, mode in (("XORP", "vanilla"), ("DEFINED-RB(OO)", "defined")):
            run = run_production(graph, trace, mode=mode, seed=args.seed)
            packets[label].append(mean(run.packets_per_node_per_event))
            convergence[label].append(mean(run.convergence_times_us) / 1e6)
        print(f"  size {n} done")
    print(render_series("control packets per node per event", "nodes", sizes, packets))
    print()
    print(render_series("convergence time (s)", "nodes", sizes, convergence))
    return 0


def cmd_debug(args: argparse.Namespace) -> int:
    from repro.core.debugger import Debugger
    from repro.core.lockstep import LockstepCoordinator
    from repro.core.ordering import make_ordering
    from repro.harness import ospf_daemon_factory
    from repro.repl import DebugConsole
    from repro.topology import to_network

    graph = load_topology(args.topology, args.size, args.topology_seed)
    recording = Recording.load(args.recording)
    net = to_network(graph, seed=args.seed)
    coordinator = LockstepCoordinator(net, recording, ordering=make_ordering("OO"))
    coordinator.attach(ospf_daemon_factory(graph))
    coordinator.start()
    DebugConsole(Debugger(coordinator)).loop()
    return 0


def cmd_casestudy(args: argparse.Namespace) -> int:
    if args.which == "bgp":
        from repro.scenarios import xorp_bgp_scenario

        outcomes = {
            seed: xorp_bgp_scenario(mode="vanilla", decision="buggy",
                                    seed=seed).best_at_r3
            for seed in range(8)
        }
        deterministic = xorp_bgp_scenario(mode="defined", decision="buggy", seed=1)
        print(render_table(
            "XORP 0.4 BGP MED ordering bug",
            ["run", "best path at R3"],
            [[f"vanilla seed {s}", best] for s, best in outcomes.items()]
            + [["DEFINED (any seed)", deterministic.best_at_r3]],
        ))
    else:
        from repro.scenarios import quagga_rip_scenario

        outcomes = {
            seed: quagga_rip_scenario(mode="vanilla", matching="buggy",
                                      config="race", seed=seed).route_via
            for seed in range(8)
        }
        deterministic = quagga_rip_scenario(
            mode="defined", matching="buggy", config="blackhole", seed=1
        )
        print(render_table(
            "Quagga 0.96.5 RIP timer-refresh bug",
            ["run", "route to dst at R1"],
            [[f"vanilla seed {s}", str(via)] for s, via in outcomes.items()]
            + [["DEFINED blackhole config", str(deterministic.route_via)]],
        ))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    return lint_main(args)


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos.cli import cmd_chaos as chaos_main

    return chaos_main(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DEFINED reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    prod = sub.add_parser("production", help="run a production network")
    prod.add_argument("--topology", default="ebone")
    prod.add_argument("--size", type=int, default=30,
                      help="node count for waxman/ba topologies")
    prod.add_argument("--topology-seed", type=int, default=1,
                      help="generator seed for waxman/ba topologies")
    prod.add_argument("--events", type=int, default=6)
    prod.add_argument("--gap-s", type=int, default=8)
    prod.add_argument("--mode", default="defined",
                      choices=["vanilla", "defined", "ddos", "logging"])
    prod.add_argument("--ordering", default="OO", choices=["OO", "RO"])
    prod.add_argument("--strategy", default="MI",
                      choices=["MI", "FK", "TF", "PF", "TM"])
    prod.add_argument("--snapshots", default="cow",
                      choices=["cow", "deepcopy"],
                      help="checkpoint mechanism: copy-on-write store "
                           "versions (default) or the full-deepcopy "
                           "fallback (differential testing)")
    prod.add_argument("--seed", type=int, default=1)
    prod.add_argument("--recording-out", default=None)
    prod.add_argument("--bundle-out", default=None, metavar="PATH",
                      help="write the execution as a content-addressed "
                           "run bundle (a directory gets the default "
                           "<role>-<sha12>.run name)")
    prod.set_defaults(func=cmd_production)

    replay = sub.add_parser("replay", help="replay a recording in lockstep")
    replay.add_argument("--topology", default="ebone")
    replay.add_argument("--size", type=int, default=30)
    replay.add_argument("--topology-seed", type=int, default=1,
                        help="must match the production run's topology")
    replay.add_argument("--recording", required=True)
    replay.add_argument("--seed", type=int, default=1000)
    replay.add_argument("--bundle-out", default=None, metavar="PATH",
                        help="write the replayed execution as a "
                             "content-addressed run bundle")
    replay.set_defaults(func=cmd_replay)

    diff = sub.add_parser(
        "diff",
        help="first-divergence diff of two run bundles (exit 1 when the "
             "executions diverge)",
    )
    diff.add_argument("a", metavar="A.run")
    diff.add_argument("b", metavar="B.run")
    diff.add_argument("--json-out", default=None, metavar="PATH",
                      help="write the divergence verdict as JSON")
    diff.set_defaults(func=cmd_diff)

    sweep = sub.add_parser(
        "sweep",
        help="scenario x seed x mode determinism sweep (parallelizable)",
    )
    sweep.add_argument("--scenarios", default=None,
                       help="comma-separated scenario names (size with "
                            "'name@N', compose with 'a+b', fuzz with "
                            "'a~jNus'), or 'all' (default: every "
                            "registered scenario except @N size variants, "
                            "unless --compose is given alone)")
    sweep.add_argument("--compose", default=None, metavar="A+B[,C+D]",
                       help="compose registered scenarios on the fly and "
                            "sweep the compositions (e.g. flap_storm+partition)")
    sweep.add_argument("--scenario-file", action="append", default=None,
                       metavar="FILE[,FILE]",
                       help="add chaos DSL scenario files (YAML/JSON, "
                            "schema chaos/v1) to the grid; repeatable, "
                            "takes the same @N/~jNus suffixes as names "
                            "(validate first with 'repro chaos validate')")
    sweep.add_argument("--sizes", default=None, metavar="N[,M]",
                       help="re-scale every selected scenario onto N-node "
                            "topologies (the 'name@N' dynamic variant); "
                            "e.g. --sizes 20,40,80")
    sweep.add_argument("--boundary-jitter-us", type=int, default=None,
                       metavar="N",
                       help="wrap every selected scenario in the boundary-"
                            "jitter fuzzer: events snapped to beacon-group "
                            "boundaries +/- N us of seed-derived jitter")
    sweep.add_argument("--seeds", default="1,2,3")
    sweep.add_argument("--modes", default=None,
                       help="override per-scenario modes, e.g. vanilla,defined")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (each cell gets its own simulator)")
    sweep.add_argument("--repeats", type=int, default=1,
                       help="seed-invariance probe: run each cell under N "
                            "jitter seeds; deterministic modes must "
                            "collapse to one fingerprint per cell")
    sweep.add_argument("--transport", default="shm",
                       choices=["shm", "futures"],
                       help="parallel result path: shared-memory streaming "
                            "(default) or one pickled future per cell")
    sweep.add_argument("--snapshots", default=None,
                       choices=["cow", "deepcopy"],
                       help="checkpoint mechanism for every cell's DEFINED "
                            "stacks (default: harness default, cow)")
    sweep.add_argument("--cell-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-cell wall-clock deadline; hung workers are "
                            "reaped and the cell surfaces as timed_out "
                            "(enables supervised execution)")
    sweep.add_argument("--retries", type=int, default=None, metavar="N",
                       help="retry budget for transient infra failures "
                            "(worker crash, ring stall, OOM kill); a cell "
                            "failing transiently more than N times in a row "
                            "is quarantined (enables supervised execution)")
    sweep.add_argument("--journal", default=None, metavar="DIR",
                       help="append each finished cell to a durable journal "
                            "in DIR (crash-safe; resumable via --resume)")
    sweep.add_argument("--resume", default=None, metavar="DIR",
                       help="skip cells already completed in the journal at "
                            "DIR and continue journaling there; the merged "
                            "report is semantically identical to an "
                            "uninterrupted run")
    sweep.add_argument("--report-out", default=None, metavar="PATH",
                       help="write the JSON divergence report here")
    sweep.add_argument("--artifact-out", default=None, metavar="DIR",
                       help="archive every Theorem-1 divergence as a pair "
                            "of replayable run bundles in this directory "
                            "(production side embeds the recording)")
    sweep.add_argument("--list", action="store_true",
                       help="list registered scenarios and exit")
    sweep.add_argument("--verbose", action="store_true",
                       help="print each cell as it completes")
    sweep.set_defaults(func=cmd_sweep)

    fuzz = sub.add_parser(
        "fuzz",
        help="boundary-jitter fuzzing: jittered seed-sweeps with "
             "divergence minimization",
    )
    fuzz.add_argument("--scenarios", default="all",
                      help="comma-separated scenario names (compositions "
                           "like a+b allowed), or 'all' for every "
                           "non-jittered builtin")
    fuzz.add_argument("--seeds", default="1,2,3,4")
    fuzz.add_argument("--jitters-us", default="0,1,2,5",
                      help="boundary-jitter magnitudes to grid over "
                           "(0 = snap exactly onto the boundary)")
    fuzz.add_argument("--mode", default="defined",
                      choices=["vanilla", "defined", "ddos"],
                      help="defined carries the full Theorem-1 "
                           "production-vs-replay check per cell")
    fuzz.add_argument("--workers", type=int, default=1)
    fuzz.add_argument("--no-minimize", action="store_true",
                      help="skip shrinking failures to the smallest "
                           "(scenario, seed, jitter) triple")
    fuzz.add_argument("--report-out", default=None, metavar="PATH",
                      help="write the JSON divergence report here")
    fuzz.add_argument("--verbose", action="store_true")
    fuzz.set_defaults(func=cmd_fuzz)

    env = sub.add_parser(
        "envelope",
        help="map the history-window envelope (jitter x window x size) "
             "and suggest a verified safe window_us",
    )
    env.add_argument("--scenarios", required=True,
                     help="comma-separated scenario names; size with "
                          "'name@N' or --sizes (e.g. flap-storm@20)")
    env.add_argument("--jitters", default="0,50,300",
                     help="per-packet delivery-jitter magnitudes in "
                          "MILLISECONDS to grid over (default 0,50,300)")
    env.add_argument("--windows", default="auto",
                     help="comma-separated window_us values, or 'auto' "
                          "for a ladder derived from the network-default "
                          "window formula (default: auto)")
    env.add_argument("--sizes", default=None, metavar="N[,M]",
                     help="re-scale every selected scenario onto N-node "
                          "topologies (the 'name@N' dynamic variant)")
    env.add_argument("--seeds", default="1")
    env.add_argument("--boundary-jitter-us", type=int, default=None,
                     metavar="N",
                     help="additionally snap external events onto beacon-"
                          "group boundaries +/- N us (the fuzzer wrapper)")
    env.add_argument("--suggest", action="store_true",
                     help="recommend the minimal safe window from the "
                          "measured deficits and verify it with a "
                          "deficit-free re-run (Theorem-1 checks on)")
    env.add_argument("--target-quantile", type=float, default=0.99,
                     help="deficit quantile the suggestion must cover "
                          "(default 0.99)")
    env.add_argument("--margin", type=float, default=0.25,
                     help="safety margin on top of the measured reach "
                          "(default 0.25)")
    env.add_argument("--workers", type=int, default=1)
    env.add_argument("--cell-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="per-cell wall-clock deadline (supervised "
                          "execution; see 'repro sweep --cell-timeout')")
    env.add_argument("--retries", type=int, default=None, metavar="N",
                     help="transient-failure retry budget (supervised "
                          "execution; see 'repro sweep --retries')")
    env.add_argument("--report-out", default=None, metavar="PATH",
                     help="write the JSON envelope report here")
    env.add_argument("--artifact-out", default=None, metavar="DIR",
                     help="archive verification-pass Theorem-1 "
                          "divergences as replayable run bundles here")
    env.add_argument("--verbose", action="store_true",
                     help="print each cell as it completes")
    env.set_defaults(func=cmd_envelope)

    bench = sub.add_parser(
        "bench",
        help="machine-readable perf baselines (checkpoint/rollback/sweep "
             "throughput) as JSON, with optional baseline comparison",
    )
    bench.add_argument("--json", default=None, metavar="PATH",
                       help="write the JSON bench report here")
    bench.add_argument("--baseline", default=None, metavar="PATH",
                       help="compare against a committed bench JSON and "
                            "emit ::warning:: annotations on regressions")
    bench.add_argument("--tolerance", type=float, default=0.25,
                       help="relative regression tolerance vs the baseline "
                            "(default 0.25)")
    bench.add_argument("--quick", action="store_true",
                       help="smaller workloads (flap-storm@20, fewer "
                            "iterations) for smoke runs")
    bench.set_defaults(func=cmd_bench)

    scale = sub.add_parser("scale", help="size scalability sweep (Fig 8)")
    scale.add_argument("--sizes", default="20,40")
    scale.add_argument("--events", type=int, default=4)
    scale.add_argument("--seed", type=int, default=1)
    scale.set_defaults(func=cmd_scale)

    case = sub.add_parser("casestudy", help="run a paper case study")
    case.add_argument("which", choices=["bgp", "rip"])
    case.set_defaults(func=cmd_casestudy)

    debug = sub.add_parser("debug", help="interactive debugger over a recording")
    debug.add_argument("--topology", default="ebone")
    debug.add_argument("--size", type=int, default=30)
    debug.add_argument("--topology-seed", type=int, default=1,
                       help="must match the production run's topology")
    debug.add_argument("--recording", required=True)
    debug.add_argument("--seed", type=int, default=1000)
    debug.set_defaults(func=cmd_debug)

    lint = sub.add_parser(
        "lint",
        help="determinism & store-contract checker (D-rules / S-rules)",
    )
    from repro.lint.cli import add_arguments as add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=cmd_lint)

    chaos = sub.add_parser(
        "chaos",
        help="chaos scenario DSL: validate scenario files, emit the schema",
    )
    from repro.chaos.cli import add_arguments as add_chaos_arguments

    add_chaos_arguments(chaos)
    chaos.set_defaults(func=cmd_chaos)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
