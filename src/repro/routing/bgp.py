"""A BGP-style path-vector daemon with the XORP 0.4 decision bug (Fig. 4).

The decision process implements the three rules the paper's case study
needs:

1. shortest AS-path length wins;
2. among the survivors, paths are grouped by neighboring AS and, within
   each group, only the lowest multi-exit discriminator (MED) survives --
   this per-group comparison is what makes BGP preference *non-
   transitive*;
3. among the remaining candidates, the lowest IGP distance wins.

Two decision implementations share the daemon:

* :class:`CorrectBgp` re-runs the full selection over *all* valid paths
  whenever anything changes -- order-independent;
* :class:`BuggyXorpBgp` reproduces XORP 0.4's defect: an incoming path is
  compared *pairwise against the current best only*.  Because MED makes
  preference non-transitive, the winner then depends on arrival order
  (p1,p2,p3 -> p3 but p1,p3,p2 -> p2), a textbook nondeterministic
  ordering bug.

Paths enter the system as external announcements (eBGP, recorded external
events) and propagate over iBGP sessions between the instrumented
routers.  iBGP propagation re-advertises the router's *best* path when it
changes, with the incoming update as causal parent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.routing.base import Daemon
from repro.simnet.events import ANNOUNCE, ExternalEvent
from repro.simnet.messages import Message
from repro.simnet.node import Stack

PROTO_UPDATE = "bgp_update"


def _canonical(doc: "Dict[str, Any] | Tuple") -> Tuple:
    """Immutable canonical form of a wire doc for checkpoint-store rows."""
    if isinstance(doc, tuple):
        return doc
    return tuple(sorted(doc.items()))


@dataclass(frozen=True)
class BgpPath:
    """One candidate path for a prefix.

    ``igp_dist`` is the advertising router's IGP distance to the exit
    point; in the paper's Figure 4 scenario each path carries a fixed
    IGP distance, which we model directly.
    """

    prefix: str
    path_id: str
    as_path_len: int
    med: int
    neighbor_as: str
    igp_dist: int

    def to_wire(self) -> Dict[str, Any]:
        """JSON-able representation (announcements live in recordings)."""
        return {
            "prefix": self.prefix,
            "path_id": self.path_id,
            "as_path_len": self.as_path_len,
            "med": self.med,
            "neighbor_as": self.neighbor_as,
            "igp_dist": self.igp_dist,
        }

    @classmethod
    def from_wire(cls, doc: Dict[str, Any]) -> "BgpPath":
        return cls(
            prefix=doc["prefix"],
            path_id=doc["path_id"],
            as_path_len=doc["as_path_len"],
            med=doc["med"],
            neighbor_as=doc["neighbor_as"],
            igp_dist=doc["igp_dist"],
        )

    def sort_key(self) -> Tuple[str, str]:
        return (self.prefix, self.path_id)


def full_selection(paths: List[BgpPath]) -> Optional[BgpPath]:
    """The correct, order-independent decision process."""
    if not paths:
        return None
    shortest = min(p.as_path_len for p in paths)
    survivors = [p for p in paths if p.as_path_len == shortest]
    by_group: Dict[str, List[BgpPath]] = {}
    for p in survivors:
        by_group.setdefault(p.neighbor_as, []).append(p)
    med_survivors: List[BgpPath] = []
    for neighbor_as in sorted(by_group):
        group = by_group[neighbor_as]
        lowest = min(p.med for p in group)
        med_survivors.extend(p for p in group if p.med == lowest)
    best_igp = min(p.igp_dist for p in med_survivors)
    finalists = sorted(
        (p for p in med_survivors if p.igp_dist == best_igp),
        key=BgpPath.sort_key,
    )
    return finalists[0]


def pairwise_prefer(challenger: BgpPath, incumbent: BgpPath) -> bool:
    """True if ``challenger`` beats ``incumbent`` head-to-head.

    This is the comparison XORP 0.4 applies incrementally: AS-path length
    first; MED only when both paths come from the same neighboring AS
    (the rule that breaks transitivity); IGP distance last.
    """
    if challenger.as_path_len != incumbent.as_path_len:
        return challenger.as_path_len < incumbent.as_path_len
    if challenger.neighbor_as == incumbent.neighbor_as and challenger.med != incumbent.med:
        return challenger.med < incumbent.med
    if challenger.igp_dist != incumbent.igp_dist:
        return challenger.igp_dist < incumbent.igp_dist
    return challenger.sort_key() < incumbent.sort_key()


class BgpDaemon(Daemon):
    """Path-vector daemon; subclasses choose the decision process.

    Store-backed: ``adj_rib_in`` (keyed ``(prefix, path_id)``) and
    ``best`` (keyed ``prefix``) are checkpoint-store namespaces holding
    wire docs in canonical immutable form (``tuple(sorted(doc.items()))``)
    -- the write-barrier contract forbids storing the mutable dicts
    themselves.  Reads materialize dicts at the boundary.
    """

    store_backed = True

    #: Set by subclasses: "correct" or "buggy-xorp-0.4".
    decision_name = "abstract"

    def __init__(self, node_id: str, stack: Stack, peers: List[str]) -> None:
        super().__init__(node_id, stack)
        self.peers = sorted(peers)
        assert self.store is not None
        self.adj_rib_in = self.store.namespace("adj_rib_in")
        self.best = self.store.namespace("best")

    # ------------------------------------------------------------------
    # state plumbing
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        return {
            "adj_rib_in": {k: dict(v) for k, v in self.adj_rib_in.items()},
            "best": {k: dict(v) for k, v in self.best.items()},
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self.adj_rib_in.replace(
            {k: _canonical(v) for k, v in state["adj_rib_in"].items()}
        )
        self.best.replace({k: _canonical(v) for k, v in state["best"].items()})

    # ------------------------------------------------------------------
    # lifecycle and inputs
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self.adj_rib_in.clear()
        self.best.clear()

    def on_external(self, event: ExternalEvent) -> None:
        if event.kind != ANNOUNCE:
            return
        path = BgpPath.from_wire(event.data)
        # A border router relays every eBGP-learned path into iBGP (each
        # border router is a distinct exit point, so internal routers see
        # all candidate exits -- the Figure 4 setup where p1..p3 all reach
        # R3).  The relay is an origination: it is caused by the external
        # announcement, not by any internal message.
        payload = tuple(sorted(path.to_wire().items()))
        for peer in self.peers:
            self.send(peer, PROTO_UPDATE, payload, parent=None, size_bytes=80)
        self._learn(path, parent=None)

    def on_message(self, msg: Message) -> None:
        if msg.protocol != PROTO_UPDATE:
            raise ValueError(f"BGP daemon got unknown protocol {msg.protocol!r}")
        path = BgpPath.from_wire(dict(msg.payload))
        self._learn(path, parent=msg)

    def on_timer(self, key: str) -> None:  # pragma: no cover - no timers yet
        raise ValueError(f"BGP daemon got unknown timer {key!r}")

    # ------------------------------------------------------------------
    # learning + propagation
    # ------------------------------------------------------------------
    def _learn(self, path: BgpPath, parent: Optional[Message]) -> None:
        """Install a path and re-run the decision process.

        iBGP split horizon applies: paths learned from an iBGP peer are
        *not* re-advertised to other iBGP peers (the full mesh already
        delivered them), so learning only updates the local decision.
        """
        self.adj_rib_in[(path.prefix, path.path_id)] = _canonical(path.to_wire())
        new_best = self._decide(path)
        if new_best is not None:
            self.best[path.prefix] = _canonical(new_best.to_wire())

    def _paths_for(self, prefix: str) -> List[BgpPath]:
        return sorted(
            (
                BgpPath.from_wire(dict(doc))
                for (pfx, _pid), doc in self.adj_rib_in.items()
                if pfx == prefix
            ),
            key=BgpPath.sort_key,
        )

    def _decide(self, incoming: BgpPath) -> Optional[BgpPath]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # evaluation hooks
    # ------------------------------------------------------------------
    def best_path_id(self, prefix: str) -> Optional[str]:
        doc = self.best.get(prefix)
        return dict(doc)["path_id"] if doc else None


class CorrectBgp(BgpDaemon):
    """Re-runs the full decision process over all valid paths (the fix the
    case study validates in the debugging network)."""

    decision_name = "correct"

    def _decide(self, incoming: BgpPath) -> Optional[BgpPath]:
        return full_selection(self._paths_for(incoming.prefix))


class BuggyXorpBgp(BgpDaemon):
    """XORP 0.4's defect: compare the incoming path only against the
    current best.  Order-dependent under MED non-transitivity."""

    decision_name = "buggy-xorp-0.4"

    def _decide(self, incoming: BgpPath) -> Optional[BgpPath]:
        current_doc = self.best.get(incoming.prefix)
        if current_doc is None:
            return incoming
        current = BgpPath.from_wire(dict(current_doc))
        if incoming.path_id == current.path_id:
            return incoming  # refresh of the incumbent
        return incoming if pairwise_prefer(incoming, current) else current
