"""BGP route-flap damping (RFC 2439 style) in virtual time.

Section 3 of the paper uses flap damping as the canary for its timer
design: damping "holds down" unstable routes for a period of *time*, so a
deterministic timer scheme must not make the network more or less stable
-- virtual time has to progress at a rate similar to the wall clock.
DEFINED achieves that by advancing one virtual-time unit per 250 ms
beacon; this module provides the damping machinery and the tests/bench
verify that hold-down durations under DEFINED match the uninstrumented
wall-clock behaviour.

The arithmetic is deliberately integer-only and evaluated lazily (penalty
decay is computed from elapsed units at observation time, never from a
background clock), so it is bit-deterministic under replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: RFC 2439-flavoured defaults, expressed in virtual-time units (one unit
#: = one beacon interval = 250 ms by default, so 60 units = 15 s half
#: life at example scale).
DEFAULT_PENALTY_PER_FLAP = 1_000
DEFAULT_SUPPRESS_THRESHOLD = 2_500
DEFAULT_REUSE_THRESHOLD = 1_000
DEFAULT_HALF_LIFE_UNITS = 16
#: Penalties are capped so a long flap burst cannot suppress forever.
DEFAULT_MAX_PENALTY = 12_000


@dataclass
class DampingState:
    """Per-prefix damping bookkeeping."""

    penalty_milli: int = 0          # penalty scaled by 1000 for precision
    last_update_vt: int = 0
    suppressed: bool = False
    flaps: int = 0


@dataclass
class FlapDampener:
    """Deterministic flap-damping engine.

    Drive it with :meth:`flap` (a route changed) and :meth:`poll` (query
    suppression state); both take the current virtual time.  Decay uses
    integer halving per elapsed half life plus linear interpolation
    within one, which is exactly reproducible across runs.
    """

    penalty_per_flap: int = DEFAULT_PENALTY_PER_FLAP
    suppress_threshold: int = DEFAULT_SUPPRESS_THRESHOLD
    reuse_threshold: int = DEFAULT_REUSE_THRESHOLD
    half_life_units: int = DEFAULT_HALF_LIFE_UNITS
    max_penalty: int = DEFAULT_MAX_PENALTY
    _routes: Dict[str, DampingState] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.reuse_threshold >= self.suppress_threshold:
            raise ValueError("reuse threshold must be below suppress threshold")
        if self.half_life_units <= 0:
            raise ValueError("half life must be positive")

    # ------------------------------------------------------------------
    # decay arithmetic (integer, lazy)
    # ------------------------------------------------------------------
    def _decayed(self, state: DampingState, vt: int) -> int:
        elapsed = max(0, vt - state.last_update_vt)
        halvings, rest = divmod(elapsed, self.half_life_units)
        penalty = state.penalty_milli >> min(halvings, 60)
        # linear interpolation within the current half life: lose
        # penalty/2 * rest/half_life
        penalty -= (penalty * rest) // (2 * self.half_life_units)
        return penalty

    def _settle(self, prefix: str, vt: int) -> DampingState:
        state = self._routes.setdefault(prefix, DampingState(last_update_vt=vt))
        state.penalty_milli = self._decayed(state, vt)
        state.last_update_vt = vt
        if state.suppressed and state.penalty_milli <= self.reuse_threshold * 1000:
            state.suppressed = False
        return state

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def flap(self, prefix: str, vt: int) -> bool:
        """Record one flap; returns the post-flap suppression state."""
        state = self._settle(prefix, vt)
        state.flaps += 1
        state.penalty_milli = min(
            state.penalty_milli + self.penalty_per_flap * 1000,
            self.max_penalty * 1000,
        )
        if state.penalty_milli > self.suppress_threshold * 1000:
            state.suppressed = True
        return state.suppressed

    def poll(self, prefix: str, vt: int) -> bool:
        """True when the prefix is currently suppressed."""
        if prefix not in self._routes:
            return False
        return self._settle(prefix, vt).suppressed

    def penalty(self, prefix: str, vt: int) -> int:
        """Current (decayed) penalty, in flap units."""
        if prefix not in self._routes:
            return 0
        return self._settle(prefix, vt).penalty_milli // 1000

    def reuse_eta_units(self, prefix: str, vt: int) -> Optional[int]:
        """Units until the prefix becomes reusable (None if not
        suppressed)."""
        if not self.poll(prefix, vt):
            return None
        state = self._routes[prefix]
        penalty = state.penalty_milli
        target = self.reuse_threshold * 1000
        units = 0
        while penalty > target and units < 10_000:
            penalty -= penalty // (2 * self.half_life_units)
            units += 1
        return units

    def flap_counts(self) -> Dict[str, int]:
        return {p: s.flaps for p, s in sorted(self._routes.items())}

    def snapshot(self) -> Tuple:
        """Checkpointable state (the dampener lives inside daemons)."""
        return tuple(
            (p, s.penalty_milli, s.last_update_vt, s.suppressed, s.flaps)
            for p, s in sorted(self._routes.items())
        )

    def restore(self, snap: Tuple) -> None:
        self._routes = {
            p: DampingState(
                penalty_milli=pen, last_update_vt=vt, suppressed=sup, flaps=fl
            )
            for p, pen, vt, sup, fl in snap
        }


class DampedRouteMonitor:
    """A small daemon-side helper: watches a prefix's announcements and
    applies damping, recording (virtual-time, suppression) transitions so
    tests can compare hold-down *durations* across stacks."""

    def __init__(self, dampener: Optional[FlapDampener] = None) -> None:
        self.dampener = dampener if dampener is not None else FlapDampener()
        self.transitions: List[Tuple[int, str, bool]] = []

    def on_flap(self, prefix: str, vt: int) -> None:
        before = self.dampener.poll(prefix, vt)
        after = self.dampener.flap(prefix, vt)
        if after != before:
            self.transitions.append((vt, prefix, after))

    def check(self, prefix: str, vt: int) -> bool:
        now = self.dampener.poll(prefix, vt)
        history = [s for _t, p, s in self.transitions if p == prefix]
        last = history[-1] if history else False
        if last != now:
            self.transitions.append((vt, prefix, now))
        return now

    def suppression_spans(self, prefix: str) -> List[Tuple[int, int]]:
        """(start_vt, end_vt) hold-down intervals for the prefix."""
        spans = []
        start = None
        for vt, p, suppressed in self.transitions:
            if p != prefix:
                continue
            if suppressed and start is None:
                start = vt
            elif not suppressed and start is not None:
                spans.append((start, vt))
                start = None
        return spans
