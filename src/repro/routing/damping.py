"""BGP route-flap damping (RFC 2439 style) in virtual time.

Section 3 of the paper uses flap damping as the canary for its timer
design: damping "holds down" unstable routes for a period of *time*, so a
deterministic timer scheme must not make the network more or less stable
-- virtual time has to progress at a rate similar to the wall clock.
DEFINED achieves that by advancing one virtual-time unit per 250 ms
beacon; this module provides the damping machinery and the tests/bench
verify that hold-down durations under DEFINED match the uninstrumented
wall-clock behaviour.

The arithmetic is deliberately integer-only and evaluated lazily (penalty
decay is computed from elapsed units at observation time, never from a
background clock), so it is bit-deterministic under replay.

Per-prefix rows live as immutable tuples behind a
:class:`~repro.core.statestore.Namespace` write barrier: a daemon that
embeds a dampener passes its :class:`~repro.core.statestore.StateStore`
and the damping state is checkpointed copy-on-write along with the rest
of its protocol state.  Standalone dampeners (tests, monitors) keep the
classic ``snapshot()``/``restore()`` tuple API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.statestore import Namespace, StateStore

#: RFC 2439-flavoured defaults, expressed in virtual-time units (one unit
#: = one beacon interval = 250 ms by default, so 60 units = 15 s half
#: life at example scale).
DEFAULT_PENALTY_PER_FLAP = 1_000
DEFAULT_SUPPRESS_THRESHOLD = 2_500
DEFAULT_REUSE_THRESHOLD = 1_000
DEFAULT_HALF_LIFE_UNITS = 16
#: Penalties are capped so a long flap burst cannot suppress forever.
DEFAULT_MAX_PENALTY = 12_000

#: Per-prefix row layout inside the namespace (all immutable):
#: (penalty_milli, last_update_vt, suppressed, flaps).
DampingRow = Tuple[int, int, bool, int]


@dataclass(frozen=True)
class DampingState:
    """Read-side view of one prefix's damping bookkeeping."""

    penalty_milli: int = 0          # penalty scaled by 1000 for precision
    last_update_vt: int = 0
    suppressed: bool = False
    flaps: int = 0

    def as_row(self) -> DampingRow:
        return (self.penalty_milli, self.last_update_vt, self.suppressed, self.flaps)


@dataclass
class FlapDampener:
    """Deterministic flap-damping engine.

    Drive it with :meth:`flap` (a route changed) and :meth:`poll` (query
    suppression state); both take the current virtual time.  Decay uses
    integer halving per elapsed half life plus linear interpolation
    within one, which is exactly reproducible across runs.
    """

    penalty_per_flap: int = DEFAULT_PENALTY_PER_FLAP
    suppress_threshold: int = DEFAULT_SUPPRESS_THRESHOLD
    reuse_threshold: int = DEFAULT_REUSE_THRESHOLD
    half_life_units: int = DEFAULT_HALF_LIFE_UNITS
    max_penalty: int = DEFAULT_MAX_PENALTY
    #: Bind the damping rows into a daemon's checkpoint store; ``None``
    #: runs on a standalone namespace.
    store: Optional[StateStore] = None
    namespace: str = "damping"
    _routes: Namespace = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if self.reuse_threshold >= self.suppress_threshold:
            raise ValueError("reuse threshold must be below suppress threshold")
        if self.half_life_units <= 0:
            raise ValueError("half life must be positive")
        self._routes = (
            self.store.namespace(self.namespace)
            if self.store is not None
            else Namespace(self.namespace)
        )

    # ------------------------------------------------------------------
    # decay arithmetic (integer, lazy)
    # ------------------------------------------------------------------
    def _decayed(self, penalty_milli: int, last_update_vt: int, vt: int) -> int:
        elapsed = max(0, vt - last_update_vt)
        halvings, rest = divmod(elapsed, self.half_life_units)
        penalty = penalty_milli >> min(halvings, 60)
        # linear interpolation within the current half life: lose
        # penalty/2 * rest/half_life
        penalty -= (penalty * rest) // (2 * self.half_life_units)
        return penalty

    def _settle(self, prefix: str, vt: int) -> DampingRow:
        row = self._routes.get(prefix)
        if row is None:
            row = (0, vt, False, 0)
        penalty, last, suppressed, flaps = row
        penalty = self._decayed(penalty, last, vt)
        if suppressed and penalty <= self.reuse_threshold * 1000:
            suppressed = False
        settled: DampingRow = (penalty, vt, suppressed, flaps)
        if settled != row:
            self._routes[prefix] = settled
        return settled

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def flap(self, prefix: str, vt: int) -> bool:
        """Record one flap; returns the post-flap suppression state."""
        penalty, _vt, suppressed, flaps = self._settle(prefix, vt)
        penalty = min(
            penalty + self.penalty_per_flap * 1000, self.max_penalty * 1000
        )
        if penalty > self.suppress_threshold * 1000:
            suppressed = True
        self._routes[prefix] = (penalty, vt, suppressed, flaps + 1)
        return suppressed

    def poll(self, prefix: str, vt: int) -> bool:
        """True when the prefix is currently suppressed."""
        if prefix not in self._routes:
            return False
        return self._settle(prefix, vt)[2]

    def penalty(self, prefix: str, vt: int) -> int:
        """Current (decayed) penalty, in flap units."""
        if prefix not in self._routes:
            return 0
        return self._settle(prefix, vt)[0] // 1000

    def reuse_eta_units(self, prefix: str, vt: int) -> Optional[int]:
        """Units until the prefix becomes reusable (None if not
        suppressed)."""
        if not self.poll(prefix, vt):
            return None
        penalty = self._routes[prefix][0]
        target = self.reuse_threshold * 1000
        units = 0
        while penalty > target and units < 10_000:
            penalty -= penalty // (2 * self.half_life_units)
            units += 1
        return units

    def flap_counts(self) -> Dict[str, int]:
        return {p: row[3] for p, row in self._routes.items()}

    def state_of(self, prefix: str) -> Optional[DampingState]:
        row = self._routes.get(prefix)
        return DampingState(*row) if row is not None else None

    def snapshot(self) -> Tuple:
        """Checkpointable state (the dampener lives inside daemons).

        Store-bound dampeners are versioned wholesale by their store;
        this tuple form serves standalone use and inspection.  The
        namespace's sorted view means nothing is re-sorted here.
        """
        return tuple((p, *row) for p, row in self._routes.items())

    def restore(self, snap: Tuple) -> None:
        self._routes.replace(
            {p: (pen, vt, sup, fl) for p, pen, vt, sup, fl in snap}
        )


class DampedRouteMonitor:
    """A small daemon-side helper: watches a prefix's announcements and
    applies damping, recording (virtual-time, suppression) transitions so
    tests can compare hold-down *durations* across stacks."""

    def __init__(self, dampener: Optional[FlapDampener] = None) -> None:
        self.dampener = dampener if dampener is not None else FlapDampener()
        self.transitions: List[Tuple[int, str, bool]] = []

    def on_flap(self, prefix: str, vt: int) -> None:
        before = self.dampener.poll(prefix, vt)
        after = self.dampener.flap(prefix, vt)
        if after != before:
            self.transitions.append((vt, prefix, after))

    def check(self, prefix: str, vt: int) -> bool:
        now = self.dampener.poll(prefix, vt)
        history = [s for _t, p, s in self.transitions if p == prefix]
        last = history[-1] if history else False
        if last != now:
            self.transitions.append((vt, prefix, now))
        return now

    def suppression_spans(self, prefix: str) -> List[Tuple[int, int]]:
        """(start_vt, end_vt) hold-down intervals for the prefix."""
        spans = []
        start = None
        for vt, p, suppressed in self.transitions:
            if p != prefix:
                continue
            if suppressed and start is None:
                start = vt
            elif not suppressed and start is not None:
                spans.append((start, vt))
                start = None
        return spans
