"""Routing information base: the table the daemons maintain.

Kept deliberately simple -- destination-keyed entries with next hop,
metric and (for distance-vector protocols) an expiry in virtual time --
but with strictly deterministic iteration and representation, because
RIB contents flow into message payloads and delivery-log tags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class RouteEntry:
    """One installed route."""

    dest: str
    next_hop: Optional[str]
    metric: int
    source: str = ""
    expires_vt: Optional[int] = None

    def as_tuple(self) -> Tuple[str, Optional[str], int, str, Optional[int]]:
        return (self.dest, self.next_hop, self.metric, self.source, self.expires_vt)

    def __repr__(self) -> str:
        exp = f" exp@{self.expires_vt}" if self.expires_vt is not None else ""
        return f"{self.dest}->{self.next_hop} metric={self.metric}{exp}"


class Rib:
    """A destination-keyed routing table."""

    def __init__(self) -> None:
        self._routes: Dict[str, RouteEntry] = {}

    def install(self, entry: RouteEntry) -> None:
        self._routes[entry.dest] = entry

    def withdraw(self, dest: str) -> Optional[RouteEntry]:
        return self._routes.pop(dest, None)

    def lookup(self, dest: str) -> Optional[RouteEntry]:
        return self._routes.get(dest)

    def next_hop(self, dest: str) -> Optional[str]:
        entry = self._routes.get(dest)
        return entry.next_hop if entry is not None else None

    def __contains__(self, dest: str) -> bool:
        return dest in self._routes

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[RouteEntry]:
        for dest in sorted(self._routes):
            yield self._routes[dest]

    def destinations(self) -> List[str]:
        return sorted(self._routes)

    def as_dict(self) -> Dict[str, Tuple]:
        """Deterministic dump used in snapshots and assertions."""
        return {dest: self._routes[dest].as_tuple() for dest in sorted(self._routes)}

    def load_dict(self, data: Dict[str, Tuple]) -> None:
        self._routes = {
            dest: RouteEntry(*fields) for dest, fields in data.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rows = ", ".join(repr(e) for e in self)
        return f"Rib({rows})"
