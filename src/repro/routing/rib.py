"""Routing information base: the table the daemons maintain.

Kept deliberately simple -- destination-keyed entries with next hop,
metric and (for distance-vector protocols) an expiry in virtual time --
but with strictly deterministic iteration and representation, because
RIB contents flow into message payloads and delivery-log tags.

The table stores rows as immutable tuples behind a
:class:`~repro.core.statestore.Namespace` write barrier, so a daemon
that registers its RIB in a :class:`~repro.core.statestore.StateStore`
gets copy-on-write checkpoints for free.  :class:`RouteEntry` remains
the read-side API object: ``lookup`` materializes one per call, and
updates go through :meth:`install` / :meth:`update` / :meth:`withdraw`
(never by mutating a looked-up entry in place -- the barrier would not
see it).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _replace
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.statestore import Namespace, StateStore


@dataclass(frozen=True)
class RouteEntry:
    """One installed route (immutable; update via ``Rib.update``)."""

    dest: str
    next_hop: Optional[str]
    metric: int
    source: str = ""
    expires_vt: Optional[int] = None

    def as_tuple(self) -> Tuple[str, Optional[str], int, str, Optional[int]]:
        return (self.dest, self.next_hop, self.metric, self.source, self.expires_vt)

    def replaced(self, **changes) -> "RouteEntry":
        """A copy with ``changes`` applied."""
        return _replace(self, **changes)

    def __repr__(self) -> str:
        exp = f" exp@{self.expires_vt}" if self.expires_vt is not None else ""
        return f"{self.dest}->{self.next_hop} metric={self.metric}{exp}"


class Rib:
    """A destination-keyed routing table.

    ``store`` binds the table into a daemon's
    :class:`~repro.core.statestore.StateStore`; without one the table
    runs on a standalone namespace (same semantics, no versioning).
    """

    def __init__(self, store: Optional[StateStore] = None, name: str = "rib") -> None:
        self._routes = store.namespace(name) if store is not None else Namespace(name)

    def install(self, entry: RouteEntry) -> None:
        self._routes[entry.dest] = entry.as_tuple()

    def update(self, dest: str, **changes) -> Optional[RouteEntry]:
        """Replace fields of an installed route through the write barrier.

        Returns the new entry, or None when ``dest`` is not installed.
        """
        entry = self.lookup(dest)
        if entry is None:
            return None
        entry = entry.replaced(**changes)
        self.install(entry)
        return entry

    def withdraw(self, dest: str) -> Optional[RouteEntry]:
        row = self._routes.pop(dest, None)
        return RouteEntry(*row) if row is not None else None

    def lookup(self, dest: str) -> Optional[RouteEntry]:
        row = self._routes.get(dest)
        return RouteEntry(*row) if row is not None else None

    def next_hop(self, dest: str) -> Optional[str]:
        row = self._routes.get(dest)
        return row[1] if row is not None else None

    def __contains__(self, dest: str) -> bool:
        return dest in self._routes

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[RouteEntry]:
        for _dest, row in self._routes.items():
            yield RouteEntry(*row)

    def destinations(self) -> List[str]:
        return list(self._routes.keys())

    def as_dict(self) -> Dict[str, Tuple]:
        """Deterministic dump used in snapshots and assertions."""
        return self._routes.as_dict()

    def load_dict(self, data: Dict[str, Tuple]) -> None:
        self._routes.replace({dest: tuple(fields) for dest, fields in data.items()})

    def clear(self) -> None:
        self._routes.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rows = ", ".join(repr(e) for e in self)
        return f"Rib({rows})"
