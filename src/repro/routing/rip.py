"""A RIP-style distance-vector daemon with the Quagga 0.96.5 bug (Fig. 5).

RIP maintains a routing table with a per-route expiry timer.  Periodic
announcements from the next hop refresh the timer; when it expires the
route is flushed, letting a backup route take over.

The Quagga 0.96.5 defect: when matching an incoming announcement against
the table, the implementation compares **only the destination field**,
not destination *and next hop*.  Announcements from the backup router
therefore keep refreshing the timer of the dead main route -- a black
hole that persists as long as the backup keeps announcing.  Whether the
bug bites depends on *timing*: if the backup's announcement reaches the
router after the route expired, recovery is correct; if it arrives
before, the dead route is refreshed forever.  This is the paper's
canonical nondeterministic timing bug.

* :class:`CorrectRip` matches destination + next hop (the fix);
* :class:`BuggyQuaggaRip` matches destination only (the defect).

Announcements are timer-triggered originations (``parent=None``); route
expiry is a per-destination virtual-time timer, so under DEFINED the race
resolves identically on every run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.routing.base import Daemon
from repro.routing.rib import Rib, RouteEntry
from repro.simnet.messages import Message
from repro.simnet.node import Stack

PROTO_UPDATE = "rip_update"

#: RIP's infinity: routes at this metric are unreachable.
INFINITY_METRIC = 16


class RipDaemon(Daemon):
    """Distance-vector daemon; subclasses choose the announcement-matching
    rule (the locus of the Quagga bug).

    Store-backed: the RIB rows live behind the checkpoint store's write
    barrier (:class:`~repro.routing.rib.Rib` stores immutable tuples),
    so route updates -- including the timer refreshes at the heart of
    the bug -- are journalled per checkpoint version.  Looked-up entries
    are read-side copies; every mutation goes through ``rib.install`` /
    ``rib.update`` / ``rib.withdraw``.
    """

    store_backed = True

    #: Set by subclasses.
    matching_name = "abstract"

    def __init__(
        self,
        node_id: str,
        stack: Stack,
        neighbors: List[str],
        own_destinations: Optional[Any] = None,
        update_interval_units: int = 4,
        timeout_units: int = 12,
    ) -> None:
        super().__init__(node_id, stack)
        self.neighbors = sorted(neighbors)
        # destinations this router itself provides; a dict maps each to an
        # advertised base metric (a backup provider advertises higher --
        # the paper's Figure 5 main/backup arrangement)
        if own_destinations is None:
            self.own_destinations: Dict[str, int] = {}
        elif isinstance(own_destinations, dict):
            self.own_destinations = dict(own_destinations)
        else:
            self.own_destinations = {dest: 0 for dest in own_destinations}
        self.update_interval_units = update_interval_units
        self.timeout_units = timeout_units
        self.rib = Rib(store=self.store)

    # ------------------------------------------------------------------
    # state plumbing
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        return {"rib": self.rib.as_dict()}

    def load_state(self, state: Dict[str, Any]) -> None:
        self.rib.load_dict(state["rib"])

    # as_dict()/load_dict() already produce fresh containers of immutable
    # tuples, so the generic deepcopy wrapper is unnecessary work on the
    # inspection path too.
    def snapshot(self) -> Dict[str, Any]:
        return self.state()

    def restore(self, snap: Dict[str, Any]) -> None:
        self.load_state({"rib": dict(snap["rib"])})

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self.rib.clear()
        for dest in sorted(self.own_destinations):
            self.rib.install(
                RouteEntry(
                    dest=dest,
                    next_hop=None,
                    metric=self.own_destinations[dest],
                    source="connected",
                )
            )
        self.stack.set_timer(self.update_interval_units, "announce")

    # ------------------------------------------------------------------
    # periodic announcements
    # ------------------------------------------------------------------
    def on_timer(self, key: str) -> None:
        if key == "announce":
            self._announce_all()
            self.stack.set_timer(self.update_interval_units, "announce")
            return
        if key.startswith("expire|"):
            dest = key.split("|", 1)[1]
            entry = self.rib.lookup(dest)
            if entry is not None and entry.source == "rip":
                self.rib.withdraw(dest)
            return
        raise ValueError(f"RIP daemon got unknown timer {key!r}")

    def _announce_all(self) -> None:
        vector: Tuple[Tuple[str, int], ...] = tuple(
            (entry.dest, entry.metric)
            for entry in self.rib
            if entry.metric < INFINITY_METRIC
        )
        if not vector:
            return
        for neighbor in self.neighbors:
            self.send(
                neighbor,
                PROTO_UPDATE,
                ("rip", self.node_id, vector),
                size_bytes=24 + 8 * len(vector),
            )

    # ------------------------------------------------------------------
    # announcement processing (the locus of the bug)
    # ------------------------------------------------------------------
    def on_message(self, msg: Message) -> None:
        if msg.protocol != PROTO_UPDATE:
            raise ValueError(f"RIP daemon got unknown protocol {msg.protocol!r}")
        _tag, sender, vector = msg.payload
        for dest, metric in vector:
            self._process_route(dest, min(metric + 1, INFINITY_METRIC), sender)

    def _refresh(self, dest: str) -> None:
        updated = self.rib.update(
            dest, expires_vt=self.stack.time_units() + self.timeout_units
        )
        assert updated is not None
        self.stack.set_timer(self.timeout_units, f"expire|{dest}")

    def _install(self, dest: str, metric: int, next_hop: str) -> None:
        self.rib.install(
            RouteEntry(dest=dest, next_hop=next_hop, metric=metric, source="rip")
        )
        self._refresh(dest)

    def _process_route(self, dest: str, metric: int, sender: str) -> None:
        entry = self.rib.lookup(dest)
        if entry is not None and entry.source == "connected":
            return  # our own destination; announcements cannot displace it
        if entry is None:
            if metric < INFINITY_METRIC:
                self._install(dest, metric, sender)
            return
        self._handle_existing(entry, dest, metric, sender)

    def _handle_existing(
        self, entry: RouteEntry, dest: str, metric: int, sender: str
    ) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # evaluation hooks
    # ------------------------------------------------------------------
    def route_via(self, dest: str) -> Optional[str]:
        return self.rib.next_hop(dest)


class CorrectRip(RipDaemon):
    """Matches announcements on destination *and* next hop (the fix)."""

    matching_name = "correct"

    def _handle_existing(
        self, entry: RouteEntry, dest: str, metric: int, sender: str
    ) -> None:
        if entry.next_hop == sender:
            # announcement from our current next hop: refresh, track metric
            if metric >= INFINITY_METRIC:
                self.rib.withdraw(dest)
                self.stack.cancel_timer(f"expire|{dest}")
                return
            self.rib.update(dest, metric=metric)
            self._refresh(dest)
            return
        # a different router: only better routes displace the incumbent
        if metric < entry.metric:
            self._install(dest, metric, sender)


class BuggyQuaggaRip(RipDaemon):
    """Quagga 0.96.5's defect: matches on destination only, so *any*
    announcement for the destination refreshes the incumbent's timer --
    including the backup's announcements after the main router died."""

    matching_name = "buggy-quagga-0.96.5"

    def _handle_existing(
        self, entry: RouteEntry, dest: str, metric: int, sender: str
    ) -> None:
        if metric < entry.metric:
            self._install(dest, metric, sender)
            return
        if metric >= INFINITY_METRIC:
            return
        # the bug: destination matches, so refresh -- never mind that the
        # announcement came from a different next hop
        self._refresh(dest)
