"""A link-state routing daemon (the reproduction's "XORP OSPF 1.6").

Implements the parts of OSPF the paper's evaluation exercises:

* periodic **hello** traffic to statically configured neighbors (the
  paper stresses the design by shrinking XORP's hello/retransmit
  intervals to 1 second);
* **LSA origination** on interface events: a link failure or repair,
  observed as an external event at both endpoints, bumps the router's
  LSA sequence number and floods a fresh LSA -- the "withdraw message
  when a link goes down" origination of Section 2.2;
* **reliable flooding**: LSAs are acknowledged hop-by-hop and
  retransmitted on a timer until acked, mirroring XORP's retransmit
  machinery.  The optional ``forward_delay_units`` reproduces the 1 s
  propagation delay XORP's default configuration introduces between
  receiving an LSA and flooding it onward (the paper removes that delay
  to make DEFINED's overhead visible in Figure 6b; we default to the
  removed-delay configuration for the same reason);
* **SPF**: two-way-checked adjacency from the LSDB, Dijkstra with
  deterministic tie-breaks, hop-count metric.

Causal marking: LSAs flooded onward pass the incoming LSA as ``parent``;
LSAs originated by interface events or retransmit timers are new causal
chains (``parent=None``), exactly the Section 3 contract.

Checkpointing happens on *every* delivery (Section 3), so this daemon is
**store-backed**: all mutable protocol state lives in namespaces of
``self.store`` (immutable values, sorted iteration, write-barrier
mutation), and the shim checkpoints it copy-on-write by store version --
O(dirty keys) per delivery instead of a deepcopy of the whole LSDB.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Tuple

from repro.routing.base import Daemon
from repro.routing.spf import dijkstra
from repro.simnet.events import ExternalEvent, LINK_DOWN, LINK_UP
from repro.simnet.messages import Message
from repro.simnet.node import Stack

PROTO_HELLO = "ospf_hello"
PROTO_LSA = "ospf_lsa"
PROTO_ACK = "ospf_ack"

#: LSA payloads are plain tuples so their repr (used in delivery-log tags)
#: is deterministic: ("lsa", router, seq, (sorted live neighbor ids)).
LsaPayload = Tuple[str, str, int, Tuple[str, ...]]


class OspfDaemon(Daemon):
    """Link-state routing daemon."""

    store_backed = True

    def __init__(
        self,
        node_id: str,
        stack: Stack,
        neighbors: List[str],
        hello_interval_units: int = 4,
        retransmit_units: int = 4,
        forward_delay_units: int = 0,
        refresh_interval_units: int = 0,
    ) -> None:
        super().__init__(node_id, stack)
        self.neighbors = sorted(neighbors)
        self.hello_interval_units = hello_interval_units
        self.retransmit_units = retransmit_units
        self.forward_delay_units = forward_delay_units
        self.refresh_interval_units = refresh_interval_units

        # mutable protocol state: namespaced sub-stores, all checkpointed
        assert self.store is not None
        self.live_interfaces = self.store.namespace("live_interfaces")
        self.lsdb = self.store.namespace("lsdb")
        self.pending_acks = self.store.namespace("pending_acks")
        self.delayed_floods = self.store.namespace("delayed_floods")
        self.distances = self.store.namespace("distances")
        self.first_hops = self.store.namespace("first_hops")
        self._meta = self.store.namespace("meta")
        self._meta["my_seq"] = 0
        self._meta["hello_count"] = 0

    # ------------------------------------------------------------------
    # scalar counters (namespace-backed so checkpoints cover them)
    # ------------------------------------------------------------------
    @property
    def my_seq(self) -> int:
        return self._meta["my_seq"]

    @my_seq.setter
    def my_seq(self, value: int) -> None:
        self._meta["my_seq"] = value

    @property
    def hello_count(self) -> int:
        return self._meta["hello_count"]

    @hello_count.setter
    def hello_count(self, value: int) -> None:
        self._meta["hello_count"] = value

    # ------------------------------------------------------------------
    # state plumbing
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        return {
            "live_interfaces": self.live_interfaces.as_dict(),
            "lsdb": self.lsdb.as_dict(),
            "my_seq": self.my_seq,
            "pending_acks": self.pending_acks.as_dict(),
            "delayed_floods": self.delayed_floods.as_dict(),
            "distances": self.distances.as_dict(),
            "first_hops": self.first_hops.as_dict(),
            "hello_count": self.hello_count,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self.live_interfaces.replace(state["live_interfaces"])
        self.lsdb.replace(state["lsdb"])
        self.my_seq = state["my_seq"]
        self.pending_acks.replace(state["pending_acks"])
        self.delayed_floods.replace(state["delayed_floods"])
        self.distances.replace(state["distances"])
        self.first_hops.replace(state["first_hops"])
        self.hello_count = state["hello_count"]

    # All values are immutable (tuples/ints/strings), so the materialized
    # state dict is already an independent snapshot -- no deepcopy needed
    # on the inspection path either.
    def snapshot(self) -> Dict[str, Any]:
        return self.state()

    def restore(self, snap: Dict[str, Any]) -> None:
        self.load_state(snap)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self.live_interfaces.replace({n: True for n in self.neighbors})
        self.lsdb.clear()
        self.my_seq = 0
        self.pending_acks.clear()
        self.delayed_floods.clear()
        self.hello_count = 0
        self._originate_lsa(parent=None)
        # Deterministic per-router hello phase: real routers' hello timers
        # are not synchronized, and a network-wide hello wave in every
        # k-th group would collide with any event landing in that group.
        phase = (
            int.from_bytes(hashlib.sha256(self.node_id.encode()).digest()[:4], "big")
            % self.hello_interval_units
        )
        self.stack.set_timer(1 + phase, "hello")
        if self.refresh_interval_units:
            self.stack.set_timer(self.refresh_interval_units, "refresh")

    # ------------------------------------------------------------------
    # LSA origination and flooding
    # ------------------------------------------------------------------
    def _my_links(self) -> Tuple[str, ...]:
        return tuple(n for n in self.neighbors if self.live_interfaces.get(n, False))

    def _originate_lsa(self, parent: Optional[Message]) -> None:
        self.my_seq += 1
        payload: LsaPayload = ("lsa", self.node_id, self.my_seq, self._my_links())
        self._install_lsa(self.node_id, self.my_seq, self._my_links())
        for neighbor in self._my_links():
            self._send_lsa(neighbor, payload, parent)

    def _send_lsa(self, dst: str, payload: LsaPayload, parent: Optional[Message]) -> None:
        _, router, seq, _links = payload
        self.pending_acks[(dst, router, seq)] = True
        self.send(dst, PROTO_LSA, payload, parent=parent, size_bytes=96)
        self.stack.set_timer(self.retransmit_units, f"rexmit|{dst}|{router}|{seq}")

    def _install_lsa(self, router: str, seq: int, links: Tuple[str, ...]) -> bool:
        current = self.lsdb.get(router)
        if current is not None and current[0] >= seq:
            return False
        self.lsdb[router] = (seq, tuple(sorted(links)))
        self._run_spf()
        return True

    def _run_spf(self) -> None:
        adjacency: Dict[str, Dict[str, int]] = {}
        lsdb = {router: entry for router, entry in self.lsdb.items()}
        for router, (_seq, links) in lsdb.items():
            adjacency.setdefault(router, {})
            for other in links:
                other_entry = lsdb.get(other)
                # two-way check: both ends must claim the adjacency
                if other_entry is not None and router in other_entry[1]:
                    adjacency[router][other] = 1
        distances, first_hops = dijkstra(adjacency, self.node_id)
        self.distances.replace(distances)
        self.first_hops.replace(first_hops)

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------
    def on_message(self, msg: Message) -> None:
        if msg.protocol == PROTO_HELLO:
            return  # liveness signal only; failure detection is event-driven
        if msg.protocol == PROTO_ACK:
            _, router, seq = msg.payload
            self.pending_acks.pop((msg.src, router, seq), None)
            self.stack.cancel_timer(f"rexmit|{msg.src}|{router}|{seq}")
            return
        if msg.protocol == PROTO_LSA:
            payload: LsaPayload = msg.payload
            _, router, seq, links = payload
            self.send(msg.src, PROTO_ACK, ("ack", router, seq), parent=msg, size_bytes=32)
            if self._install_lsa(router, seq, links):
                self._flood_onward(payload, exclude=msg.src, parent=msg)
            return
        raise ValueError(f"OSPF daemon got unknown protocol {msg.protocol!r}")

    def _flood_onward(self, payload: LsaPayload, exclude: str, parent: Optional[Message]) -> None:
        if self.forward_delay_units > 0:
            # XORP's default 1 s propagation delay: park the LSA and flood
            # it when the delay timer fires.
            _, router, seq, _links = payload
            self.delayed_floods[(router, seq)] = (payload, exclude)
            self.stack.set_timer(self.forward_delay_units, f"fwd|{router}|{seq}")
            return
        for neighbor in self._my_links():
            if neighbor != exclude:
                self._send_lsa(neighbor, payload, parent)

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def on_timer(self, key: str) -> None:
        if key == "hello":
            self.hello_count += 1
            for neighbor in self._my_links():
                self.send(neighbor, PROTO_HELLO, ("hello", self.node_id), size_bytes=24)
            self.stack.set_timer(self.hello_interval_units, "hello")
            return
        if key == "refresh":
            self._originate_lsa(parent=None)
            self.stack.set_timer(self.refresh_interval_units, "refresh")
            return
        if key.startswith("rexmit|"):
            _, dst, router, seq_s = key.split("|")
            seq = int(seq_s)
            if (dst, router, seq) in self.pending_acks and self.live_interfaces.get(dst):
                entry = self.lsdb.get(router)
                if entry is not None and entry[0] == seq:
                    payload: LsaPayload = ("lsa", router, seq, entry[1])
                    self._send_lsa(dst, payload, parent=None)
            return
        if key.startswith("fwd|"):
            _, router, seq_s = key.split("|")
            parked = self.delayed_floods.pop((router, int(seq_s)), None)
            if parked is not None:
                payload, exclude = parked
                entry = self.lsdb.get(router)
                if entry is not None and entry[0] == payload[2]:
                    for neighbor in self._my_links():
                        if neighbor != exclude:
                            self._send_lsa(neighbor, payload, parent=None)
            return
        raise ValueError(f"OSPF daemon got unknown timer {key!r}")

    # ------------------------------------------------------------------
    # external events (interface changes)
    # ------------------------------------------------------------------
    def on_external(self, event: ExternalEvent) -> None:
        if event.kind in (LINK_DOWN, LINK_UP):
            a, b = event.target
            other = b if a == self.node_id else a
            if other not in self.live_interfaces:
                return
            up = event.kind == LINK_UP
            if self.live_interfaces[other] == up:
                return
            self.live_interfaces[other] = up
            if not up:
                # drop retransmit obligations toward the dead interface
                for (dst, router, seq) in [k for k in self.pending_acks if k[0] == other]:
                    self.pending_acks.pop((dst, router, seq), None)
                    self.stack.cancel_timer(f"rexmit|{dst}|{router}|{seq}")
            else:
                # database exchange on adjacency (re)formation: push our
                # LSDB to the neighbor so a healed partition resynchronizes
                # (the stand-in for OSPF's DBD/LSR machinery).
                for router in self.lsdb:
                    if router == self.node_id:
                        continue  # our own LSA is re-originated below anyway
                    seq, links = self.lsdb[router]
                    self._send_lsa(other, ("lsa", router, seq, links), parent=None)
            self._originate_lsa(parent=None)

    # ------------------------------------------------------------------
    # evaluation hooks
    # ------------------------------------------------------------------
    def routing_distances(self) -> Dict[str, int]:
        """Hop distances this router currently believes (the convergence
        harness compares these to ground truth)."""
        return self.distances.as_dict()
