"""Control-plane software substrate.

The daemons here play the role of XORP and Quagga in the paper: real
routing protocol implementations that run *unmodified* on any
:class:`~repro.simnet.node.Stack` -- the uninstrumented baseline, the
DEFINED-RB shim, or the DEFINED-LS lockstep stack.  Per the paper's
instrumentation contract (Section 3) they mark immediate causal
relationships by passing the message being processed as ``parent`` when
sending, and they expose ``snapshot``/``restore`` so the shim can
checkpoint them (the stand-in for ``fork()``).

* :mod:`repro.routing.ospf` -- link-state routing with reliable flooding
  (hello + LSA + ack + retransmit timers), the protocol of the paper's
  evaluation (XORP OSPF 1.6).
* :mod:`repro.routing.bgp`  -- path-vector decision process;
  :class:`~repro.routing.bgp.BuggyXorpBgp` reproduces the XORP 0.4
  MED-ordering bug of Figure 4.
* :mod:`repro.routing.rip`  -- distance-vector with route expiry timers;
  :class:`~repro.routing.rip.BuggyQuaggaRip` reproduces the Quagga
  0.96.5 timer-refresh black hole of Figure 5.
"""

from repro.routing.base import Daemon
from repro.routing.bgp import BgpDaemon, BgpPath, BuggyXorpBgp, CorrectBgp
from repro.routing.damping import DampedRouteMonitor, FlapDampener
from repro.routing.ospf import OspfDaemon
from repro.routing.rib import RouteEntry, Rib
from repro.routing.rip import BuggyQuaggaRip, CorrectRip, RipDaemon
from repro.routing.spf import dijkstra, expected_distances

__all__ = [
    "BgpDaemon",
    "BgpPath",
    "BuggyQuaggaRip",
    "BuggyXorpBgp",
    "CorrectBgp",
    "CorrectRip",
    "Daemon",
    "DampedRouteMonitor",
    "FlapDampener",
    "OspfDaemon",
    "Rib",
    "RipDaemon",
    "RouteEntry",
    "dijkstra",
    "expected_distances",
]
