"""The daemon contract: what control-plane software looks like to DEFINED.

A daemon is event-driven, deterministic, and checkpointable:

* **event-driven** -- all activity happens inside ``on_start``,
  ``on_message``, ``on_timer`` and ``on_external`` callbacks, and all
  effects go through the stack API (``send`` / ``set_timer`` /
  ``cancel_timer``).  No wall-clock reads, no OS randomness.
* **deterministic** -- given the same callback sequence, a daemon makes
  the same decisions and sends the same messages.  (Section 2.5: local
  nondeterminism such as thread scheduling is removed separately; our
  daemons are single-threaded by construction, like the instrumented
  XORP/Quagga of Section 4.)
* **checkpointable** -- ``snapshot``/``restore`` round-trip the complete
  protocol state.  This is the reproduction's stand-in for the paper's
  ``fork()``-based checkpointing.

The causal-marking contract of Section 3 applies: when a send is caused
by the message currently being processed, daemons pass it as ``parent``;
timer- and external-event-triggered sends pass ``parent=None`` and become
*originations* (new causal chains).

**Store-backed daemons.**  Daemons that keep their mutable protocol
state in namespaced sub-stores of ``self.store`` (a
:class:`~repro.core.statestore.StateStore`) set the class flag
``store_backed = True``.  The write-barrier contract applies: every
mutation goes through the namespace API (``ns[key] = value`` /
``del ns[key]``), values are immutable (tuples, ints, strings, frozen
dataclasses), and iteration is in sorted key order.  In exchange, the
DEFINED shims checkpoint the daemon by store *version* -- O(dirty keys)
instead of a full deepcopy per delivered message (the MI scheme's cost,
for real).  Non-store-backed daemons (``store is None``) keep the
classic deepcopy ``snapshot()``/``restore()`` path.
"""

from __future__ import annotations

import abc
import copy
from typing import Any, Dict, Optional

from repro.core.statestore import StateStore, estimate_bytes
from repro.simnet.events import ExternalEvent
from repro.simnet.messages import Message
from repro.simnet.node import Stack


class Daemon(abc.ABC):
    """Base class for routing daemons."""

    #: Subclasses that keep their mutable state in ``self.store``
    #: namespaces (write-barrier contract) set this to True; the DEFINED
    #: shims then checkpoint by store version instead of deepcopy.
    store_backed = False

    def __init__(self, node_id: str, stack: Stack) -> None:
        self.node_id = node_id
        self.stack = stack
        self.store: Optional[StateStore] = StateStore() if self.store_backed else None

    # ------------------------------------------------------------------
    # callbacks (driven by the stack)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def on_start(self) -> None:
        """Boot: install initial state, arm timers, send initial traffic."""

    @abc.abstractmethod
    def on_message(self, msg: Message) -> None:
        """A protocol message was delivered."""

    @abc.abstractmethod
    def on_timer(self, key: str) -> None:
        """The named timer fired."""

    def on_external(self, event: ExternalEvent) -> None:
        """An external event (link/node change, external announcement) was
        observed at this node.  Default: ignore."""

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def state(self) -> Dict[str, Any]:
        """The complete mutable protocol state, as a dict of fields.

        Non-store-backed subclasses return references to their real
        containers (``snapshot`` deep-copies them); store-backed
        subclasses return a materialized plain-dict view.
        """

    @abc.abstractmethod
    def load_state(self, state: Dict[str, Any]) -> None:
        """Install a state dict previously produced by :meth:`state`."""

    def snapshot(self) -> Dict[str, Any]:
        """A deep, independent copy of the protocol state.

        This is the *inspection/roundtrip* API (debugger, tests).  The
        shims' per-delivery checkpoints of store-backed daemons go
        through ``self.store`` versions instead and never call this.
        """
        return copy.deepcopy(self.state())

    def restore(self, snap: Dict[str, Any]) -> None:
        """Restore from a snapshot (the snapshot itself stays pristine so
        it can be restored from again)."""
        self.load_state(copy.deepcopy(snap))

    def state_size_bytes(self) -> int:
        """Rough state footprint used by the memory cost models."""
        if self.store is not None:
            return self.store.live_bytes()
        return _estimate_bytes(self.state())

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def send(
        self,
        dst: str,
        protocol: str,
        payload: Any,
        parent: Optional[Message] = None,
        size_bytes: int = 64,
    ) -> None:
        self.stack.send(dst, protocol, payload, parent=parent, size_bytes=size_bytes)


#: Kept under its old name for existing imports; the implementation
#: lives with the store's byte accounting now.
_estimate_bytes = estimate_bytes
