"""The daemon contract: what control-plane software looks like to DEFINED.

A daemon is event-driven, deterministic, and checkpointable:

* **event-driven** -- all activity happens inside ``on_start``,
  ``on_message``, ``on_timer`` and ``on_external`` callbacks, and all
  effects go through the stack API (``send`` / ``set_timer`` /
  ``cancel_timer``).  No wall-clock reads, no OS randomness.
* **deterministic** -- given the same callback sequence, a daemon makes
  the same decisions and sends the same messages.  (Section 2.5: local
  nondeterminism such as thread scheduling is removed separately; our
  daemons are single-threaded by construction, like the instrumented
  XORP/Quagga of Section 4.)
* **checkpointable** -- ``snapshot``/``restore`` round-trip the complete
  protocol state.  This is the reproduction's stand-in for the paper's
  ``fork()``-based checkpointing.

The causal-marking contract of Section 3 applies: when a send is caused
by the message currently being processed, daemons pass it as ``parent``;
timer- and external-event-triggered sends pass ``parent=None`` and become
*originations* (new causal chains).
"""

from __future__ import annotations

import abc
import copy
from typing import Any, Dict, Optional

from repro.simnet.events import ExternalEvent
from repro.simnet.messages import Message
from repro.simnet.node import Stack


class Daemon(abc.ABC):
    """Base class for routing daemons."""

    def __init__(self, node_id: str, stack: Stack) -> None:
        self.node_id = node_id
        self.stack = stack

    # ------------------------------------------------------------------
    # callbacks (driven by the stack)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def on_start(self) -> None:
        """Boot: install initial state, arm timers, send initial traffic."""

    @abc.abstractmethod
    def on_message(self, msg: Message) -> None:
        """A protocol message was delivered."""

    @abc.abstractmethod
    def on_timer(self, key: str) -> None:
        """The named timer fired."""

    def on_external(self, event: ExternalEvent) -> None:
        """An external event (link/node change, external announcement) was
        observed at this node.  Default: ignore."""

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def state(self) -> Dict[str, Any]:
        """The complete mutable protocol state, as a dict of fields.

        Subclasses return references to their real containers; ``snapshot``
        deep-copies them.
        """

    @abc.abstractmethod
    def load_state(self, state: Dict[str, Any]) -> None:
        """Install a state dict previously produced by :meth:`state`."""

    def snapshot(self) -> Dict[str, Any]:
        """A deep, independent copy of the protocol state."""
        return copy.deepcopy(self.state())

    def restore(self, snap: Dict[str, Any]) -> None:
        """Restore from a snapshot (the snapshot itself stays pristine so
        it can be restored from again)."""
        self.load_state(copy.deepcopy(snap))

    def state_size_bytes(self) -> int:
        """Rough state footprint used by the memory cost models."""
        return _estimate_bytes(self.state())

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def send(
        self,
        dst: str,
        protocol: str,
        payload: Any,
        parent: Optional[Message] = None,
        size_bytes: int = 64,
    ) -> None:
        self.stack.send(dst, protocol, payload, parent=parent, size_bytes=size_bytes)


def _estimate_bytes(value: Any, depth: int = 0) -> int:
    """Cheap recursive size estimate (not sys.getsizeof exactness; the cost
    models only need a stable, monotone proxy)."""
    if depth > 6:
        return 8
    if isinstance(value, dict):
        return 32 + sum(
            _estimate_bytes(k, depth + 1) + _estimate_bytes(v, depth + 1)
            for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return 24 + sum(_estimate_bytes(v, depth + 1) for v in value)
    if isinstance(value, str):
        return 48 + len(value)
    if isinstance(value, (int, float, bool)) or value is None:
        return 16
    return 64
