"""Shortest-path-first computation (Dijkstra) for link-state routing.

Deterministic by construction: ties are broken by node identifier, never
by hash order, so every SPF run over the same link-state database yields
the same distances and next hops on every platform and every run.
"""

from __future__ import annotations

import heapq
from typing import Dict, Mapping, Optional, Tuple

Adjacency = Mapping[str, Mapping[str, int]]


def dijkstra(
    adjacency: Adjacency, source: str
) -> Tuple[Dict[str, int], Dict[str, Optional[str]]]:
    """Single-source shortest paths.

    Returns ``(distances, first_hops)``; ``first_hops[dest]`` is the
    neighbor of ``source`` on the chosen shortest path (``None`` for the
    source itself).  Among equal-cost paths the one through the
    lexicographically smallest first hop wins -- a deterministic
    tie-break.
    """
    INF = float("inf")
    dist: Dict[str, float] = {source: 0}
    first: Dict[str, Optional[str]] = {source: None}
    settled: set = set()
    # heap entries: (distance, first_hop or "", node)
    heap: list = [(0, "", source)]
    while heap:
        d, via, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        dist[u] = d
        first[u] = via if via else None
        for v in sorted(adjacency.get(u, {})):
            w = adjacency[u][v]
            if w < 0:
                raise ValueError(f"negative link cost {w} on {u}-{v}")
            if v in settled:
                continue
            nd = d + w
            v_via = via if via else v
            best = dist.get(v, INF)
            if nd < best or (nd == best and v_via < (first.get(v) or "￿")):
                dist[v] = nd
                first[v] = v_via
                heapq.heappush(heap, (nd, v_via, v))
    return {k: int(v) for k, v in dist.items()}, first


def expected_distances(
    links: Mapping[Tuple[str, str], bool],
    nodes,
    source: str,
    cost: int = 1,
) -> Dict[str, int]:
    """Ground-truth hop distances over the *live* topology.

    ``links`` maps ``(a, b)`` pairs to their up/down state.  Used by the
    evaluation harness to decide when a network has converged: every
    router's computed distances must equal this.
    """
    adjacency: Dict[str, Dict[str, int]] = {n: {} for n in nodes}
    for (a, b), up in links.items():
        if up and a in adjacency and b in adjacency:
            adjacency[a][b] = cost
            adjacency[b][a] = cost
    dist, _ = dijkstra(adjacency, source)
    return dist
