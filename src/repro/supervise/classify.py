"""Failure classification: deterministic result vs transient infrastructure.

The retry loop must never re-run a cell whose outcome is a property of
the *cell* -- a Theorem-1 divergence, an expectation failure, a scenario
bug -- because retrying it burns budget to reproduce the same answer
and, worse, makes the report's execution count lie.  It must retry a
cell whose failure is a property of the *infrastructure* -- the worker
was OOM-killed, the result ring stalled, the pool broke under it --
because the cell itself never got to answer.

Divergences and expectation failures are easy: they arrive as
*successful* results (``error is None``, ``invariant_ok``/``expected_ok``
carrying the verdict) and never enter the classifier at all.  What is
left is error text, from two sources: exceptions surfaced by the worker
future (pool breakage, ring push failures) and ``error`` strings on
reported results (``run_cell`` converts in-worker exceptions to text).
Classification is substring-based over that text -- deliberately so,
because both sources flatten exceptions to ``"TypeName: message"`` and
the fixed-width ring record truncates long messages.

The default is **deterministic**: an unrecognized failure is assumed to
be the cell's own, so it surfaces immediately instead of being retried
into the report three times slower.  Only failure shapes positively
known to be environmental are transient.
"""

from __future__ import annotations

from typing import Optional

#: Classifier verdicts.
TRANSIENT = "transient"
DETERMINISTIC = "deterministic"

#: Substrings of error text that identify environmental failures.  Each
#: entry is a failure the cell did not cause and a re-run can outlive:
#:
#: * ``MemoryError`` -- in-worker allocation failure under memory
#:   pressure (the python-level cousin of an OOM kill);
#: * ``worker process died`` / ``BrokenProcessPool`` / ``pool broken`` --
#:   the worker was killed out from under the cell (OOM killer, operator
#:   SIGKILL, pool teardown);
#: * ``result ring full`` / ``result ring closed`` -- the shared-memory
#:   transport stalled or was abandoned; the cell may well have computed
#:   its answer (see :class:`repro.sweep_stream.ResultPushError`, which
#:   carries it);
#: * ``cell failed to report its result`` -- the legacy streamed path's
#:   synthesized wrapper around a per-cell transport failure.
TRANSIENT_MARKERS = (
    "MemoryError",
    "worker process died",
    "BrokenProcessPool",
    "pool broken",
    "result ring full",
    "result ring closed",
    "cell failed to report its result",
)


def classify_error(error: Optional[str]) -> str:
    """Classify one cell-failure text as transient or deterministic.

    ``None`` (no failure) classifies deterministic: a clean result is
    final by definition.
    """
    if error is None:
        return DETERMINISTIC
    for marker in TRANSIENT_MARKERS:
        if marker in error:
            return TRANSIENT
    return DETERMINISTIC
