"""The supervised executor: deadlines, classified retries, quarantine.

This is the policy layer over the shared-memory streamed transport.  It
keeps the transport's shape -- a :class:`~repro.sweep_stream.ResultRing`
for payloads, windowed future submission for scheduling -- and adds a
supervision loop the legacy path lacks:

* **watchdog**: workers stamp each cell's start on a
  :class:`~repro.supervise.heartbeat.HeartbeatBoard`; the parent polls
  it, confirms an overdue reading across two polls (so a torn slot read
  cannot reap an innocent), SIGKILLs the hung worker, and surfaces the
  cell as ``timed_out``.  A timeout is treated as a *deterministic*
  outcome -- a cell that hangs once will hang again -- so it is never
  retried, and the rest of the grid continues on a replacement pool.
* **classified retries**: failures that are positively environmental
  (see :mod:`repro.supervise.classify`) are re-submitted with bounded
  exponential backoff + deterministic jitter; everything else -- real
  divergences, expectation failures, scenario exceptions -- is final on
  first delivery.  A cell that fails transiently more times than the
  retry budget is **quarantined**: parked with its failure history
  (archived for triage when an artifact directory is configured) so a
  crash-looping cell cannot burn the grid's wall-clock budget.
* **pool generations**: any pool breakage (a reap, an OOM kill, a hard
  crash) ends the current *generation* -- drain the ring, settle every
  in-flight cell (reaped => timed out; otherwise => transient failure),
  then rebuild the pool with a fresh heartbeat board and keep going.
  One hung worker costs one generation, not the grid.

Results that escaped a broken generation still count: the ring is
drained before in-flight cells are settled, and a record always beats a
synthesized failure.  Ring-push failures arrive as
:class:`~repro.sweep_stream.ResultPushError` carrying the worker's
encoded record, so the parent recovers the finished result without
re-executing the cell.

The parent's transport state stays O(window + workers); the per-cell
supervision state is a few integers per cell -- the same order as the
result list the caller is accumulating anyway.
"""

from __future__ import annotations

import os
import random
import shutil
import signal
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.supervise.classify import TRANSIENT, classify_error
from repro.supervise.heartbeat import HeartbeatBoard
from repro.supervise.journal import archive_quarantine, cell_fingerprint

#: Default retry budget when supervision is enabled without an explicit
#: ``retries``: a cell may be re-executed this many times after
#: transient failures before quarantine.
DEFAULT_RETRIES = 2
#: Backoff ladder: base * 2^(failure-1), capped, then jittered into
#: [0.5x, 1.5x) by a fingerprint-seeded stream.
DEFAULT_BACKOFF_BASE_S = 0.05
DEFAULT_BACKOFF_CAP_S = 2.0
#: The parent's poll/confirmation cadence.
_POLL_S = 0.05


@dataclass(frozen=True)
class SupervisionPolicy:
    """What the supervised executor enforces.

    ``cell_timeout_s=None`` disables the watchdog (retries still apply);
    ``retries=0`` disables re-execution (the first transient failure
    quarantines).  Either knob being set is what activates supervision
    in :class:`~repro.sweep.SweepRunner`.
    """

    cell_timeout_s: Optional[float] = None
    retries: int = DEFAULT_RETRIES
    backoff_base_s: float = DEFAULT_BACKOFF_BASE_S
    backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S

    def __post_init__(self) -> None:
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ValueError("cell timeout must be positive")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_base_s <= 0 or self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("backoff ladder must satisfy 0 < base <= cap")


def backoff_delay(
    policy: SupervisionPolicy, fingerprint: str, failures: int
) -> float:
    """Delay before retry number ``failures`` of one cell.

    Exponential in the consecutive-failure count, capped by the policy,
    then jittered into ``[0.5x, 1.5x)`` so simultaneous failers do not
    retry in lockstep.  The jitter stream is seeded from the cell's
    content fingerprint and the failure ordinal -- deterministic for a
    given (cell, attempt), per the repo's no-ambient-entropy contract.
    """
    exponential = min(
        policy.backoff_cap_s,
        policy.backoff_base_s * (2 ** max(failures - 1, 0)),
    )
    rng = random.Random(f"supervise-backoff|{fingerprint}|{failures}")
    return exponential * (0.5 + rng.random())


# ----------------------------------------------------------------------
# worker-process plumbing (module-level so it pickles by reference)
# ----------------------------------------------------------------------

_WORKER_BOARD: Optional[HeartbeatBoard] = None
_WORKER_SLOT: Optional[int] = None


def supervised_worker_init(
    ring_name: str, lock, capacity: int, board_name: str, claim_dir: str
) -> None:
    """Pool initializer: attach the result ring, claim a heartbeat slot.

    Slot claiming must not touch any cross-process lock: pool breakage
    SIGTERMs sibling workers at arbitrary instructions, and a worker
    killed inside a (non-robust) semaphore's critical section poisons it
    for every later pool generation -- the exact hang this layer exists
    to prevent.  Instead each slot is claimed by ``O_CREAT | O_EXCL`` on
    a per-generation lockfile: atomic in the kernel, never blocking, and
    a corpse's claim simply retires its slot for the generation.  Boards
    (and claim directories) are per pool generation, so a replacement
    pool never fights a dead predecessor for slots.
    """
    from repro.sweep_stream import stream_worker_init

    stream_worker_init(ring_name, lock, capacity)
    global _WORKER_BOARD, _WORKER_SLOT
    board = HeartbeatBoard.attach(board_name)
    pid = os.getpid()
    for slot in range(board.slots):
        try:
            fd = os.open(
                os.path.join(claim_dir, f"slot-{slot:04d}"),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            continue
        try:
            os.write(fd, f"{pid}\n".encode("ascii"))
        finally:
            os.close(fd)
        board.claim(slot, pid)
        _WORKER_BOARD = board
        _WORKER_SLOT = slot
        return
    raise RuntimeError(
        f"no free heartbeat slot on board of {board.slots} (pool oversubscribed?)"
    )


def run_supervised_cell(index: int, cell) -> int:
    """Execute one cell under heartbeat cover and stream its result."""
    from repro.sweep_stream import run_streamed_cell

    assert _WORKER_BOARD is not None and _WORKER_SLOT is not None, (
        "worker not attached to a heartbeat board"
    )
    pid = os.getpid()
    _WORKER_BOARD.begin(_WORKER_SLOT, pid, index)
    try:
        return run_streamed_cell(index, cell)
    finally:
        _WORKER_BOARD.clear(_WORKER_SLOT, pid)


# ----------------------------------------------------------------------
# parent-side supervision loop
# ----------------------------------------------------------------------

@dataclass
class _CellState:
    """Per-cell supervision bookkeeping."""

    attempts: int = 0          # executions submitted so far
    failures: int = 0          # consecutive transient failures
    retry_at: float = 0.0      # monotonic instant the next attempt may start
    errors: List[str] = field(default_factory=list)


def _error_result(cell, error: str):
    from repro.sweep import CellResult

    return CellResult(
        scenario=cell.scenario,
        seed=cell.seed,
        mode=cell.mode,
        repeat=cell.repeat,
        jitter_seed=cell.jitter_seed,
        window_us=cell.window_us,
        jitter_us=cell.jitter_us,
        snapshots=cell.snapshots,
        error=error,
    )


def inline_supervised_iter(
    cells: Sequence,
    policy: SupervisionPolicy,
    artifact_dir: Optional[str] = None,
    progress: Optional[Callable] = None,
):
    """Single-process supervision: classified retries without a pool.

    Serves ``workers=1`` grids with a retry budget but no deadline (a
    deadline needs a separate process to reap, so the runner promotes
    those to a pool of one).  Semantics match the pooled loop: transient
    in-cell failures retry with backoff, exhaustion quarantines,
    deterministic outcomes are final on first execution.
    """
    from repro.sweep import run_cell

    for index, cell in enumerate(cells):
        fingerprint = cell_fingerprint(cell)
        attempts = 0
        errors: List[str] = []
        while True:
            attempts += 1
            result = run_cell(cell)
            if (
                result.error is not None
                and classify_error(result.error) == TRANSIENT
            ):
                errors.append(result.error)
                if len(errors) > policy.retries:
                    archive_quarantine(
                        artifact_dir or cell.artifact_dir, cell, errors
                    )
                    result = _error_result(
                        cell,
                        f"quarantined after {len(errors)} consecutive "
                        f"transient failures; last: {result.error}",
                    )
                    result = replace(
                        result, attempts=attempts, outcome="quarantined"
                    )
                    break
                time.sleep(backoff_delay(policy, fingerprint, len(errors)))
                continue
            result = replace(result, attempts=attempts, outcome="completed")
            break
        if progress is not None:
            progress(result)
        yield index, result


def supervised_iter(
    cells: Sequence,
    *,
    workers: int,
    ctx,
    policy: SupervisionPolicy,
    ring_capacity: int,
    artifact_dir: Optional[str] = None,
    progress: Optional[Callable] = None,
):
    """Run ``cells`` on a supervised worker pool; yield ``(index, result)``.

    Yields in completion order.  Every cell is eventually yielded with
    exactly one of the outcomes ``completed`` (a result arrived, error
    or not), ``timed_out`` (reaped past the deadline), or
    ``quarantined`` (transient retry budget exhausted).
    """
    from concurrent.futures import ProcessPoolExecutor, wait
    from concurrent.futures.process import BrokenProcessPool

    from repro.sweep import _merge_streamed
    from repro.sweep_stream import ResultPushError, ResultRing, decode_record

    cells = list(cells)
    if not cells:
        return
    states = [_CellState() for _ in cells]
    fingerprints = [cell_fingerprint(cell) for cell in cells]
    done = [False] * len(cells)
    waiting: Set[int] = set()
    outbox: List = []
    window = max(4 * workers, 16)

    def flush():
        while outbox:
            index, result = outbox.pop(0)
            if progress is not None:
                progress(result)
            yield index, result

    def deliver(index: int, result, outcome: str = "completed") -> None:
        if done[index]:
            return
        done[index] = True
        waiting.discard(index)
        outbox.append((
            index,
            replace(
                result,
                attempts=max(states[index].attempts, 1),
                outcome=outcome,
            ),
        ))

    def transient_failure(index: int, error: str) -> None:
        if done[index]:
            return
        state = states[index]
        state.failures += 1
        state.errors.append(error)
        if state.failures > policy.retries:
            archive_quarantine(
                artifact_dir or cells[index].artifact_dir,
                cells[index],
                state.errors,
            )
            deliver(
                index,
                _error_result(
                    cells[index],
                    f"quarantined after {state.failures} consecutive "
                    f"transient failures; last: {error}",
                ),
                outcome="quarantined",
            )
        else:
            state.retry_at = time.monotonic() + backoff_delay(
                policy, fingerprints[index], state.failures
            )
            waiting.add(index)

    def settle_reported(index: int, result) -> None:
        """A result actually arrived: final unless its error is transient."""
        if result.error is not None and classify_error(result.error) == TRANSIENT:
            transient_failure(index, result.error)
        else:
            deliver(index, result)

    ring = ResultRing.create(capacity=ring_capacity, lock=ctx.Lock())

    def drain() -> None:
        for raw in ring.pop_all():
            rindex, payload = decode_record(raw)
            if done[rindex]:
                continue
            settle_reported(rindex, _merge_streamed(cells[rindex], payload))

    #: Consecutive generations that broke without advancing any cell's
    #: state: a pool that cannot even start (initializer crash, fork
    #: failure) must become a loud error, not an infinite rebuild loop.
    barren_generations = 0

    def _progress_marker() -> tuple:
        return (
            sum(state.attempts for state in states),
            sum(state.failures for state in states),
            sum(done),
        )

    try:
        while not all(done):
            # -- one pool generation --------------------------------------
            before = _progress_marker()
            board = HeartbeatBoard.create(workers)
            claim_dir = tempfile.mkdtemp(prefix="repro-heartbeat-")
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=ctx,
                initializer=supervised_worker_init,
                initargs=(
                    ring.name, ring.lock, ring.capacity, board.name, claim_dir
                ),
            )
            pending: Dict = {}          # future -> cell index
            in_flight: Set[int] = set()
            reaped: Dict[int, int] = {}  # cell index -> reaped worker pid
            prev_overdue: Set = set()
            broken: Optional[BaseException] = None
            backlog = deque(
                index
                for index in range(len(cells))
                if not done[index] and index not in waiting
            )
            try:
                while True:
                    now = time.monotonic()
                    for index in sorted(waiting):
                        if states[index].retry_at <= now:
                            waiting.discard(index)
                            backlog.append(index)
                    while broken is None and backlog and len(pending) < window:
                        index = backlog.popleft()
                        if done[index]:
                            continue
                        try:
                            future = pool.submit(
                                run_supervised_cell, index, cells[index]
                            )
                        except Exception as exc:  # pool broke mid-submit
                            broken = exc
                            backlog.appendleft(index)
                            break
                        states[index].attempts += 1
                        pending[future] = index
                        in_flight.add(index)
                    if not pending:
                        drain()
                        yield from flush()
                        if broken is not None or all(done):
                            break
                        if backlog:
                            continue
                        if waiting:
                            next_retry = min(
                                states[index].retry_at for index in waiting
                            )
                            time.sleep(
                                min(
                                    max(next_retry - time.monotonic(), 0.0),
                                    _POLL_S,
                                )
                            )
                            continue
                        break  # pragma: no cover - defensive: no work left
                    finished, _ = wait(list(pending), timeout=_POLL_S)
                    for future in finished:
                        index = pending.pop(future)
                        exc = future.exception()
                        if exc is None:
                            in_flight.discard(index)
                            continue
                        if isinstance(exc, BrokenProcessPool):
                            # the pool broke under this cell -- leave it
                            # in-flight so teardown settles it (after the
                            # drain, so an escaped record still wins)
                            if broken is None:
                                broken = exc
                            continue
                        in_flight.discard(index)
                        if isinstance(exc, ResultPushError):
                            # the cell finished; its record rode the
                            # exception instead of the ring -- recover it
                            try:
                                _idx, payload = decode_record(exc.record)
                            except Exception as decode_exc:
                                transient_failure(
                                    index,
                                    f"{type(exc).__name__}: {exc} "
                                    f"(record undecodable: {decode_exc})",
                                )
                            else:
                                if not done[index]:
                                    settle_reported(
                                        index,
                                        _merge_streamed(cells[index], payload),
                                    )
                            continue
                        text = f"{type(exc).__name__}: {exc}"
                        if classify_error(text) == TRANSIENT:
                            transient_failure(index, text)
                        else:
                            deliver(index, _error_result(cells[index], text))
                    drain()
                    yield from flush()
                    if policy.cell_timeout_s is not None and broken is None:
                        overdue = set(board.overdue(policy.cell_timeout_s))
                        # reap only readings stable across two polls: a
                        # torn slot read must not kill an innocent worker
                        for slot, pid, index, start_ns in overdue & prev_overdue:
                            try:
                                os.kill(pid, signal.SIGKILL)
                            except (ProcessLookupError, PermissionError):
                                pass
                            reaped[index] = pid
                            if broken is None:
                                broken = RuntimeError(
                                    f"hung worker pid {pid} reaped "
                                    f"(cell {index} past deadline)"
                                )
                        prev_overdue = overdue
                    if broken is not None:
                        break
            except GeneratorExit:
                ring.close_for_writers()
                pool.shutdown(wait=False, cancel_futures=True)
                board.destroy()
                shutil.rmtree(claim_dir, ignore_errors=True)
                raise
            # -- generation teardown --------------------------------------
            # join workers only when the pool is healthy; after a reap or
            # hard crash the executor's own cleanup handles the corpses
            pool.shutdown(wait=broken is None, cancel_futures=True)
            # records that escaped before the breakage still count, and
            # must win over synthesized outcomes below
            drain()
            # the board knows which in-flight cells were actually
            # *executing* when the generation died: their slots are still
            # stamped (a crashed worker never reaches clear()).  Cells
            # whose futures broke while merely queued are collateral --
            # they go back to the backlog with no failure mark, so a
            # crash-looping neighbour cannot quarantine innocents.
            executing = {entry[2] for entry in board.active()}
            executing.update(reaped)
            for index in sorted(in_flight):
                if done[index]:
                    continue
                pid = reaped.get(index)
                if pid is not None:
                    deliver(
                        index,
                        _error_result(
                            cells[index],
                            f"cell exceeded the {policy.cell_timeout_s:g}s "
                            f"wall-clock deadline (worker pid {pid} reaped)",
                        ),
                        outcome="timed_out",
                    )
                elif index in executing:
                    transient_failure(
                        index,
                        "worker pool broken while the cell was executing"
                        + (f": {broken}" if broken is not None else ""),
                    )
                # else: queued when the pool broke -- next generation's
                # backlog rebuild resubmits it, penalty-free
            board.destroy()
            shutil.rmtree(claim_dir, ignore_errors=True)
            if broken is not None and _progress_marker() == before:
                barren_generations += 1
                if barren_generations >= 3:
                    for index in range(len(cells)):
                        if not done[index]:
                            deliver(
                                index,
                                _error_result(
                                    cells[index],
                                    "supervised worker pool failed to start "
                                    f"after {barren_generations} attempts: "
                                    f"{broken}",
                                ),
                            )
            else:
                barren_generations = 0
            yield from flush()
    finally:
        ring.destroy()
