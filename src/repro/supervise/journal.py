"""Durable, append-only cell journals: the resume substrate.

A journal is a directory of immutable ``segment-NNNNNNNN.jsonl``
files.  Each segment is written whole to a temp name and
``os.replace``\\ d into place, so a crash -- of the sweep or the host --
leaves either a complete segment or no segment, never a torn one.  One
record is one canonical-JSON line keyed by the cell's **content
fingerprint**: a sha256 over exactly the identity fields that determine
the cell's outcome (scenario, seed, mode, repeat, jitter seed, window
and jitter overrides, invariant-check flag, snapshot strategy).  The
artifact directory is deliberately excluded -- where divergence bundles
land does not change what the cell computes, and a resumed run may
archive elsewhere.

Cells are pure functions of that identity (the repo's founding
invariant), so a journaled ``completed`` record *is* the cell's result:
``repro sweep --resume <dir>`` replays it into the report instead of
re-executing, and the merged report is semantically identical to an
uninterrupted run (``SweepReport.semantic_digest`` pins this).  Records
for ``timed_out`` and ``quarantined`` cells are journaled too -- they
document coverage -- but are *not* skippable: a resume re-runs them,
because their absence of an answer is exactly what a retry under better
conditions might fix.

Later records win: a cell journaled as quarantined by one run and
completed by its resume resolves to completed.  Segment numbering
continues across resumes (the writer scans the directory once), so a
twice-interrupted grid keeps one linear history.
"""

from __future__ import annotations

import hashlib
import os
import re
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.artifact.bundle import canonical_json
from repro.core.history import WindowHeadroomStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sweep import CellResult, SweepCell

#: Identity fields the fingerprint covers, in canonical order.  Adding a
#: semantically relevant field to :class:`~repro.sweep.SweepCell` must
#: extend this tuple, or resumed grids could alias distinct cells.
IDENTITY_FIELDS = (
    "scenario",
    "seed",
    "mode",
    "repeat",
    "jitter_seed",
    "window_us",
    "jitter_us",
    "check_invariant",
    "snapshots",
)

#: Journal outcomes a resume may skip: the cell produced its final
#: answer.  ``resumed`` is skippable so a resume-of-a-resume still
#: short-circuits.
SKIPPABLE_OUTCOMES = frozenset({"completed", "resumed"})

_SEGMENT_RE = re.compile(r"^segment-(\d{8})\.jsonl$")

#: Semantic result fields carried by a journal record, beyond identity.
_PAYLOAD_FIELDS = (
    "fingerprint",
    "replay_fingerprint",
    "invariant_ok",
    "expected_ok",
    "late_deliveries",
    "rollbacks",
    "deliveries",
    "recording_bytes",
    "wall_seconds",
    "error",
    "attempts",
)


def cell_identity(cell: "SweepCell") -> Dict:
    """The fingerprinted identity of one cell, as a plain dict."""
    return {field: getattr(cell, field) for field in IDENTITY_FIELDS}


def cell_fingerprint(cell: "SweepCell") -> str:
    """Content-address one grid cell: sha256 over its canonical identity."""
    return hashlib.sha256(
        canonical_json(cell_identity(cell)).encode("ascii")
    ).hexdigest()


def result_to_payload(result: "CellResult") -> Dict:
    """Serialize a result's semantic fields (identity travels separately)."""
    payload = {field: getattr(result, field) for field in _PAYLOAD_FIELDS}
    payload["headroom"] = (
        result.headroom.to_dict() if result.headroom is not None else None
    )
    payload["node_headroom"] = (
        {node: hr.to_dict() for node, hr in sorted(result.node_headroom.items())}
        if result.node_headroom
        else None
    )
    return payload


def payload_to_result(cell: "SweepCell", payload: Dict) -> "CellResult":
    """Rebuild a :class:`~repro.sweep.CellResult` from a journal payload.

    Identity comes from the *current* grid's cell (it fingerprint-matched
    the record, so the fields agree); the payload supplies everything
    else.  The rebuilt result carries ``outcome="resumed"`` so coverage
    accounting can distinguish replayed cells from executed ones.
    """
    from repro.sweep import CellResult

    fields = {key: payload.get(key) for key in _PAYLOAD_FIELDS}
    fields["late_deliveries"] = int(fields["late_deliveries"] or 0)
    fields["rollbacks"] = int(fields["rollbacks"] or 0)
    fields["deliveries"] = int(fields["deliveries"] or 0)
    fields["wall_seconds"] = float(fields["wall_seconds"] or 0.0)
    fields["fingerprint"] = fields["fingerprint"] or ""
    fields["attempts"] = int(fields.get("attempts") or 1)
    headroom = payload.get("headroom")
    node_headroom = payload.get("node_headroom")
    return CellResult(
        scenario=cell.scenario,
        seed=cell.seed,
        mode=cell.mode,
        repeat=cell.repeat,
        jitter_seed=cell.jitter_seed,
        window_us=cell.window_us,
        jitter_us=cell.jitter_us,
        snapshots=cell.snapshots,
        headroom=WindowHeadroomStats(**headroom) if headroom else None,
        node_headroom=(
            {node: WindowHeadroomStats(**hr) for node, hr in node_headroom.items()}
            if node_headroom
            else None
        ),
        outcome="resumed",
        **fields,
    )


class CellJournal:
    """The write side: one crash-safe segment per recorded cell.

    A segment per record sounds heavy but is the cheapest arrangement
    that is *unconditionally* crash-safe (rename is atomic; appends are
    not) -- and a cell takes orders of magnitude longer to execute than
    a rename takes to land.  Readers never see partial lines.
    """

    def __init__(self, directory: str) -> None:
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self._seq = self._next_seq()

    def _next_seq(self) -> int:
        highest = -1
        for entry in os.listdir(self.directory):
            match = _SEGMENT_RE.match(entry)
            if match:
                highest = max(highest, int(match.group(1)))
        return highest + 1

    def record(self, cell: "SweepCell", result: "CellResult") -> str:
        """Durably journal one cell outcome; returns the segment path."""
        doc = {
            "v": 1,
            "fingerprint": cell_fingerprint(cell),
            "cell": cell_identity(cell),
            "outcome": result.outcome,
            "result": result_to_payload(result),
        }
        final = os.path.join(
            self.directory, f"segment-{self._seq:08d}.jsonl"
        )
        tmp = os.path.join(
            self.directory, f".segment-{self._seq:08d}.{os.getpid()}.tmp"
        )
        with open(tmp, "w", encoding="ascii") as fh:
            fh.write(canonical_json(doc) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
        self._seq += 1
        return final


def load_records(directory: str) -> Dict[str, Dict]:
    """Read a journal directory into ``fingerprint -> last record``.

    Segments are replayed in name order (= write order: numbering is
    monotonic across resumes), so the returned record per fingerprint is
    the most recent outcome.  Malformed lines are impossible by
    construction (rename-atomic segments) and therefore raise.
    """
    import json

    try:
        entries = sorted(
            entry for entry in os.listdir(directory) if _SEGMENT_RE.match(entry)
        )
    except FileNotFoundError:
        raise FileNotFoundError(
            f"resume journal directory does not exist: {directory!r}"
        ) from None
    records: Dict[str, Dict] = {}
    for entry in entries:
        with open(os.path.join(directory, entry), encoding="ascii") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                doc = json.loads(line)
                records[doc["fingerprint"]] = doc
    return records


def load_completed(directory: str) -> Dict[str, Dict]:
    """The resumable subset of a journal: fingerprints whose *latest*
    outcome is final (see :data:`SKIPPABLE_OUTCOMES`)."""
    return {
        fingerprint: doc
        for fingerprint, doc in load_records(directory).items()
        if doc.get("outcome") in SKIPPABLE_OUTCOMES
    }


def journal_summary(directory: str) -> Dict[str, int]:
    """Outcome counts over a journal's latest records (triage helper)."""
    counts: Dict[str, int] = {}
    for doc in load_records(directory).values():
        outcome = str(doc.get("outcome"))
        counts[outcome] = counts.get(outcome, 0) + 1
    return counts


def quarantine_path(artifact_dir: str, fingerprint: str) -> str:
    """Where a quarantined cell's triage record lands."""
    return os.path.join(artifact_dir, f"quarantine-{fingerprint[:12]}.json")


def archive_quarantine(
    artifact_dir: Optional[str],
    cell: "SweepCell",
    errors: List[str],
) -> Optional[str]:
    """Write a quarantined cell's identity + failure history for triage.

    Like divergence bundles, quarantine records are a debugging
    convenience: I/O failure degrades to a warning, never sinks the
    sweep.  Returns the path written, or ``None``.
    """
    if not artifact_dir:
        return None
    fingerprint = cell_fingerprint(cell)
    doc = {
        "v": 1,
        "fingerprint": fingerprint,
        "cell": cell_identity(cell),
        "consecutive_transient_failures": len(errors),
        "failures": list(errors),
    }
    path = quarantine_path(artifact_dir, fingerprint)
    tmp = f"{path}.{os.getpid()}.tmp"
    try:
        os.makedirs(artifact_dir, exist_ok=True)
        with open(tmp, "w", encoding="ascii") as fh:
            fh.write(canonical_json(doc) + "\n")
        os.replace(tmp, path)
        return path
    except OSError as exc:  # pragma: no cover - disk-full/permission paths
        import warnings

        warnings.warn(
            f"could not archive quarantine record for "
            f"{cell.scenario}/seed={cell.seed}: {exc}",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
