"""Supervised sweep execution: deadlines, classified retries, journals.

The grid runner's crash-isolation story (one bad cell cannot sink a
sweep) stops short of three failure shapes this package covers:

* a *hung* worker -- an infinite loop or a wedged syscall -- stalls the
  whole grid forever, because nothing ever reaps it;
* a *transient* infrastructure failure (worker SIGKILLed by the OOM
  killer, a result-ring push timing out under a stalled consumer) is
  indistinguishable in the report from a real Theorem-1 divergence; and
* an *interrupted* sweep throws away every completed cell, even though
  cells are pure functions of their identity and therefore idempotent.

:mod:`repro.supervise` adds, respectively: a heartbeat-based watchdog
with per-cell wall-clock deadlines (:mod:`.heartbeat`,
:mod:`.executor`), a failure classifier + bounded-backoff retry loop
with crash-loop quarantine (:mod:`.classify`, :mod:`.executor`), and a
durable append-only cell journal keyed by content fingerprint that makes
``repro sweep --resume`` skip completed cells (:mod:`.journal`).

The package is deliberately *policy*, layered on top of the existing
transports: :class:`~repro.sweep.SweepRunner` activates it when a
deadline or retry budget is configured and stays byte-for-byte on the
legacy paths otherwise.
"""

from repro.supervise.classify import (
    DETERMINISTIC,
    TRANSIENT,
    classify_error,
)
from repro.supervise.executor import (
    SupervisionPolicy,
    backoff_delay,
    inline_supervised_iter,
    supervised_iter,
)
from repro.supervise.heartbeat import HeartbeatBoard
from repro.supervise.journal import (
    CellJournal,
    SKIPPABLE_OUTCOMES,
    cell_fingerprint,
    load_completed,
    load_records,
    payload_to_result,
    result_to_payload,
)

__all__ = [
    "DETERMINISTIC",
    "TRANSIENT",
    "classify_error",
    "SupervisionPolicy",
    "backoff_delay",
    "inline_supervised_iter",
    "supervised_iter",
    "HeartbeatBoard",
    "CellJournal",
    "SKIPPABLE_OUTCOMES",
    "cell_fingerprint",
    "load_completed",
    "load_records",
    "payload_to_result",
    "result_to_payload",
]
