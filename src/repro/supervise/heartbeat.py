"""A shared-memory heartbeat board: who is running what, since when.

The watchdog problem is inverted visibility: the parent knows which
*futures* are outstanding but not which *worker* is executing which cell
or for how long -- a hung cell and a deeply queued cell look identical
from the executor API.  The board closes that gap with one fixed-width
slot per pool worker in a :mod:`multiprocessing.shared_memory` segment:

* at pool init each worker claims a slot (an externally allocated index)
  and stamps its pid;
* at cell start it writes ``(pid, cell_index + 1, start_ns)``; at cell
  end it zeroes the cell field;
* the parent polls slots and compares ``start_ns`` against its own
  clock.

Timestamps are ``time.monotonic_ns()``.  On Linux that is
``CLOCK_MONOTONIC``, whose epoch is the boot time *of the machine*, not
of the process -- so a worker's stamp is directly comparable to the
parent's reading, with no cross-process clock handshake.  (The sweep's
worker pools are same-host by construction; the future distributed
fabric will need heartbeats *messages*, not shared clocks.)

Slots are written lock-free: each slot has exactly one writer (its
worker), and the parent only reads.  A torn read across the three
8-byte fields is theoretically possible and practically harmless -- the
watchdog double-reads an overdue slot across a confirmation delay and
only reaps when both reads agree on (pid, cell, start), so a slot caught
mid-update simply waits one more poll.
"""

from __future__ import annotations

import struct
import time
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

#: Header: slot count.
_HEADER = struct.Struct("<Q")
#: Slot: worker pid, active cell index + 1 (0 = idle), start monotonic ns.
_SLOT = struct.Struct("<QQQ")
_DATA_OFFSET = 16


class HeartbeatBoard:
    """One slot per worker; see the module docstring for the protocol."""

    def __init__(
        self, shm: shared_memory.SharedMemory, slots: int, owner: bool
    ) -> None:
        self.shm = shm
        self.slots = slots
        self._owner = owner

    # -- construction --------------------------------------------------
    @classmethod
    def create(cls, slots: int) -> "HeartbeatBoard":
        if slots < 1:
            raise ValueError("heartbeat board needs at least one slot")
        size = _DATA_OFFSET + slots * _SLOT.size
        shm = shared_memory.SharedMemory(create=True, size=size)
        shm.buf[:size] = b"\x00" * size
        _HEADER.pack_into(shm.buf, 0, slots)
        return cls(shm, slots, owner=True)

    @classmethod
    def attach(cls, name: str) -> "HeartbeatBoard":
        shm = shared_memory.SharedMemory(name=name)
        (slots,) = _HEADER.unpack_from(shm.buf, 0)
        return cls(shm, slots, owner=False)

    @property
    def name(self) -> str:
        return self.shm.name

    # -- worker side ---------------------------------------------------
    def _write(self, slot: int, pid: int, cell_plus1: int, start_ns: int) -> None:
        _SLOT.pack_into(
            self.shm.buf, _DATA_OFFSET + slot * _SLOT.size, pid, cell_plus1, start_ns
        )

    def claim(self, slot: int, pid: int) -> None:
        """Register this worker in its slot (idle, no active cell)."""
        if not 0 <= slot < self.slots:
            raise ValueError(f"slot {slot} outside board of {self.slots}")
        self._write(slot, pid, 0, 0)

    def begin(self, slot: int, pid: int, cell_index: int) -> None:
        """Stamp the start of one cell execution."""
        self._write(slot, pid, cell_index + 1, time.monotonic_ns())

    def clear(self, slot: int, pid: int) -> None:
        """Mark the slot idle again (cell finished, however it finished)."""
        self._write(slot, pid, 0, 0)

    # -- parent side ---------------------------------------------------
    def read(self, slot: int) -> Tuple[int, int, int]:
        """Raw slot contents: (pid, cell_index + 1, start_ns)."""
        return _SLOT.unpack_from(self.shm.buf, _DATA_OFFSET + slot * _SLOT.size)

    def active(self) -> List[Tuple[int, int, int, int]]:
        """Every busy slot as (slot, pid, cell_index, start_ns)."""
        out = []
        for slot in range(self.slots):
            pid, cell_plus1, start_ns = self.read(slot)
            if pid and cell_plus1:
                out.append((slot, pid, cell_plus1 - 1, start_ns))
        return out

    def overdue(
        self, timeout_s: float, now_ns: Optional[int] = None
    ) -> List[Tuple[int, int, int, int]]:
        """Busy slots whose cell has exceeded the deadline, as
        (slot, pid, cell_index, start_ns)."""
        if now_ns is None:
            now_ns = time.monotonic_ns()
        limit_ns = int(timeout_s * 1_000_000_000)
        return [
            entry for entry in self.active() if now_ns - entry[3] > limit_ns
        ]

    # -- lifecycle ------------------------------------------------------
    def destroy(self) -> None:
        """Close, and unlink if this end owns the segment."""
        try:
            self.shm.close()
        finally:
            if self._owner:
                try:
                    self.shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
