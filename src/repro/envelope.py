"""Window-envelope mapper: measure the jitter/topology envelope of the
history window, then recommend a window that is *checked*, not guessed.

The DEFINED-RB shim guarantees deterministic delivery only inside its
sliding history window (:meth:`~repro.core.shim.DefinedShim.window_us`).
PR 3 made slack exhaustion loud -- every late arrival emits a
:class:`~repro.core.shim.HistoryWindowWarning` with a deficit lower
bound -- but "what ``window_us`` do I need for this topology at this
jitter level" still took trial and error.  This module closes that loop:

* :class:`EnvelopeRunner` grids **delivery jitter** x **window_us** x
  **topology size** (the ``name@N`` sized Waxman scenarios) and runs
  every cell through the ordinary sweep machinery
  (:meth:`~repro.sweep.SweepRunner.run_cells`, so ``workers > 1``
  streams results through the shared-memory ring).  Mapping cells run
  with the Theorem-1 replay *off* -- deliberately undersized windows
  forfeit determinism by construction, and the point of the pass is to
  measure by how much;
* each cell captures the **full slack-deficit distribution** -- count,
  max, quantiles -- as a :class:`~repro.core.history.WindowHeadroomStats`
  riding the fixed-width result record, instead of only the escalating
  warnings;
* :meth:`EnvelopeRunner.suggest_window` turns the measured distribution
  into a recommendation: every deficit is a lower bound on the absolute
  reach (``window + deficit = age of the pruned predecessor``) the
  window needed, so the suggestion is the target-quantile reach plus a
  safety margin;
* the recommendation is **self-checked**: :meth:`EnvelopeRunner.run`
  re-runs the whole (scenario x jitter x seed) grid at the suggested
  window -- replay checks back on -- and escalates until the re-run is
  deficit-free (bounded rounds).  The :class:`EnvelopeReport` carries
  the verification cells, so "safe" is an artifact, not a claim.

The jitter axis is per-packet delivery jitter in microseconds -- the
quantity the window formula's slack term exists to absorb (the 300 ms
regime of ``tests/test_window_headroom.py``).  The boundary-jitter
fuzzer composes: ``boundary_jitter_us`` wraps every scenario in
:func:`repro.sweep.jittered`, snapping external events onto beacon-group
boundaries (where pruning happens) before the grid runs.

CLI: ``repro envelope --scenarios flap-storm@20 --jitters 0,50,300
--windows auto --suggest``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import render_headroom, render_matrix, render_table
from repro.core.shim import default_window_us
from repro.sweep import (
    CellResult,
    SweepCell,
    SweepRunner,
    canonical_scenario_name,
    get_scenario,
    sized_spec,
)
from repro.topology import to_network

#: Suggested windows are rounded up to this granularity: sub-millisecond
#: precision would be false precision on top of lower-bound deficits.
WINDOW_GRANULARITY_US = 1_000

#: Verification escalation rounds before giving up.  Deficits are lower
#: bounds, so a suggestion can come up short once; twice means the
#: margin, not the measurement, is the problem and the report says so.
MAX_VERIFY_ROUNDS = 3

#: ``--windows auto``: map the envelope at these fractions of the
#: network-derived default window.  The fractions deliberately reach
#: into undersized territory -- a grid that never exhausts its slack
#: measures nothing.
AUTO_WINDOW_FRACTIONS = (0.25, 0.5, 1.0)


def scenario_default_window_us(name: str, seed: int = 1) -> int:
    """The default history window the shims would derive for this
    scenario's topology at this seed (:func:`default_window_us` over the
    instantiated network)."""
    scenario = get_scenario(name)
    graph = scenario.topology(seed)
    return default_window_us(
        to_network(graph, seed=seed, jitter_us=scenario.jitter_us)
    )


@dataclass(frozen=True)
class WindowSuggestion:
    """The mapper's recommendation plus its self-consistency check."""

    window_us: int
    target_quantile: float
    margin: float
    #: True once a full-grid re-run at ``window_us`` finished with zero
    #: slack deficits, no errors, *and* every Theorem-1 replay check held
    #: -- the self-consistency check the suggestion is not allowed to
    #: skip.  Since the chain-delay spill fix, the lockstep replay is
    #: exact at any delivery-jitter level, so the replay check is part of
    #: the verification rather than a separately-reported caveat.
    verified: bool = False
    #: Whether the verification re-run's Theorem-1 checks (production vs
    #: DEFINED-LS replay) held.  Retained for report-format
    #: compatibility; it can no longer disagree with ``verified`` -- a
    #: suggestion whose clean round saw a replay divergence does not
    #: verify (and construction asserts the agreement).  ``None`` until a
    #: deficit-free round ran.
    invariant_clean: Optional[bool] = None
    #: Verification attempts as ``(window_us, deficit_count, errors)``;
    #: more than one entry means the first suggestion escalated.
    rounds: Tuple[Tuple[int, int, int], ...] = ()
    #: Per-node minimal safe windows, derived from the per-node headroom
    #: the mapping cells carried (the worst-offender slots of the result
    #: record).  ``window_us`` above is the global answer -- the window
    #: every shim in the topology can run at; these are the per-node
    #: lower bounds behind it, so a heterogeneous deployment can size
    #: the quiet nodes tighter than the hot ones.  Sorted worst-first.
    node_windows_us: Tuple[Tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.verified and self.invariant_clean is not True:
            raise ValueError(
                "a verified suggestion requires invariant_clean=True: "
                "verified subsumes the Theorem-1 replay check"
            )

    def to_dict(self) -> Dict:
        return {
            "window_us": self.window_us,
            "target_quantile": self.target_quantile,
            "margin": self.margin,
            "verified": self.verified,
            "invariant_clean": self.invariant_clean,
            "rounds": [
                {"window_us": w, "deficits": d, "errors": e}
                for w, d, e in self.rounds
            ],
            "node_windows_us": {n: w for n, w in self.node_windows_us},
        }


@dataclass
class EnvelopeReport:
    """Everything one envelope-mapping campaign produced."""

    scenarios: Tuple[str, ...]
    jitters_us: Tuple[int, ...]
    windows_us: Tuple[int, ...]
    seeds: Tuple[int, ...]
    mode: str
    cells: List[CellResult] = field(default_factory=list)
    suggestion: Optional[WindowSuggestion] = None
    verification_cells: List[CellResult] = field(default_factory=list)
    wall_seconds: float = 0.0

    # -- verdicts ------------------------------------------------------
    def errors(self) -> List[CellResult]:
        return [c for c in self.cells if c.error is not None]

    def deficit_cells(self) -> List[CellResult]:
        return [
            c for c in self.cells
            if c.headroom is not None and not c.headroom.clean
        ]

    def ok(self) -> bool:
        """Mapping cells must *run* (deficits are data, crashes are not)
        and, when a suggestion was requested, it must have verified."""
        if self.errors():
            return False
        if self.suggestion is not None and not self.suggestion.verified:
            return False
        return True

    # -- aggregation ---------------------------------------------------
    def _group(self, scenario: str, jitter_us: int, window_us: int):
        return [
            c for c in self.cells
            if c.scenario == scenario
            and c.jitter_us == jitter_us
            and c.window_us == window_us
        ]

    def safe_windows(self) -> Dict[Tuple[str, int], Optional[int]]:
        """Per (scenario, jitter): the smallest mapped window whose cells
        all stayed deficit-free, or ``None`` when every mapped window
        exhausted its slack (the suggestion then extrapolates)."""
        out: Dict[Tuple[str, int], Optional[int]] = {}
        for scenario in self.scenarios:
            for jitter in self.jitters_us:
                safe = None
                for window in sorted(self.windows_us):
                    group = self._group(scenario, jitter, window)
                    if group and all(
                        c.error is None
                        and c.headroom is not None
                        and c.headroom.clean
                        for c in group
                    ):
                        safe = window
                        break
                out[(scenario, jitter)] = safe
        return out

    # -- rendering -----------------------------------------------------
    def render(self) -> str:
        parts = []
        for window in self.windows_us:
            matrix = {}
            for scenario in self.scenarios:
                row = {}
                for jitter in self.jitters_us:
                    group = self._group(scenario, jitter, window)
                    if not group:
                        row[str(jitter)] = "-"
                    elif any(c.error is not None for c in group):
                        row[str(jitter)] = "ERR"
                    else:
                        late = sum(
                            c.headroom.late_count for c in group
                            if c.headroom is not None
                        )
                        row[str(jitter)] = str(late) if late else "ok"
                matrix[scenario] = row
            parts.append(render_matrix(
                f"late deliveries at window={window}us "
                "(scenario x delivery jitter (us))",
                "scenario",
                [str(j) for j in self.jitters_us],
                matrix,
            ))
            parts.append("")
        hot = [
            (
                f"{c.scenario} j={c.jitter_us}us seed={c.seed}",
                c.headroom,
            )
            for c in self.deficit_cells()
        ]
        if hot:
            parts.append(render_headroom(
                "slack-deficit distribution (late cells only)", hot
            ))
            parts.append("")
        safe = self.safe_windows()
        parts.append(render_table(
            "smallest mapped deficit-free window",
            ["scenario", "jitter (us)", "safe window (us)"],
            [
                [scenario, jitter,
                 safe[(scenario, jitter)] if safe[(scenario, jitter)]
                 is not None else "> mapped range"]
                for scenario in self.scenarios
                for jitter in self.jitters_us
            ],
        ))
        parts.append("")
        parts.append(
            f"grid: {len(self.cells)} mapping cell(s), "
            f"{len(self.verification_cells)} verification cell(s), "
            f"{self.wall_seconds:.2f}s wall"
        )
        if self.suggestion is not None:
            s = self.suggestion
            if s.verified:
                parts.append(
                    f"suggested window_us = {s.window_us} "
                    f"(q{int(s.target_quantile * 100)} reach "
                    f"+ {int(s.margin * 100)}% margin) -- VERIFIED: "
                    "re-run at this window reported zero slack deficits "
                    "and fingerprint-exact Theorem-1 replays"
                )
            elif s.invariant_clean is False:
                parts.append(
                    f"suggested window_us = {s.window_us} -- NOT verified: "
                    "the lockstep replay diverged despite zero slack "
                    "deficits; this is a determinism bug, not a window-"
                    "sizing problem (file it with the run bundles)"
                )
            else:
                parts.append(
                    f"suggested window_us = {s.window_us} -- NOT verified "
                    f"after {len(s.rounds)} round(s); see report JSON"
                )
            if s.node_windows_us:
                parts.append("")
                parts.append(render_table(
                    "per-node window lower bounds (worst offenders; "
                    "global suggestion covers the rest)",
                    ["node", "suggested window (us)"],
                    [[node, window] for node, window in s.node_windows_us],
                ))
        if self.errors():
            parts.append(
                f"verdict: FAILED -- {len(self.errors())} mapping cell(s) "
                "crashed before measuring"
            )
        return "\n".join(parts)

    def to_dict(self) -> Dict:
        """JSON-serializable envelope report (the CI artifact)."""
        def cell_dict(c: CellResult) -> Dict:
            return {
                "scenario": c.scenario,
                "seed": c.seed,
                "mode": c.mode,
                "jitter_us": c.jitter_us,
                "window_us": c.window_us,
                "error": c.error,
                "invariant_ok": c.invariant_ok,
                "late_deliveries": c.late_deliveries,
                "rollbacks": c.rollbacks,
                "headroom": (
                    c.headroom.to_dict() if c.headroom is not None else None
                ),
                "node_headroom": (
                    {n: hr.to_dict() for n, hr in sorted(c.node_headroom.items())}
                    if c.node_headroom else None
                ),
            }

        return {
            "ok": self.ok(),
            "scenarios": list(self.scenarios),
            "jitters_us": list(self.jitters_us),
            "windows_us": list(self.windows_us),
            "seeds": list(self.seeds),
            "mode": self.mode,
            "grid_cells": len(self.cells),
            "wall_seconds": self.wall_seconds,
            "cells": [cell_dict(c) for c in self.cells],
            "safe_windows": [
                {"scenario": scenario, "jitter_us": jitter, "window_us": w}
                for (scenario, jitter), w in self.safe_windows().items()
            ],
            "suggestion": (
                self.suggestion.to_dict() if self.suggestion is not None else None
            ),
            "verification_cells": [
                cell_dict(c) for c in self.verification_cells
            ],
        }


class EnvelopeRunner:
    """Grid (scenario x delivery-jitter x window x seed), measure the
    slack-deficit distribution per cell, and optionally recommend (and
    verify) a safe ``window_us``.

    ``windows_us="auto"`` derives the ladder from the largest
    network-default window across the selected scenarios
    (:data:`AUTO_WINDOW_FRACTIONS`), so the grid brackets the formula
    the shims would have applied.  ``sizes`` re-scales every scenario
    through the ``name@N`` grammar; ``boundary_jitter_us`` additionally
    snaps every external event onto a beacon-group boundary via the
    existing fuzzer wrapper (:func:`repro.sweep.jittered`).
    """

    def __init__(
        self,
        scenarios: Sequence[str],
        jitters_us: Sequence[int] = (0, 50_000, 300_000),
        windows_us: "Sequence[int] | str" = "auto",
        seeds: Sequence[int] = (1,),
        mode: str = "defined",
        workers: int = 1,
        transport: str = "shm",
        sizes: Optional[Sequence[int]] = None,
        boundary_jitter_us: Optional[int] = None,
        target_quantile: float = 0.99,
        margin: float = 0.25,
        artifact_dir: Optional[str] = None,
        cell_timeout_s: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> None:
        if not scenarios:
            raise ValueError("envelope mapping needs at least one scenario")
        if any(j < 0 for j in jitters_us):
            raise ValueError("delivery-jitter magnitudes cannot be negative")
        if not 0.0 < target_quantile <= 1.0:
            raise ValueError(f"target_quantile out of range: {target_quantile}")
        if margin < 0:
            raise ValueError("margin cannot be negative")
        if mode != "defined":
            # headroom stats come from DefinedShim instances; other modes
            # have no history window to map
            raise ValueError("the window envelope is a defined-mode property")
        names = [canonical_scenario_name(n) for n in scenarios]
        if sizes:
            names = [sized_spec(name, n) for name in names for n in sizes]
        if boundary_jitter_us is not None:
            if boundary_jitter_us < 0:
                raise ValueError("boundary jitter cannot be negative")
            # parenthesize specs that already carry jitter so the suffix
            # reads as whole-composition jitter, not a stacked/ambiguous one
            names = [
                f"({name})~j{boundary_jitter_us}us" if "~j" in name
                else f"{name}~j{boundary_jitter_us}us"
                for name in names
            ]
        for name in names:
            get_scenario(name)  # fail fast on unknown names
        self.scenarios: Tuple[str, ...] = tuple(dict.fromkeys(names))
        self.jitters_us = tuple(sorted(set(int(j) for j in jitters_us)))
        self.seeds = tuple(seeds)
        self.mode = mode
        self.target_quantile = target_quantile
        self.margin = margin
        #: Verification cells archive Theorem-1 divergences here as run
        #: bundles (None: no archiving).  Mapping cells never check the
        #: invariant, so only the verification pass can write bundles.
        self.artifact_dir = artifact_dir
        # hand the real scenario list to the runner: run_cells() never
        # reads its grid, but _worker_context's spawn-portability guard
        # must see the names this envelope will actually ship to workers
        self._sweep = SweepRunner(
            scenarios=list(self.scenarios), seeds=self.seeds,
            workers=workers, transport=transport,
            cell_timeout_s=cell_timeout_s, retries=retries,
        )
        if isinstance(windows_us, str):
            if windows_us != "auto":
                raise ValueError(
                    f"windows_us must be a list of integers or 'auto', "
                    f"got {windows_us!r}"
                )
            base = max(
                scenario_default_window_us(name, seed)
                for name in self.scenarios
                for seed in self.seeds
            )
            ladder = {
                _round_window(int(base * f)) for f in AUTO_WINDOW_FRACTIONS
            }
            self.windows_us = tuple(sorted(ladder))
        else:
            if not windows_us:
                raise ValueError("windows_us cannot be empty")
            if any(w <= 0 for w in windows_us):
                raise ValueError("windows must be positive microsecond counts")
            self.windows_us = tuple(sorted(set(int(w) for w in windows_us)))

    # -- grid construction ---------------------------------------------
    def grid(self, window_us: Optional[int] = None, check_invariant: bool = False
             ) -> List[SweepCell]:
        """Mapping cells (all windows), or -- with ``window_us`` -- one
        verification pass over (scenario x jitter x seed) at that window."""
        windows = self.windows_us if window_us is None else (window_us,)
        return [
            SweepCell(
                scenario=name,
                seed=seed,
                mode=self.mode,
                window_us=window,
                jitter_us=jitter,
                check_invariant=check_invariant,
                artifact_dir=self.artifact_dir,
            )
            for name in self.scenarios
            for jitter in self.jitters_us
            for window in windows
            for seed in self.seeds
        ]

    # -- execution ------------------------------------------------------
    def map(
        self, progress: Optional[Callable[[CellResult], None]] = None
    ) -> List[CellResult]:
        """Run the mapping grid (replay checks off; deficits are the
        measurement, not a failure)."""
        return self._sweep.run_cells(self.grid(), progress=progress)

    def verify(
        self,
        window_us: int,
        progress: Optional[Callable[[CellResult], None]] = None,
    ) -> List[CellResult]:
        """Re-run (scenario x jitter x seed) at one window with the full
        Theorem-1 production-vs-replay check enabled."""
        return self._sweep.run_cells(
            self.grid(window_us=window_us, check_invariant=True),
            progress=progress,
        )

    # -- suggestion -----------------------------------------------------
    def suggest_window(self, cells: Sequence[CellResult]) -> int:
        """The minimal safe window the measured distribution supports.

        Each deficit is a lower bound on the *reach* the window needed:
        ``window + deficit`` is the measured age of the pruned
        predecessor the arrival should have sorted against.  The
        suggestion is the target-quantile reach across all late cells,
        inflated by the margin.  With zero deficits anywhere, the
        smallest mapped window that stayed clean is already the answer.
        """
        reaches = [
            c.headroom.window_us + c.headroom.deficit_at(self.target_quantile)
            for c in cells
            if c.error is None
            and c.headroom is not None
            and not c.headroom.clean
        ]
        if reaches:
            return _round_window(int(max(reaches) * (1.0 + self.margin)))
        clean = [
            c.headroom.window_us
            for c in cells
            if c.error is None and c.headroom is not None and c.headroom.clean
        ]
        if not clean:
            raise ValueError(
                "cannot suggest a window: no mapping cell completed with "
                "headroom measurements (all cells errored?)"
            )
        return min(clean)

    def suggest_node_windows(
        self, cells: Sequence[CellResult]
    ) -> Tuple[Tuple[str, int], ...]:
        """Per-node minimal safe windows behind the global suggestion.

        The pooled distribution answers "what window keeps *everything*
        safe"; the per-node headroom riding the result record (the worst
        offenders per cell) answers "which nodes actually needed it".
        Same reach formula as :meth:`suggest_window`, applied to each
        node's own distribution, taking the worst reach for a node
        across all mapping cells.  Nodes whose deficits were never
        measured (pruned before the deficit could be bounded) fall back
        to their worst *measured* quantile -- the global suggestion
        still covers them.  Worst-first, so the report leads with the
        nodes that drive the global answer.
        """
        reaches: Dict[str, int] = {}
        for c in cells:
            if c.error is not None or not c.node_headroom:
                continue
            for node_id, hr in c.node_headroom.items():
                if hr.clean:
                    continue
                reach = hr.window_us + hr.deficit_at(self.target_quantile)
                if reach > reaches.get(node_id, 0):
                    reaches[node_id] = reach
        suggestions = {
            node_id: _round_window(int(reach * (1.0 + self.margin)))
            for node_id, reach in reaches.items()
        }
        return tuple(sorted(
            suggestions.items(), key=lambda item: (-item[1], item[0])
        ))

    def run(
        self,
        suggest: bool = True,
        progress: Optional[Callable[[CellResult], None]] = None,
    ) -> EnvelopeReport:
        """Map the envelope and (optionally) produce a verified
        suggestion, escalating from the verification's own measurements
        when the first recommendation comes up short."""
        start = time.perf_counter()
        report = EnvelopeReport(
            scenarios=self.scenarios,
            jitters_us=self.jitters_us,
            windows_us=self.windows_us,
            seeds=self.seeds,
            mode=self.mode,
        )
        report.cells = self.map(progress=progress)
        if suggest and not report.errors():
            window = self.suggest_window(report.cells)
            rounds: List[Tuple[int, int, int]] = []
            verified = False
            invariant_clean: Optional[bool] = None
            for _ in range(MAX_VERIFY_ROUNDS):
                vcells = self.verify(window, progress=progress)
                deficits = sum(
                    c.headroom.late_count for c in vcells
                    if c.headroom is not None
                )
                errors = sum(1 for c in vcells if c.error is not None)
                rounds.append((window, deficits, errors))
                report.verification_cells = vcells
                if deficits == 0 and errors == 0:
                    invariant_clean = all(
                        c.invariant_ok is not False for c in vcells
                    )
                    # a replay divergence at zero deficits is a
                    # determinism bug, not a window-sizing problem --
                    # escalating the window cannot fix it, so stop here
                    # with the suggestion unverified
                    verified = invariant_clean
                    break
                # escalate from what the verification itself measured:
                # the worst reach it saw, margin-inflated, and never less
                # than a doubling (deficits are lower bounds; a timid
                # escalation can loop)
                seen = [
                    c.headroom.window_us + c.headroom.max_deficit_us
                    for c in vcells
                    if c.headroom is not None and not c.headroom.clean
                ]
                floor = 2 * window
                if seen:
                    floor = max(floor, int(max(seen) * (1.0 + self.margin)))
                window = _round_window(floor)
            report.suggestion = WindowSuggestion(
                window_us=rounds[-1][0],
                target_quantile=self.target_quantile,
                margin=self.margin,
                verified=verified,
                invariant_clean=invariant_clean,
                rounds=tuple(rounds),
                node_windows_us=self.suggest_node_windows(report.cells),
            )
        report.wall_seconds = time.perf_counter() - start
        return report


def _round_window(window_us: int) -> int:
    """Round a window up to :data:`WINDOW_GRANULARITY_US`."""
    grains = (window_us + WINDOW_GRANULARITY_US - 1) // WINDOW_GRANULARITY_US
    return max(WINDOW_GRANULARITY_US, grains * WINDOW_GRANULARITY_US)
