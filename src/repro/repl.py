"""An interactive debugger console over DEFINED-LS.

This is the troubleshooter-facing loop the paper's title promises: load a
partial recording into a debugging network and drive it with gdb-flavored
commands.  The console is deliberately thin -- every command maps to one
:class:`~repro.core.debugger.Debugger` call -- so scripted debugging uses
the same API the console does.

Commands::

    step [n]             advance n lockstep cycles (default 1)
    group                advance to the end of the current group
    run                  run until a breakpoint or end of recording
    break <substr>       break when a delivery tag contains <substr>
    break <node> <expr>  break when eval(expr) on the node's daemon is true
    breaks               list breakpoints
    delete <idx>         delete breakpoint by index
    inspect <node>       show daemon state, timers and queued inputs
    queue <node>         show the node's pending (not yet final) inputs
    nodes                list nodes with liveness and delivery counts
    where                current group/cycle/simulated time
    set <node> <stmt>    exec a statement with `daemon` bound (dangerous,
                         that is the point: manipulate state)
    quit                 leave the console

Run it from the command line::

    python -m repro.cli debug --topology ebone --recording run.json
"""

from __future__ import annotations

import shlex
from typing import Callable, List, Optional, TextIO

from repro.core.debugger import Debugger, StepReport


class DebugConsole:
    """Line-oriented debugger front end.

    ``input_fn``/``output`` are injectable for tests; the defaults wire to
    the real terminal.
    """

    PROMPT = "(defined) "

    def __init__(
        self,
        debugger: Debugger,
        input_fn: Optional[Callable[[str], str]] = None,
        output: Optional[TextIO] = None,
    ) -> None:
        self.debugger = debugger
        self._input = input_fn if input_fn is not None else input
        self._output = output
        self._bp_counter = 0

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def echo(self, text: str = "") -> None:
        if self._output is not None:
            self._output.write(text + "\n")
        else:  # pragma: no cover - interactive path
            print(text)

    def _report(self, report: StepReport) -> None:
        self.echo(report.summary())
        if report.hit_breakpoint:
            self.echo(f"breakpoint hit: {report.hit_breakpoint}")

    # ------------------------------------------------------------------
    # command handlers
    # ------------------------------------------------------------------
    def cmd_step(self, args: List[str]) -> None:
        n = int(args[0]) if args else 1
        for _ in range(max(1, n)):
            report = self.debugger.step()
            self._report(report)
            if report.hit_breakpoint or self.debugger.finished:
                break

    def cmd_group(self, args: List[str]) -> None:
        self._report(self.debugger.step_group())

    def cmd_run(self, args: List[str]) -> None:
        self._report(self.debugger.run())
        if self.debugger.finished:
            self.echo("recording exhausted")

    def cmd_break(self, args: List[str]) -> None:
        if not args:
            self.echo("usage: break <substring> | break <node> <python-expr>")
            return
        coordinator = self.debugger.coordinator
        if len(args) >= 2 and args[0] in coordinator.stacks:
            node, expr = args[0], " ".join(args[1:])

            def predicate(daemon, _expr=expr):
                return bool(eval(_expr, {"daemon": daemon}))  # noqa: S307

            bp = self.debugger.break_on_state(node, predicate,
                                              name=f"state@{node}:{expr}")
        else:
            bp = self.debugger.break_on_delivery(" ".join(args))
        self._bp_counter += 1
        self.echo(f"breakpoint #{len(self.debugger.breakpoints) - 1}: {bp.name}")

    def cmd_breaks(self, args: List[str]) -> None:
        if not self.debugger.breakpoints:
            self.echo("no breakpoints")
        for i, bp in enumerate(self.debugger.breakpoints):
            state = "enabled" if bp.enabled else "disabled"
            self.echo(f"  #{i} {bp.name} [{state}] hits={bp.hits}")

    def cmd_delete(self, args: List[str]) -> None:
        try:
            index = int(args[0])
            del self.debugger.breakpoints[index]
            self.echo(f"deleted breakpoint #{index}")
        except (IndexError, ValueError):
            self.echo("usage: delete <breakpoint-index>")

    def cmd_inspect(self, args: List[str]) -> None:
        if not args:
            self.echo("usage: inspect <node>")
            return
        try:
            view = self.debugger.inspect(args[0])
        except KeyError:
            self.echo(f"unknown node {args[0]!r}")
            return
        self.echo(f"node {view['node']} (group {view['group']}, "
                  f"{'active' if view['active'] else 'DOWN'})")
        state = view["daemon_state"]
        if state is not None:
            for field_name, value in state.items():
                text = repr(value)
                if len(text) > 100:
                    text = text[:97] + "..."
                self.echo(f"  {field_name}: {text}")
        if view["timers"]:
            self.echo(f"  timers: {view['timers']}")
        self.echo(f"  pending inputs: {len(view['pending_inputs'])}")

    def cmd_queue(self, args: List[str]) -> None:
        if not args:
            self.echo("usage: queue <node>")
            return
        pending = self.debugger.pending_messages(args[0])
        if not pending:
            self.echo("(queue empty)")
        for tag in pending:
            self.echo(f"  {tag}")

    def cmd_nodes(self, args: List[str]) -> None:
        coordinator = self.debugger.coordinator
        for node_id in coordinator.network.node_ids():
            stack = coordinator.stacks.get(node_id)
            if stack is None:
                continue
            state = "active" if stack.active else "DOWN"
            self.echo(
                f"  {node_id}: {state}, {len(stack.delivery_log)} deliveries"
            )

    def cmd_where(self, args: List[str]) -> None:
        coordinator = self.debugger.coordinator
        self.echo(
            f"group {coordinator.current_group} cycle {coordinator.cycle} "
            f"t={coordinator.network.sim.now / 1e6:.3f} s "
            f"(horizon group {coordinator.horizon})"
        )

    def cmd_set(self, args: List[str]) -> None:
        if len(args) < 2:
            self.echo("usage: set <node> <python-statement>")
            return
        node, statement = args[0], " ".join(args[1:])

        def mutate(daemon, _stmt=statement):
            exec(_stmt, {"daemon": daemon})  # noqa: S102

        try:
            self.debugger.modify(node, mutate)
            self.echo(f"state modified at {node} (group checkpoint rebased)")
        except Exception as exc:  # troubleshooter typo, not a crash
            self.echo(f"error: {exc}")

    def cmd_help(self, args: List[str]) -> None:
        self.echo(__doc__.split("Commands::")[1].split("Run it")[0])

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    COMMANDS = {
        "step": cmd_step, "s": cmd_step,
        "group": cmd_group, "g": cmd_group,
        "run": cmd_run, "r": cmd_run, "continue": cmd_run, "c": cmd_run,
        "break": cmd_break, "b": cmd_break,
        "breaks": cmd_breaks,
        "delete": cmd_delete,
        "inspect": cmd_inspect, "i": cmd_inspect, "print": cmd_inspect,
        "queue": cmd_queue, "q": cmd_queue,
        "nodes": cmd_nodes,
        "where": cmd_where, "w": cmd_where,
        "set": cmd_set,
        "help": cmd_help, "h": cmd_help, "?": cmd_help,
    }

    def dispatch(self, line: str) -> bool:
        """Execute one command line.  Returns False on quit."""
        try:
            parts = shlex.split(line)
        except ValueError as exc:
            self.echo(f"parse error: {exc}")
            return True
        if not parts:
            return True
        command, args = parts[0], parts[1:]
        if command in ("quit", "exit"):
            return False
        handler = self.COMMANDS.get(command)
        if handler is None:
            self.echo(f"unknown command {command!r} (try 'help')")
            return True
        handler(self, args)
        return True

    def loop(self) -> None:
        """Run until quit or EOF."""
        self.echo("DEFINED interactive debugger -- 'help' for commands")
        self.cmd_where([])
        while True:
            try:
                line = self._input(self.PROMPT)
            except (EOFError, StopIteration):
                break
            if not self.dispatch(line):
                break
