"""Parse chaos scenario files and anchor validation issues to file:line.

YAML is a strict superset of JSON, so ``.yaml`` / ``.yml`` / ``.json``
documents all go through the same parser.  The file is parsed twice:
``yaml.safe_load`` for the data and ``yaml.compose`` for the node tree,
whose start marks give every document path a (line, column) -- that is
what turns a schema issue into ``scenario.yaml:7:3: ...``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import yaml

from repro.chaos.schema import validate_document

Marks = Dict[Tuple[Any, ...], Tuple[int, int]]


@dataclass(frozen=True)
class FileIssue:
    """One validation failure, anchored to a file position."""

    line: int
    col: int
    message: str


class ScenarioFileError(ValueError):
    """A scenario file failed to parse or validate.

    ``str()`` renders one ``path:line:col: message`` pointer per issue,
    the format editors and CI logs hyperlink.
    """

    def __init__(self, path: str, issues: List[FileIssue]) -> None:
        self.path = path
        self.issues = list(issues)
        super().__init__(
            "\n".join(
                f"{path}:{issue.line}:{issue.col}: {issue.message}"
                for issue in self.issues
            )
        )


def _collect_marks(node: yaml.Node, path: Tuple, out: Marks) -> None:
    out.setdefault(path, (node.start_mark.line + 1, node.start_mark.column + 1))
    if isinstance(node, yaml.MappingNode):
        for key_node, value_node in node.value:
            key = getattr(key_node, "value", None)
            if not isinstance(key, str):
                continue
            child = path + (key,)
            # anchor the child at its *value* node, falling back to the
            # key's position for null/short values on the same line
            out.setdefault(
                child, (key_node.start_mark.line + 1, key_node.start_mark.column + 1)
            )
            _collect_marks(value_node, child, out)
    elif isinstance(node, yaml.SequenceNode):
        for i, item in enumerate(node.value):
            _collect_marks(item, path + (i,), out)


def parse_file(path: str) -> Tuple[Any, Marks]:
    """Parse ``path`` into (document, marks).

    Raises :class:`ScenarioFileError` for unreadable or unparseable
    files; structural validity is the validator's job, not the parser's.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ScenarioFileError(
            path, [FileIssue(1, 1, f"cannot read scenario file: {exc}")]
        ) from exc
    try:
        doc = yaml.safe_load(text)
        tree = yaml.compose(text)
    except yaml.YAMLError as exc:
        mark = getattr(exc, "problem_mark", None)
        line = mark.line + 1 if mark is not None else 1
        col = mark.column + 1 if mark is not None else 1
        problem = getattr(exc, "problem", None) or str(exc)
        raise ScenarioFileError(
            path, [FileIssue(line, col, f"not parseable as YAML/JSON: {problem}")]
        ) from exc
    marks: Marks = {}
    if tree is not None:
        _collect_marks(tree, (), marks)
    return doc, marks


def _locate(path_tuple: Tuple, marks: Marks) -> Tuple[int, int]:
    """Best (line, col) for a document path: the deepest marked prefix."""
    probe = tuple(path_tuple)
    while probe:
        if probe in marks:
            return marks[probe]
        probe = probe[:-1]
    return marks.get((), (1, 1))


def validate_file(path: str) -> List[FileIssue]:
    """Validate one scenario file; empty list means it compiles.

    Parse failures come back as issues too (not exceptions), so callers
    like the lint engine report every kind of breakage uniformly.
    """
    try:
        doc, marks = parse_file(path)
    except ScenarioFileError as exc:
        return exc.issues
    issues = validate_document(doc)
    out = []
    for issue in issues:
        line, col = _locate(issue.path, marks)
        pointer = issue.pointer()
        prefix = f"{pointer}: " if pointer != "/" else ""
        out.append(FileIssue(line, col, prefix + issue.message))
    return out


def sniff_scenario_file(path: str) -> bool:
    """Whether ``path`` claims to be a chaos scenario document.

    Used by the lint engine to pick candidates out of a source tree:
    a parseable mapping with a ``schema: chaos/...`` key, or -- for
    files too broken to parse -- a literal ``schema: chaos/`` line, so
    a syntax error in a scenario file still surfaces as a finding
    instead of silently exempting the file.
    """
    if not os.path.isfile(path):
        return False
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError:
        return False
    try:
        doc = yaml.safe_load(text)
    except yaml.YAMLError:
        doc = None
    if isinstance(doc, dict):
        return str(doc.get("schema", "")).startswith("chaos/")
    return '"schema"' in text and '"chaos/' in text or any(
        line.strip().startswith("schema:") and "chaos/" in line
        for line in text.splitlines()
    )
