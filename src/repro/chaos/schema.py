"""The chaos scenario schema (``chaos/v1``) and its validator.

The schema is the DSL's contract *and* its documentation surface:
:mod:`repro.chaos.docgen` renders this exact structure into
``docs/scenario-schema.md``, and CI fails when the rendered document and
the committed one diverge.  The validator is a small in-house walker
over the JSON-Schema subset the contract uses (``type`` / ``enum`` /
``const`` / ``pattern`` / numeric bounds / ``required`` /
``properties`` / ``additionalProperties`` / ``items`` / ``oneOf``
discriminated on ``kind``), plus the cross-field semantic checks a
generic validator cannot express.  Issues carry JSON-pointer-style
paths; the loader maps them to file:line positions via YAML node marks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List, Tuple

from repro.simnet.faults import MAX_CLOCK_SKEW_US
from repro.topology.rocketfuel import POP_COUNTS

#: Every document must declare this exact schema id.
SCHEMA_ID = "chaos/v1"

TOPOLOGY_FAMILIES = ("waxman", "ba", "diamond", "rocketfuel")
EVENT_KINDS = ("flap_storm", "crash_restart", "partition", "zone_blackout", "srlg")
FAULT_KINDS = ("clock_skew", "duplicate", "reorder", "gray")
MODES = ("vanilla", "defined", "ddos", "logging")

#: Instrumented modes that require lossless links (gray faults excluded).
LOSSLESS_MODES = ("defined", "ddos")

_US = "microseconds"

_LINK_ARRAY = {
    "type": "array",
    "items": {
        "type": "array",
        "items": {"type": "string"},
        "minItems": 2,
        "maxItems": 2,
    },
    "minItems": 1,
    "description": "Explicit links as [node-a, node-b] endpoint pairs.",
}

_WINDOW_PROPS = {
    "start_us": {
        "type": "integer",
        "minimum": 0,
        "description": f"Window start ({_US}); default 0 (whole run).",
    },
    "end_us": {
        "type": "integer",
        "exclusiveMinimum": 0,
        "description": f"Window end ({_US}, exclusive); default: end of run.",
    },
}

SCENARIO_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": f"Chaos scenario ({SCHEMA_ID})",
    "description": (
        "A declarative failure environment: topology + discrete event "
        "blocks + continuous fault families, compiled into a sweep "
        "Scenario.  Every random choice the document leaves open is "
        "drawn from RNG streams derived from the document name and the "
        "cell seed, so one file + one seed is one deterministic "
        "execution."
    ),
    "type": "object",
    "required": ["schema", "name", "topology"],
    "additionalProperties": False,
    "properties": {
        "schema": {
            "const": SCHEMA_ID,
            "description": f"Format tag; must be exactly '{SCHEMA_ID}'.",
        },
        "name": {
            "type": "string",
            "pattern": "^[a-z][a-z0-9-]{0,63}$",
            "description": (
                "Scenario name (lowercase, digits, hyphens).  Used to "
                "seed the document's RNG streams and as the scenario "
                "name in reports, so renaming the document changes its "
                "executions.  The grammar operators (+ @ ~) are "
                "excluded so compiled scenarios stay addressable."
            ),
        },
        "description": {
            "type": "string",
            "description": "Free-form description, shown in scenario listings.",
        },
        "topology": {
            "type": "object",
            "required": ["family"],
            "additionalProperties": False,
            "description": (
                "The network under test.  'waxman' and 'ba' are "
                "seed-varied synthetic families (require 'nodes', and "
                "make the scenario size-parameterizable via '@N'); "
                "'diamond' is the fixed 4-node determinism-test graph; "
                "'rocketfuel' requires 'map'."
            ),
            "properties": {
                "family": {
                    "enum": list(TOPOLOGY_FAMILIES),
                    "description": "Topology generator family.",
                },
                "nodes": {
                    "type": "integer",
                    "minimum": 2,
                    "maximum": 128,
                    "description": "Node count (waxman / ba only).",
                },
                "map": {
                    "enum": sorted(POP_COUNTS),
                    "description": "Rocketfuel PoP map (rocketfuel only).",
                },
            },
        },
        "modes": {
            "type": "array",
            "items": {"enum": list(MODES)},
            "minItems": 1,
            "description": (
                "Execution modes the scenario runs in.  Default: "
                "vanilla + defined; gray faults restrict the default to "
                "vanilla (instrumented modes require lossless links)."
            ),
        },
        "ordering": {
            "enum": ["OO", "RO"],
            "description": "DEFINED ordering function (default OO).",
        },
        "jitter_us": {
            "type": "integer",
            "minimum": 0,
            "maximum": 2_000_000,
            "description": f"Per-packet delivery jitter ({_US}; default 200).",
        },
        "settle_us": {
            "type": "integer",
            "minimum": 0,
            "description": f"Boot settling time before events ({_US}).",
        },
        "tail_us": {
            "type": "integer",
            "minimum": 0,
            "description": f"Run tail after the last event ({_US}).",
        },
        "events": {
            "type": "array",
            "description": (
                "Discrete external-event blocks, each compiled on its "
                "own seed-split RNG stream and merged into one "
                "EventSchedule."
            ),
            "items": {
                "oneOf": [
                    {
                        "title": "flap_storm",
                        "type": "object",
                        "required": ["kind"],
                        "additionalProperties": False,
                        "description": "Independent link down/up flaps.",
                        "properties": {
                            "kind": {"const": "flap_storm"},
                            "links": dict(
                                _LINK_ARRAY,
                                description=(
                                    "Restrict flapping to these links, as "
                                    "[node-a, node-b] endpoint pairs "
                                    "(default: every link is flappable)."
                                ),
                            ),
                            "flaps": {
                                "type": "integer",
                                "minimum": 1,
                                "maximum": 64,
                                "description": "Number of flaps (default 4).",
                            },
                            "start_us": {
                                "type": "integer",
                                "minimum": 0,
                                "description": f"First flap time ({_US}).",
                            },
                            "min_hold_us": {
                                "type": "integer",
                                "exclusiveMinimum": 0,
                                "description": f"Minimum down-time ({_US}).",
                            },
                            "max_hold_us": {
                                "type": "integer",
                                "exclusiveMinimum": 0,
                                "description": f"Maximum down-time ({_US}).",
                            },
                            "gap_us": {
                                "type": "integer",
                                "minimum": 0,
                                "description": f"Base gap between flaps ({_US}).",
                            },
                        },
                    },
                    {
                        "title": "crash_restart",
                        "type": "object",
                        "required": ["kind"],
                        "additionalProperties": False,
                        "description": "Router crash/restart cycles.",
                        "properties": {
                            "kind": {"const": "crash_restart"},
                            "nodes": {
                                "type": "array",
                                "minItems": 1,
                                "items": {"type": "string", "minLength": 1},
                                "description": (
                                    "Restrict crashes to these nodes "
                                    "(default: every node is crashable)."
                                ),
                            },
                            "crashes": {
                                "type": "integer",
                                "minimum": 1,
                                "maximum": 32,
                                "description": "Number of cycles (default 1).",
                            },
                            "start_us": {
                                "type": "integer",
                                "minimum": 0,
                                "description": f"First crash time ({_US}).",
                            },
                            "down_for_us": {
                                "type": "integer",
                                "exclusiveMinimum": 0,
                                "description": f"Outage length ({_US}).",
                            },
                            "gap_us": {
                                "type": "integer",
                                "minimum": 0,
                                "description": f"Base gap between cycles ({_US}).",
                            },
                        },
                    },
                    {
                        "title": "partition",
                        "type": "object",
                        "required": ["kind"],
                        "additionalProperties": False,
                        "description": (
                            "Seed-derived bipartition: every crossing "
                            "link cut, then healed."
                        ),
                        "properties": {
                            "kind": {"const": "partition"},
                            "start_us": {
                                "type": "integer",
                                "minimum": 0,
                                "description": f"Cut time ({_US}).",
                            },
                            "heal_after_us": {
                                "type": "integer",
                                "exclusiveMinimum": 0,
                                "description": f"Heal delay after the cut ({_US}).",
                            },
                        },
                    },
                    {
                        "title": "zone_blackout",
                        "type": "object",
                        "required": ["kind"],
                        "additionalProperties": False,
                        "description": (
                            "Correlated zone failure: several routers go "
                            "dark simultaneously (shared power domain) "
                            "and restart together.  Give 'nodes' or "
                            "'size', not both."
                        ),
                        "properties": {
                            "kind": {"const": "zone_blackout"},
                            "size": {
                                "type": "integer",
                                "minimum": 1,
                                "maximum": 64,
                                "description": (
                                    "Seed-drawn victim count (default 2)."
                                ),
                            },
                            "nodes": {
                                "type": "array",
                                "items": {"type": "string"},
                                "minItems": 1,
                                "description": "Explicit victim node ids.",
                            },
                            "start_us": {
                                "type": "integer",
                                "minimum": 0,
                                "description": f"Blackout time ({_US}).",
                            },
                            "duration_us": {
                                "type": "integer",
                                "exclusiveMinimum": 0,
                                "description": f"Outage length ({_US}).",
                            },
                        },
                    },
                    {
                        "title": "srlg",
                        "type": "object",
                        "required": ["kind"],
                        "additionalProperties": False,
                        "description": (
                            "Shared-risk link group: several links fail "
                            "as one (a conduit cut) and are repaired "
                            "together.  Give 'links' or 'size', not both."
                        ),
                        "properties": {
                            "kind": {"const": "srlg"},
                            "size": {
                                "type": "integer",
                                "minimum": 2,
                                "maximum": 64,
                                "description": (
                                    "Seed-drawn group size (default 2)."
                                ),
                            },
                            "links": _LINK_ARRAY,
                            "start_us": {
                                "type": "integer",
                                "minimum": 0,
                                "description": f"Cut time ({_US}).",
                            },
                            "duration_us": {
                                "type": "integer",
                                "exclusiveMinimum": 0,
                                "description": f"Outage length ({_US}).",
                            },
                        },
                    },
                ],
            },
        },
        "faults": {
            "type": "array",
            "description": (
                "Continuous fault families, compiled into a NetworkTuning "
                "installed on the production network before boot."
            ),
            "items": {
                "oneOf": [
                    {
                        "title": "clock_skew",
                        "type": "object",
                        "required": ["kind"],
                        "additionalProperties": False,
                        "description": (
                            "Per-node beacon-timing perturbation: skewed "
                            "nodes observe every beacon a constant offset "
                            "late (positive) or early (negative), "
                            "shifting their external-event group tagging. "
                            " Give 'nodes' or 'count', and 'skew_us' or "
                            "'max_skew_us' (seed-drawn magnitude with "
                            "random sign)."
                        ),
                        "properties": {
                            "kind": {"const": "clock_skew"},
                            "nodes": {
                                "type": "array",
                                "items": {"type": "string"},
                                "minItems": 1,
                                "description": "Explicit skewed node ids.",
                            },
                            "count": {
                                "type": "integer",
                                "minimum": 1,
                                "maximum": 64,
                                "description": (
                                    "Seed-drawn skewed-node count (default 1)."
                                ),
                            },
                            "skew_us": {
                                "type": "integer",
                                "minimum": -MAX_CLOCK_SKEW_US,
                                "maximum": MAX_CLOCK_SKEW_US,
                                "description": (
                                    f"Fixed skew ({_US}); bounded by half "
                                    "the 250 ms beacon interval."
                                ),
                            },
                            "max_skew_us": {
                                "type": "integer",
                                "exclusiveMinimum": 0,
                                "maximum": MAX_CLOCK_SKEW_US,
                                "description": (
                                    "Per-node skew drawn from "
                                    f"[1, max] {_US} with seed-derived sign."
                                ),
                            },
                        },
                    },
                    {
                        "title": "duplicate",
                        "type": "object",
                        "required": ["kind", "probability"],
                        "additionalProperties": False,
                        "description": (
                            "Link-layer packet duplication beneath a "
                            "deduplicating transport: the daemon sees "
                            "each packet once, at the earlier of two "
                            "independently delayed arrivals."
                        ),
                        "properties": {
                            "kind": {"const": "duplicate"},
                            "probability": {
                                "type": "number",
                                "exclusiveMinimum": 0,
                                "maximum": 1,
                                "description": "Per-packet duplication probability.",
                            },
                            "links": _LINK_ARRAY,
                            **_WINDOW_PROPS,
                        },
                    },
                    {
                        "title": "reorder",
                        "type": "object",
                        "required": ["kind", "probability"],
                        "additionalProperties": False,
                        "description": (
                            "Packet reordering: selected packets bypass "
                            "the per-direction FIFO clamp and pick up an "
                            "extra uniform delay, so they can overtake "
                            "or be overtaken."
                        ),
                        "properties": {
                            "kind": {"const": "reorder"},
                            "probability": {
                                "type": "number",
                                "exclusiveMinimum": 0,
                                "maximum": 1,
                                "description": "Per-packet reorder probability.",
                            },
                            "magnitude_us": {
                                "type": "integer",
                                "minimum": 0,
                                "maximum": 250_000,
                                "description": (
                                    f"Extra delay drawn from [0, magnitude] ({_US}; "
                                    "default 2000)."
                                ),
                            },
                            "links": _LINK_ARRAY,
                            **_WINDOW_PROPS,
                        },
                    },
                    {
                        "title": "gray",
                        "type": "object",
                        "required": ["kind", "loss"],
                        "additionalProperties": False,
                        "description": (
                            "Gray failure: a link stays up but silently "
                            "drops a fraction of packets.  Loss breaks "
                            "the recording contract (paper footnote 4), "
                            "so gray scenarios run in uninstrumented "
                            "modes only."
                        ),
                        "properties": {
                            "kind": {"const": "gray"},
                            "loss": {
                                "type": "number",
                                "exclusiveMinimum": 0,
                                "exclusiveMaximum": 1,
                                "description": "Per-packet drop probability.",
                            },
                            "links": _LINK_ARRAY,
                            **_WINDOW_PROPS,
                        },
                    },
                ],
            },
        },
        "expect": {
            "type": "object",
            "additionalProperties": False,
            "description": (
                "Post-run sanity predicates (outcome shape, not "
                "determinism -- the sweep runner checks determinism "
                "itself)."
            ),
            "properties": {
                "links_healed": {
                    "type": "boolean",
                    "description": "Every link is up at run end.",
                },
                "nodes_up": {
                    "type": "boolean",
                    "description": "Every node is up at run end.",
                },
                "damping": {
                    "type": "object",
                    "additionalProperties": False,
                    "description": (
                        "Route-flap damping behaviour, checked by feeding "
                        "the run's observed link-down transitions (one "
                        "virtual-time unit = one beacon interval) through "
                        "the reference FlapDampener at its defaults."
                    ),
                    "properties": {
                        "min_suppressed": {
                            "type": "integer",
                            "minimum": 1,
                            "description": (
                                "At least this many link-down transitions "
                                "arrive while their link is suppressed."
                            ),
                        },
                        "released_by_end": {
                            "type": "boolean",
                            "description": (
                                "Penalties decayed below reuse by run end: "
                                "no link is still suppressed."
                            ),
                        },
                    },
                },
            },
        },
    },
}


@dataclass(frozen=True)
class SchemaIssue:
    """One validation failure, anchored to a document path."""

    path: Tuple[Any, ...]
    message: str

    def pointer(self) -> str:
        return "/" + "/".join(str(p) for p in self.path) if self.path else "/"


def _type_ok(value: Any, expected: str) -> bool:
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    raise ValueError(f"schema uses unknown type {expected!r}")


def _validate_one_of(value: Any, branches: List[dict], path: Tuple, out: List[SchemaIssue]) -> None:
    """Dispatch a ``oneOf`` discriminated on the ``kind`` const."""
    if not isinstance(value, dict):
        out.append(SchemaIssue(path, "expected a mapping with a 'kind' key"))
        return
    kind = value.get("kind")
    by_kind = {b["properties"]["kind"]["const"]: b for b in branches}
    if kind not in by_kind:
        out.append(
            SchemaIssue(
                path + ("kind",) if "kind" in value else path,
                f"unknown kind {kind!r}; expected one of {sorted(by_kind)}",
            )
        )
        return
    _validate(value, by_kind[kind], path, out)


def _validate(value: Any, schema: dict, path: Tuple, out: List[SchemaIssue]) -> None:
    if "oneOf" in schema:
        _validate_one_of(value, schema["oneOf"], path, out)
        return
    if "const" in schema:
        if value != schema["const"]:
            out.append(
                SchemaIssue(path, f"must be {schema['const']!r}, got {value!r}")
            )
        return
    if "enum" in schema:
        if value not in schema["enum"]:
            out.append(
                SchemaIssue(
                    path, f"{value!r} is not one of {list(schema['enum'])}"
                )
            )
        return
    expected = schema.get("type")
    if expected is not None and not _type_ok(value, expected):
        out.append(
            SchemaIssue(
                path, f"expected {expected}, got {type(value).__name__}"
            )
        )
        return
    if isinstance(value, str) and "pattern" in schema:
        if not re.fullmatch(schema["pattern"], value):
            out.append(
                SchemaIssue(
                    path,
                    f"{value!r} does not match pattern {schema['pattern']!r}",
                )
            )
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            out.append(SchemaIssue(path, f"{value} is below minimum {schema['minimum']}"))
        if "maximum" in schema and value > schema["maximum"]:
            out.append(SchemaIssue(path, f"{value} is above maximum {schema['maximum']}"))
        if "exclusiveMinimum" in schema and value <= schema["exclusiveMinimum"]:
            out.append(
                SchemaIssue(path, f"{value} must be > {schema['exclusiveMinimum']}")
            )
        if "exclusiveMaximum" in schema and value >= schema["exclusiveMaximum"]:
            out.append(
                SchemaIssue(path, f"{value} must be < {schema['exclusiveMaximum']}")
            )
    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            out.append(
                SchemaIssue(path, f"needs at least {schema['minItems']} item(s)")
            )
        if "maxItems" in schema and len(value) > schema["maxItems"]:
            out.append(
                SchemaIssue(path, f"allows at most {schema['maxItems']} item(s)")
            )
        item_schema = schema.get("items")
        if item_schema is not None:
            for i, item in enumerate(value):
                _validate(item, item_schema, path + (i,), out)
    if isinstance(value, dict):
        props = schema.get("properties", {})
        for key in schema.get("required", ()):
            if key not in value:
                out.append(SchemaIssue(path, f"missing required key {key!r}"))
        if schema.get("additionalProperties") is False:
            for key in value:
                if key not in props:
                    out.append(
                        SchemaIssue(
                            path + (key,),
                            f"unknown key {key!r}; allowed: {sorted(props)}",
                        )
                    )
        for key, sub in props.items():
            if key in value:
                _validate(value[key], sub, path + (key,), out)


def _semantic_issues(doc: dict) -> List[SchemaIssue]:
    """Cross-field rules the generic walker cannot express.

    Only fires on fields the structural pass accepted -- every check
    guards its own types so a malformed document reports its structural
    errors without a stack trace on top.
    """
    out: List[SchemaIssue] = []

    topo = doc.get("topology")
    if isinstance(topo, dict):
        family = topo.get("family")
        if family in ("waxman", "ba") and "nodes" not in topo:
            out.append(
                SchemaIssue(("topology",), f"family {family!r} requires 'nodes'")
            )
        if family in ("waxman", "ba") and "map" in topo:
            out.append(
                SchemaIssue(
                    ("topology", "map"), f"'map' is meaningless for family {family!r}"
                )
            )
        if family == "rocketfuel" and "map" not in topo:
            out.append(
                SchemaIssue(("topology",), "family 'rocketfuel' requires 'map'")
            )
        if family in ("rocketfuel", "diamond") and "nodes" in topo:
            out.append(
                SchemaIssue(
                    ("topology", "nodes"),
                    f"'nodes' is fixed by family {family!r}; remove it",
                )
            )

    events = doc.get("events")
    faults = doc.get("faults")
    if not events and not faults:
        out.append(
            SchemaIssue(
                (),
                "scenario declares no events and no faults; "
                "at least one block is required",
            )
        )

    if isinstance(events, list):
        for i, block in enumerate(events):
            if not isinstance(block, dict):
                continue
            kind = block.get("kind")
            if kind == "flap_storm":
                lo = block.get("min_hold_us")
                hi = block.get("max_hold_us")
                if isinstance(lo, int) and isinstance(hi, int) and lo >= hi:
                    out.append(
                        SchemaIssue(
                            ("events", i, "max_hold_us"),
                            f"max_hold_us ({hi}) must be > min_hold_us ({lo})",
                        )
                    )
            if kind == "zone_blackout" and "size" in block and "nodes" in block:
                out.append(
                    SchemaIssue(
                        ("events", i, "size"),
                        "give 'nodes' or 'size', not both",
                    )
                )
            if kind == "srlg" and "size" in block and "links" in block:
                out.append(
                    SchemaIssue(
                        ("events", i, "size"),
                        "give 'links' or 'size', not both",
                    )
                )

    has_gray = False
    if isinstance(faults, list):
        for i, block in enumerate(faults):
            if not isinstance(block, dict):
                continue
            kind = block.get("kind")
            if kind == "gray":
                has_gray = True
            if kind == "clock_skew":
                if "nodes" in block and "count" in block:
                    out.append(
                        SchemaIssue(
                            ("faults", i, "count"),
                            "give 'nodes' or 'count', not both",
                        )
                    )
                if "skew_us" in block and "max_skew_us" in block:
                    out.append(
                        SchemaIssue(
                            ("faults", i, "max_skew_us"),
                            "give 'skew_us' or 'max_skew_us', not both",
                        )
                    )
                if "skew_us" not in block and "max_skew_us" not in block:
                    out.append(
                        SchemaIssue(
                            ("faults", i),
                            "clock_skew needs 'skew_us' or 'max_skew_us'",
                        )
                    )
                if block.get("skew_us") == 0:
                    out.append(
                        SchemaIssue(
                            ("faults", i, "skew_us"),
                            "skew_us of 0 is a no-op; remove the block",
                        )
                    )
            start = block.get("start_us")
            end = block.get("end_us")
            if isinstance(start, int) and isinstance(end, int) and end <= start:
                out.append(
                    SchemaIssue(
                        ("faults", i, "end_us"),
                        f"end_us ({end}) must be > start_us ({start})",
                    )
                )

    modes = doc.get("modes")
    if has_gray and isinstance(modes, list):
        bad = [m for m in modes if m in LOSSLESS_MODES]
        if bad:
            out.append(
                SchemaIssue(
                    ("modes",),
                    f"gray faults drop packets, which modes {bad} forbid "
                    "(instrumented recording assumes lossless links); "
                    "restrict modes to vanilla/logging",
                )
            )
    return out


def validate_document(doc: Any) -> List[SchemaIssue]:
    """All schema + semantic issues for a parsed document, in document
    order (structural first).  An empty list means the document compiles."""
    issues: List[SchemaIssue] = []
    if not isinstance(doc, dict):
        return [
            SchemaIssue(
                (), f"top level must be a mapping, got {type(doc).__name__}"
            )
        ]
    _validate(doc, SCENARIO_SCHEMA, (), issues)
    issues.extend(_semantic_issues(doc))
    return issues
