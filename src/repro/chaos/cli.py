"""The ``repro chaos`` subcommand: validate scenario files, emit the schema.

``validate`` runs the full pipeline each file must survive to be a sweep
citizen -- parse, schema + semantic validation, compilation, and a
topology/schedule build at seed 1 -- so a green validate means the file
runs.  ``schema`` emits the schema as JSON or as the generated markdown
reference (the exact content of ``docs/scenario-schema.md``).
"""

from __future__ import annotations

import argparse
from typing import List

from repro.chaos.compiler import compile_document
from repro.chaos.docgen import schema_json, schema_markdown
from repro.chaos.loader import parse_file, validate_file


def add_arguments(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="chaos_command", required=True)
    validate = sub.add_parser(
        "validate",
        help="validate scenario files (schema + compile + seed-1 build)",
    )
    validate.add_argument("paths", nargs="+", metavar="FILE", help="scenario files")
    schema = sub.add_parser(
        "schema", help="emit the chaos/v1 schema (JSON, or --markdown)"
    )
    schema.add_argument(
        "--markdown",
        action="store_true",
        help="emit the generated markdown reference instead of JSON",
    )


def _validate_one(path: str) -> List[str]:
    """Error lines for one file (empty = valid)."""
    issues = validate_file(path)
    if issues:
        return [f"{path}:{i.line}:{i.col}: {i.message}" for i in issues]
    doc, _marks = parse_file(path)
    try:
        scenario = compile_document(doc)
        graph = scenario.topology(1)
        scenario.schedule(graph, 1)
        if scenario.tuning is not None:
            scenario.tuning(graph, 1)
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        return [f"{path}:1:1: compiles to an unbuildable scenario: {exc}"]
    return []


def cmd_chaos(args: argparse.Namespace) -> int:
    if args.chaos_command == "schema":
        print(schema_markdown() if args.markdown else schema_json(), end="")
        return 0
    failures = 0
    for path in args.paths:
        errors = _validate_one(path)
        if errors:
            failures += 1
            for line in errors:
                print(line)
        else:
            scenario = None
            doc, _marks = parse_file(path)
            scenario = compile_document(doc)
            summary = (
                f"{path}: OK name={scenario.name} "
                f"events={len(doc.get('events') or ())} "
                f"faults={len(doc.get('faults') or ())} "
                f"modes={','.join(scenario.modes)}"
            )
            print(summary)
    if failures:
        print(f"{failures} of {len(args.paths)} file(s) failed validation")
    return 1 if failures else 0
