"""Compile validated chaos documents into sweep :class:`Scenario` objects.

The compiler is a pure function of the document: every open choice (which
links flap, which nodes skew, each skew's magnitude) is drawn from an RNG
stream keyed on the document *name*, the block's position, and the cell
seed -- so one file + one seed is one deterministic execution, and two
blocks of the same kind in one document stay independent.  Compiled
scenarios are first-class sweep citizens: they size (``file.yaml@N`` for
the synthetic families), fuzz (``file.yaml~j1us``), and compose
(``file.yaml+flap-storm``) exactly like registered builtins.
"""

from __future__ import annotations

import os
import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.chaos.loader import ScenarioFileError, parse_file, validate_file
from repro.simnet.events import EventSchedule
from repro.simnet.faults import LinkFaultWindow, NetworkTuning
from repro.sweep import (
    DEFAULT_MODES,
    Scenario,
    _diamond_topology,
    _expect_all_links_healed,
    _expect_all_nodes_up,
    _expect_damping,
    crash_restart_schedule,
    flap_storm_schedule,
    partition_schedule,
    seed_split,
    srlg_schedule,
    zone_blackout_schedule,
)
from repro.topology import TopologyGraph, barabasi_albert, waxman_family
from repro.topology.rocketfuel import rocketfuel_topology


def _opt(block: Dict[str, Any], *keys: str) -> Dict[str, Any]:
    """The subset of ``keys`` the author actually set -- absent keys fall
    through to the generator's own defaults."""
    return {key: block[key] for key in keys if key in block}


def _ba_family(tag: str, n: int, seed_base: int = 1_000):
    """Seed-indexed Barabási–Albert family, mirroring ``waxman_family``:
    the graph name embeds tag and seed so name-keyed fault RNG streams
    never collide across documents, sizes, or seeds."""

    def factory(seed: int) -> TopologyGraph:
        graph = barabasi_albert(n, seed=seed_base + seed)
        return TopologyGraph(
            name=f"{tag}-{graph.name}-s{seed}",
            nodes=graph.nodes,
            edges=graph.edges,
        )

    return factory


def _link_id(a: str, b: str) -> str:
    return f"{a}~{b}" if a <= b else f"{b}~{a}"


def _compile_event_block(
    name: str, index: int, block: Dict[str, Any], graph: TopologyGraph, seed: int
) -> EventSchedule:
    kind = block["kind"]
    sseed = seed_split(seed, f"{name}/events[{index}]/{kind}")
    if kind == "flap_storm":
        kwargs = _opt(block, "start_us", "min_hold_us", "max_hold_us", "gap_us")
        if "flaps" in block:
            kwargs["n_flaps"] = block["flaps"]
        if "links" in block:
            kwargs["links"] = [tuple(pair) for pair in block["links"]]
        return flap_storm_schedule(graph, sseed, **kwargs)
    if kind == "crash_restart":
        kwargs = _opt(block, "start_us", "down_for_us", "gap_us")
        if "crashes" in block:
            kwargs["n_crashes"] = block["crashes"]
        if "nodes" in block:
            kwargs["nodes"] = list(block["nodes"])
        return crash_restart_schedule(graph, sseed, **kwargs)
    if kind == "partition":
        kwargs = _opt(block, "heal_after_us")
        if "start_us" in block:
            kwargs["at_us"] = block["start_us"]
        return partition_schedule(graph, sseed, **kwargs)
    if kind == "zone_blackout":
        kwargs = _opt(block, "size", "nodes", "duration_us")
        if "start_us" in block:
            kwargs["at_us"] = block["start_us"]
        return zone_blackout_schedule(graph, sseed, **kwargs)
    if kind == "srlg":
        kwargs = _opt(block, "size", "duration_us")
        if "links" in block:
            kwargs["links"] = [tuple(link) for link in block["links"]]
        if "start_us" in block:
            kwargs["at_us"] = block["start_us"]
        return srlg_schedule(graph, sseed, **kwargs)
    raise ValueError(f"unknown event kind {kind!r}")  # pragma: no cover


def _compile_fault_block(
    name: str,
    index: int,
    block: Dict[str, Any],
    graph: TopologyGraph,
    seed: int,
    skews: Dict[str, int],
    windows: List[LinkFaultWindow],
) -> None:
    kind = block["kind"]
    rng = random.Random(f"chaos|{name}|faults[{index}]|{kind}|{seed}")
    if kind == "clock_skew":
        if "nodes" in block:
            victims = sorted(block["nodes"])
        else:
            pool = sorted(graph.nodes)
            victims = sorted(rng.sample(pool, min(block.get("count", 1), len(pool))))
        for victim in victims:
            if "skew_us" in block:
                skew = block["skew_us"]
            else:
                magnitude = rng.randrange(1, block["max_skew_us"] + 1)
                skew = magnitude if rng.random() < 0.5 else -magnitude
            skews[victim] = skews.get(victim, 0) + skew
        return
    links = tuple(
        sorted(_link_id(a, b) for a, b in block.get("links", []))
    )
    window = {
        "links": links,
        "start_us": block.get("start_us", 0),
        "end_us": block.get("end_us"),
    }
    if kind == "duplicate":
        windows.append(
            LinkFaultWindow("duplicate", probability=block["probability"], **window)
        )
    elif kind == "reorder":
        windows.append(
            LinkFaultWindow(
                "reorder",
                probability=block["probability"],
                magnitude_us=block.get("magnitude_us", 2_000),
                **window,
            )
        )
    elif kind == "gray":
        windows.append(LinkFaultWindow("gray", loss=block["loss"], **window))
    else:  # pragma: no cover - schema rejects unknown kinds
        raise ValueError(f"unknown fault kind {kind!r}")


def compile_document(doc: Dict[str, Any]) -> Scenario:
    """Compile one *validated* document into a :class:`Scenario`.

    Validation is the loader's job (:func:`load_scenario_file` runs it);
    feeding an unvalidated document here trades file:line diagnostics
    for whatever exception falls out first.
    """
    name = doc["name"]
    topo_block = doc["topology"]
    family = topo_block["family"]
    event_blocks: List[Dict[str, Any]] = list(doc.get("events") or ())
    fault_blocks: List[Dict[str, Any]] = list(doc.get("faults") or ())

    sizer: Optional[Callable[[int], Scenario]] = None
    if family == "waxman":
        nodes = topo_block["nodes"]
        topology = waxman_family(f"chaos-{name}", nodes)
        base_nodes = nodes
    elif family == "ba":
        nodes = topo_block["nodes"]
        topology = _ba_family(f"chaos-{name}", nodes)
        base_nodes = nodes
    elif family == "diamond":
        topology = _diamond_topology
        base_nodes = 4
    else:  # rocketfuel
        map_name = topo_block["map"]
        topology = lambda seed: rocketfuel_topology(map_name)  # noqa: E731
        base_nodes = None

    if family in ("waxman", "ba"):
        def sizer(n: int) -> Scenario:
            sized = dict(doc)
            sized["topology"] = dict(topo_block, nodes=n)
            return compile_document(sized)

    def schedule(graph: TopologyGraph, seed: int) -> EventSchedule:
        parts = [
            _compile_event_block(name, i, block, graph, seed)
            for i, block in enumerate(event_blocks)
        ]
        if not parts:
            return EventSchedule()
        if len(parts) == 1:
            return parts[0]
        return parts[0].merged(*parts[1:])

    tuning: Optional[Callable[[TopologyGraph, int], NetworkTuning]] = None
    if fault_blocks:
        def tuning(graph: TopologyGraph, seed: int) -> NetworkTuning:
            skews: Dict[str, int] = {}
            windows: List[LinkFaultWindow] = []
            for i, block in enumerate(fault_blocks):
                _compile_fault_block(name, i, block, graph, seed, skews, windows)
            return NetworkTuning(
                clock_skew_us=tuple(sorted(skews.items())),
                link_faults=tuple(windows),
            )

    has_gray = any(block.get("kind") == "gray" for block in fault_blocks)
    modes: Tuple[str, ...] = tuple(doc.get("modes") or ())
    if not modes:
        modes = ("vanilla",) if has_gray else DEFAULT_MODES

    expect_block = doc.get("expect") or {}
    predicates = []
    if expect_block.get("links_healed"):
        predicates.append(_expect_all_links_healed)
    if expect_block.get("nodes_up"):
        predicates.append(_expect_all_nodes_up)
    if "damping" in expect_block:
        damping = expect_block["damping"]
        predicates.append(_expect_damping(
            min_suppressed=damping.get("min_suppressed"),
            released_by_end=damping.get("released_by_end"),
        ))
    expect = None
    if predicates:
        def expect(result) -> bool:
            return all(predicate(result) for predicate in predicates)

    kwargs: Dict[str, Any] = {}
    for knob in ("jitter_us", "ordering", "settle_us", "tail_us"):
        if knob in doc:
            kwargs[knob] = doc[knob]
    return Scenario(
        name=name,
        description=doc.get(
            "description", f"chaos scenario {name!r} ({family} topology)"
        ),
        topology=topology,
        schedule=schedule,
        expect=expect,
        modes=modes,
        tuning=tuning,
        base_nodes=base_nodes,
        sizer=sizer,
        **kwargs,
    )


#: Compiled-scenario cache keyed on absolute path; invalidated when the
#: file's (mtime, size) changes, so edits recompile without a restart.
_FILE_CACHE: Dict[str, Tuple[Tuple[int, int], Scenario]] = {}


def load_scenario_file(path: str) -> Scenario:
    """Validate + compile a scenario file, with mtime-keyed caching.

    Raises :class:`ScenarioFileError` carrying ``path:line:col`` pointers
    when the document does not validate.
    """
    abspath = os.path.abspath(path)
    try:
        stat = os.stat(abspath)
    except OSError as exc:
        raise ScenarioFileError(
            path, validate_file(path)
        ) from exc
    stamp = (stat.st_mtime_ns, stat.st_size)
    cached = _FILE_CACHE.get(abspath)
    if cached is not None and cached[0] == stamp:
        return cached[1]
    issues = validate_file(path)
    if issues:
        raise ScenarioFileError(path, issues)
    doc, _marks = parse_file(path)
    scenario = compile_document(doc)
    _FILE_CACHE[abspath] = (stamp, scenario)
    return scenario
