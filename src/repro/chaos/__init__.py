"""Chaos scenario DSL: declarative, schema-validated failure environments.

A chaos document (YAML or JSON, ``schema: chaos/v1``) declares a
topology, discrete event blocks (flap storms, partitions,
crash/restarts, zone blackouts, SRLG correlated link groups) and
continuous fault families (per-node clock skew, packet duplication and
reordering, gray failures), and compiles into an ordinary sweep
:class:`~repro.sweep.Scenario` -- so every scenario file is a
sweep/fuzz/envelope/bench citizen addressable by path anywhere a
scenario name is accepted (``repro sweep --scenario-file f.yaml``,
``f.yaml~j1us``, ``f.yaml@40``, ``f.yaml+flap-storm``).

Layout: :mod:`~repro.chaos.schema` (the contract + validator),
:mod:`~repro.chaos.loader` (parsing and file:line diagnostics),
:mod:`~repro.chaos.compiler` (document -> Scenario),
:mod:`~repro.chaos.docgen` (the generated ``docs/scenario-schema.md``),
:mod:`~repro.chaos.cli` (``repro chaos validate`` / ``schema``).
"""

from repro.chaos.compiler import compile_document, load_scenario_file
from repro.chaos.docgen import schema_json, schema_markdown
from repro.chaos.loader import (
    FileIssue,
    ScenarioFileError,
    parse_file,
    sniff_scenario_file,
    validate_file,
)
from repro.chaos.schema import (
    SCENARIO_SCHEMA,
    SCHEMA_ID,
    SchemaIssue,
    validate_document,
)

__all__ = [
    "FileIssue",
    "SCENARIO_SCHEMA",
    "SCHEMA_ID",
    "ScenarioFileError",
    "SchemaIssue",
    "compile_document",
    "load_scenario_file",
    "parse_file",
    "schema_json",
    "schema_markdown",
    "sniff_scenario_file",
    "validate_document",
    "validate_file",
]
