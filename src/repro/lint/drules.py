"""Determinism rules (DET1xx): entropy and ordering hazards.

The replay theorem (production fingerprint == DEFINED replay
fingerprint) holds only if every source of randomness is a seeded,
string-keyed stream and every iteration that feeds payloads, schedules
or fingerprints is over an explicitly ordered structure.  These rules
flag the syntactic forms that historically break that:

* DET101 -- unseeded RNG: ``random.random()`` & friends hit the shared
  module-level generator; ``random.Random()`` with no arguments seeds
  from the OS.  Use ``random.Random(f"tag|{seed}")`` streams.
* DET102 -- wall clock: ``time.time()`` / ``datetime.now()`` values
  differ per run; schedules and payloads must use virtual time.
  ``perf_counter``/``monotonic`` are allowed (wall-duration reporting).
* DET103 -- ambient entropy: ``uuid.uuid1/uuid4``, ``os.urandom``,
  ``secrets.*`` are nondeterministic by design.
* DET104 -- ``id()`` in critical modules: CPython addresses vary per
  run; anything keyed or ordered by ``id()`` diverges under replay.
* DET105 -- unordered dict iteration in critical modules
  (``core/``, ``routing/``, ``simnet/``): ``.items()/.keys()/.values()``
  feeding an order-sensitive consumer must go through ``sorted(...)``.
  StateStore namespaces are exempt (sorted by construction), and
  order-insensitive aggregations (``sum``/``set``/``len``/...) are not
  flagged.
* DET106 -- iterating a set literal / ``set(...)`` without ``sorted``:
  set order is hash order, which varies with PYTHONHASHSEED.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.lint.engine import FileContext, Finding, dotted_name

#: ``random.<fn>`` calls that use the shared module-level generator.
_RANDOM_MODULE_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "getrandbits", "triangular", "vonmisesvariate",
    "seed",
})

#: Wall-clock reads (exact dotted suffixes); perf_counter/monotonic are
#: deliberately absent -- they are fine for wall-duration *reporting*.
_WALLCLOCK_TIME_FNS = frozenset({"time", "time_ns"})
_WALLCLOCK_DT_FNS = frozenset({"now", "utcnow", "today"})

#: Ambient-entropy calls.
_ENTROPY_UUID_FNS = frozenset({"uuid1", "uuid4"})

#: Callables whose result does not depend on argument order: feeding an
#: unordered iteration into one of these is harmless.
_ORDER_INSENSITIVE_CONSUMERS = frozenset({
    "set", "frozenset", "dict", "sum", "len", "any", "all", "max",
    "min", "sorted", "Counter", "defaultdict",
})

#: Method calls inside a loop body that make iteration order observable:
#: appending to an output buffer, scheduling events, allocating uids,
#: emitting messages or records.
_ORDER_SINK_METHODS = frozenset({
    "append", "extend", "insert", "send", "set_timer", "cancel_timer",
    "schedule", "record", "next_uid", "emit", "push", "write",
})

#: Dict-view accessors whose iteration order is insertion order.
_DICT_VIEW_METHODS = frozenset({"items", "keys", "values"})


def check(ctx: FileContext) -> Iterator[Finding]:
    imported = _entropy_imports(ctx.tree)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            yield from _check_call(ctx, node, imported)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            yield from _check_for(ctx, node)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            yield from _check_comprehension(ctx, node)


# ----------------------------------------------------------------------
# DET101-104: calls
# ----------------------------------------------------------------------
def _entropy_imports(tree: ast.AST) -> Dict[str, str]:
    """Local name -> rule id for hazards imported bare, so
    ``from random import random; random()`` is still caught."""
    by_module = {
        "random": (dict.fromkeys(_RANDOM_MODULE_FNS | {"Random"}, "DET101")),
        "time": dict.fromkeys(_WALLCLOCK_TIME_FNS, "DET102"),
        "uuid": dict.fromkeys(_ENTROPY_UUID_FNS, "DET103"),
        "os": {"urandom": "DET103"},
        "secrets": dict.fromkeys(
            ("token_bytes", "token_hex", "token_urlsafe", "randbelow",
             "randbits", "choice", "SystemRandom"),
            "DET103",
        ),
    }
    hazards: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module in by_module:
            wanted = by_module[node.module]
            for alias in node.names:
                if alias.name in wanted:
                    hazards[alias.asname or alias.name] = wanted[alias.name]
    return hazards


def _check_call(
    ctx: FileContext, node: ast.Call, imported: Dict[str, str]
) -> Iterator[Finding]:
    func = node.func
    name = dotted_name(func)

    # DET101: module-level random.* and unseeded Random()
    if name is not None:
        parts = name.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] in _RANDOM_MODULE_FNS:
                yield ctx.finding(
                    node, "DET101",
                    f"call to module-level random.{parts[1]}() uses the "
                    "shared unseeded generator",
                    hint="use a seeded stream: random.Random(f\"tag|{seed}\")",
                )
                return
        if parts[-1] == "Random" and not node.args and not node.keywords:
            yield ctx.finding(
                node, "DET101",
                "random.Random() with no arguments seeds from the OS",
                hint="pass a derived seed: random.Random(f\"tag|{seed}\")",
            )
            return
        if name in imported:
            yield ctx.finding(
                node, imported[name],
                f"bare call to {name}() imported from an entropy/clock "
                "module",
                hint="route through a seeded stream or virtual time",
            )
            return

    # DET102: wall clock
    if name is not None:
        parts = name.split(".")
        if len(parts) >= 2 and parts[0] == "time" and parts[-1] in _WALLCLOCK_TIME_FNS:
            yield ctx.finding(
                node, "DET102",
                f"wall-clock read {name}() differs per run",
                hint="use virtual time (stack.time_units()/now_us) for "
                     "anything that feeds payloads or schedules; "
                     "perf_counter() for wall-duration reporting",
            )
            return
        if parts[-1] in _WALLCLOCK_DT_FNS and any(
            p in ("datetime", "date") for p in parts[:-1]
        ):
            yield ctx.finding(
                node, "DET102",
                f"wall-clock read {name}() differs per run",
                hint="use virtual time for replayed state; pass timestamps "
                     "in explicitly for reports",
            )
            return

    # DET103: ambient entropy
    if name is not None:
        parts = name.split(".")
        if parts[0] == "uuid" and parts[-1] in _ENTROPY_UUID_FNS:
            yield ctx.finding(
                node, "DET103",
                f"{name}() draws ambient entropy",
                hint="derive ids from the seeded run context (seed_split)",
            )
            return
        if name == "os.urandom" or parts[0] == "secrets":
            yield ctx.finding(
                node, "DET103",
                f"{name}() draws ambient entropy",
                hint="derive bytes from a seeded random.Random stream",
            )
            return

    # DET104: id() in critical modules
    if (
        ctx.critical
        and isinstance(func, ast.Name)
        and func.id == "id"
        and node.args
    ):
        yield ctx.finding(
            node, "DET104",
            "id() yields a per-run CPython address",
            hint="key on a stable identifier (node_id, uid, sorted key) "
                 "instead",
        )


# ----------------------------------------------------------------------
# DET105/DET106: iteration order
# ----------------------------------------------------------------------
def _dict_view_call(ctx: FileContext, node: ast.AST) -> Optional[str]:
    """If ``node`` is ``recv.items()/keys()/values()`` on a non-namespace
    receiver, return the method name."""
    if not (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _DICT_VIEW_METHODS
        and not node.args
        and not node.keywords
    ):
        return None
    receiver = dotted_name(node.func.value)
    if receiver is not None and receiver in ctx.ns_receivers:
        return None  # namespaces iterate in sorted key order
    return node.func.attr


def _set_display(node: ast.AST) -> bool:
    """Is ``node`` syntactically a set (literal, comprehension, or
    ``set(...)``/``frozenset(...)`` call)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _body_has_order_sink(body: List[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ORDER_SINK_METHODS
            ):
                return True
    return False


def _consumed_order_insensitively(ctx: FileContext, node: ast.AST) -> bool:
    """Is this comprehension's result fed to an order-insensitive
    consumer (``set(...)``, ``sum(...)``, ``sorted(...)``, ...)?"""
    parent = ctx.parents.get(node)
    if isinstance(parent, ast.Call):
        consumer = dotted_name(parent.func)
        if consumer is not None:
            base = consumer.split(".")[-1]
            if base in _ORDER_INSENSITIVE_CONSUMERS:
                return True
    return False


def _check_for(
    ctx: FileContext, node: "ast.For | ast.AsyncFor"
) -> Iterator[Finding]:
    # DET106 applies everywhere; DET105 only in critical modules.
    if _set_display(node.iter):
        yield ctx.finding(
            node.iter, "DET106",
            "iterating a set: order is hash order (varies with "
            "PYTHONHASHSEED)",
            hint="wrap in sorted(...)",
        )
        return
    if not ctx.critical:
        return
    view = _dict_view_call(ctx, node.iter)
    if view is None:
        return
    if not _body_has_order_sink(node.body):
        return
    yield ctx.finding(
        node.iter, "DET105",
        f"iterating .{view}() in insertion order feeds an order-"
        "sensitive sink in a replay-critical module",
        hint=f"iterate sorted(....{view}()) (or an ordered source list)",
    )


def _check_comprehension(
    ctx: FileContext, node: "ast.ListComp | ast.GeneratorExp"
) -> Iterator[Finding]:
    for gen in node.generators:
        if _set_display(gen.iter):
            if not _consumed_order_insensitively(ctx, node):
                yield ctx.finding(
                    gen.iter, "DET106",
                    "comprehension over a set: order is hash order "
                    "(varies with PYTHONHASHSEED)",
                    hint="wrap in sorted(...)",
                )
            continue
        if not ctx.critical:
            continue
        view = _dict_view_call(ctx, gen.iter)
        if view is None:
            continue
        if _consumed_order_insensitively(ctx, node):
            continue
        yield ctx.finding(
            gen.iter, "DET105",
            f"comprehension over .{view}() produces insertion-ordered "
            "output in a replay-critical module",
            hint=f"iterate sorted(....{view}()) or feed an order-"
                 "insensitive aggregate (set/sum/dict/...)",
        )
