"""Suppression handling: inline pragmas and the committed baseline.

Pragma syntax (trailing on the flagged line, or a standalone comment
line applying to the next code line)::

    x = d.items()  # repro-lint: disable=DET105(aggregated into a set)
    # repro-lint: disable=STO201,STO202(fixture exercises the hazard)
    bad = ns.get("k")

Each rule id may carry a parenthesised reason; reasons are encouraged
(they survive as in-tree documentation of *why* the hazard is benign)
but not required.

The baseline (``lint-baseline.json``) is a committed list of
``{"path", "rule", "line"}`` entries for pre-existing findings, so the
gate can land without a flag-day fix-up.  Baseline entries that no
longer match any finding are *stale* and reported (an error under
``--strict``): a shrinking baseline should shrink the file too.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Sequence, Set, Tuple

from repro.lint.engine import Finding

_PRAGMA = re.compile(r"#\s*repro-lint:\s*disable=(?P<rules>[^#]*)")
_RULE_TOKEN = re.compile(r"([A-Z]{3}\d{3})(?:\(([^)]*)\))?")


def pragma_lines(source_lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line number -> set of rule ids disabled there."""
    disabled: Dict[int, Set[str]] = {}
    pending: Set[str] = set()
    for lineno, line in enumerate(source_lines, start=1):
        stripped = line.strip()
        match = _PRAGMA.search(line)
        rules: Set[str] = set()
        if match:
            rules = {m.group(1) for m in _RULE_TOKEN.finditer(match.group("rules"))}
        if stripped.startswith("#"):
            # standalone pragma comment: applies to the next code line
            if rules:
                pending |= rules
            continue
        here = set(rules)
        if pending and stripped:
            here |= pending
            pending = set()
        if here:
            disabled[lineno] = here
    return disabled


def apply_pragmas(
    findings: List[Finding], disabled: Dict[int, Set[str]]
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (active, pragma-suppressed)."""
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        if finding.rule in disabled.get(finding.line, ()):
            suppressed.append(finding)
        else:
            active.append(finding)
    return active, suppressed


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
def load_baseline(path: str) -> List[Dict[str, object]]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except FileNotFoundError:
        return []
    if not isinstance(data, list):
        raise ValueError(f"{path}: baseline must be a JSON list of entries")
    return data


def write_baseline(path: str, findings: List[Finding]) -> None:
    entries = [
        {"path": f.path, "rule": f.rule, "line": f.line}
        for f in sorted(findings)
    ]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(entries, fh, indent=2, sort_keys=True)
        fh.write("\n")


def apply_baseline(
    findings: List[Finding], entries: List[Dict[str, object]]
) -> Tuple[List[Finding], List[Finding], List[Dict[str, object]]]:
    """Split findings into (active, baselined); also return the stale
    baseline entries that matched nothing."""
    keys = {(e.get("path"), e.get("rule"), e.get("line")) for e in entries}
    active: List[Finding] = []
    baselined: List[Finding] = []
    matched: Set[Tuple[object, object, object]] = set()
    for finding in findings:
        key = finding.key()
        if key in keys:
            baselined.append(finding)
            matched.add(key)
        else:
            active.append(finding)
    stale = [
        e for e in entries
        if (e.get("path"), e.get("rule"), e.get("line")) not in matched
    ]
    return active, baselined, stale
