"""Reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.engine import Finding


def format_text(
    active: List[Finding],
    suppressed: int,
    baselined: int,
    stale: List[Dict[str, object]],
    checked_files: int,
) -> str:
    out: List[str] = []
    for f in active:
        line = f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}"
        if f.hint:
            line += f"  [fix: {f.hint}]"
        out.append(line)
    for entry in stale:
        out.append(
            f"stale baseline entry: {entry.get('path')}:{entry.get('line')} "
            f"{entry.get('rule')} no longer matches any finding -- remove it"
        )
    summary = (
        f"{len(active)} finding(s) in {checked_files} file(s)"
        f" ({suppressed} pragma-suppressed, {baselined} baselined"
        f", {len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'})"
    )
    out.append(summary)
    return "\n".join(out)


def format_json(
    active: List[Finding],
    suppressed: int,
    baselined: int,
    stale: List[Dict[str, object]],
    checked_files: int,
) -> str:
    return json.dumps(
        {
            "findings": [
                {
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "rule": f.rule,
                    "message": f.message,
                    "hint": f.hint,
                }
                for f in active
            ],
            "suppressed": suppressed,
            "baselined": baselined,
            "stale_baseline": stale,
            "checked_files": checked_files,
        },
        indent=2,
        sort_keys=True,
    )
