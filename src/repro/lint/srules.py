"""StateStore contract rules (STO2xx): write-barrier discipline.

Snapshots share stored values structurally, so the store's contract is:
values are immutable, every mutation is a *replacement* through the
namespace API, and restores follow the rollback engine's LIFO stack
discipline.  These rules catch the syntactic violations:

* STO201 -- storing a mutable literal (``list``/``dict``/``set``/
  ``bytearray``) into a namespace: the caller still holds the reference
  and any later in-place mutation corrupts every snapshot sharing it.
* STO202 -- mutating a name bound from ``ns.get(...)`` / ``ns[...]`` /
  ``ns.pop(...)``: same aliasing hazard from the read side.
* STO203 -- restoring a snapshot token that an earlier restore already
  invalidated: ``restore(v)`` discards every token younger than ``v``
  (stack discipline), so straight-line code that restores an old token
  and then a younger one is dead wrong, not just stale.
* STO204 -- mutating a message payload after origination (replay-critical
  modules only): the fingerprint pipeline canonicalizes and caches
  ``repr(payload)`` once when the message is originated
  (``Message.canonical_payload_repr``), so any later in-place mutation
  -- ``msg.payload.append(...)``, ``msg.payload[k] = v``, rebinding
  ``msg.payload``, or mutating a name bound from ``.payload`` --
  silently desynchronizes the cached identity tag from the live value.
  ``self.payload = ...`` is exempt (origination code owns ``self``).

Namespace receivers are identified per module (names bound from
``*.namespace(...)`` / ``Namespace(...)``); the runtime sanitizer
(``REPRO_SANITIZE=1``) catches dynamically what these rules cannot
prove statically.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.engine import FileContext, Finding, dotted_name

#: Expression nodes that build a mutable container literal.
_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)

#: Method calls that mutate a container in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "sort", "reverse",
    "__setitem__",
})

#: Namespace read accessors that hand back a stored value.
_READ_METHODS = frozenset({"get", "pop"})


def check(ctx: FileContext) -> Iterator[Finding]:
    yield from _check_sto201(ctx)
    for scope in _function_scopes(ctx.tree):
        yield from _check_sto202(ctx, scope)
        yield from _check_sto203(ctx, scope)
        if ctx.critical:
            yield from _check_sto204(ctx, scope)


def _function_scopes(tree: ast.AST) -> Iterator[ast.AST]:
    yield tree  # module level counts as a scope too
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _scope_statements(scope: ast.AST) -> List[ast.stmt]:
    """Every statement in the scope, excluding nested function bodies
    (they get their own pass), in lexical order."""
    out: List[ast.stmt] = []

    def visit(body: List[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            out.append(stmt)
            for field in ("body", "orelse", "finalbody"):
                visit(getattr(stmt, field, []) or [])
            for handler in getattr(stmt, "handlers", []) or []:
                visit(handler.body)

    visit(getattr(scope, "body", []))
    return out


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("list", "dict", "set", "bytearray")
    return False


# ----------------------------------------------------------------------
# STO201: mutable literal stored into a namespace
# ----------------------------------------------------------------------
def _check_sto201(ctx: FileContext) -> Iterator[Finding]:
    receivers = ctx.ns_receivers
    if not receivers:
        return
    for node in ast.walk(ctx.tree):
        value: Optional[ast.AST] = None
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "set"
            and len(node.args) == 2
            and dotted_name(node.func.value) in receivers
        ):
            value = node.args[1]
        elif (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Subscript)
            and dotted_name(node.targets[0].value) in receivers
        ):
            value = node.value
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("update", "replace")
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Dict)
            and dotted_name(node.func.value) in receivers
        ):
            # the mapping itself is consumed key-by-key; its *values*
            # are what end up stored
            for v in node.args[0].values:
                if v is not None and _is_mutable_literal(v):
                    value = v
                    break
        if value is not None and _is_mutable_literal(value):
            yield ctx.finding(
                value, "STO201",
                "mutable value stored into a StateStore namespace: "
                "snapshots share stored values structurally",
                hint="store an immutable form (tuple / frozenset / "
                     "frozen dataclass) instead",
            )


# ----------------------------------------------------------------------
# STO202: mutating a value read out of a namespace
# ----------------------------------------------------------------------
def _ns_read_binding(ctx: FileContext, stmt: ast.stmt) -> Optional[str]:
    """If ``stmt`` binds a simple name from ``ns.get(...)`` /
    ``ns.pop(...)`` / ``ns[...]``, return the name."""
    if not (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
    ):
        return None
    value = stmt.value
    receivers = ctx.ns_receivers
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr in _READ_METHODS
        and dotted_name(value.func.value) in receivers
    ):
        return stmt.targets[0].id
    if (
        isinstance(value, ast.Subscript)
        and dotted_name(value.value) in receivers
    ):
        return stmt.targets[0].id
    return None


def _check_sto202(ctx: FileContext, scope: ast.AST) -> Iterator[Finding]:
    if not ctx.ns_receivers:
        return
    statements = _scope_statements(scope)
    #: name -> line of its latest binding *from a namespace read*; a
    #: later re-binding from anything else evicts it.
    tainted: Dict[str, int] = {}
    for stmt in statements:
        bound = _ns_read_binding(ctx, stmt)
        if bound is not None:
            tainted[bound] = stmt.lineno
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    tainted.pop(target.id, None)
        if not tainted:
            continue
        yield from _mutations_of(ctx, stmt, tainted)


def _mutations_of(
    ctx: FileContext, stmt: ast.stmt, tainted: Dict[str, int]
) -> Iterator[Finding]:
    def hit(name_node: ast.AST) -> Optional[str]:
        if isinstance(name_node, ast.Name) and name_node.id in tainted:
            return name_node.id
        return None

    message = (
        "in-place mutation of a value read from a StateStore "
        "namespace: the store (and every snapshot) still references it"
    )
    hint = "build a replacement and store it back through the namespace"

    if isinstance(stmt, ast.AugAssign):
        target = stmt.target
        base = target.value if isinstance(
            target, (ast.Subscript, ast.Attribute)
        ) else target
        if hit(base):
            yield ctx.finding(stmt, "STO202", message, hint)
        return
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)) and hit(
                target.value
            ):
                yield ctx.finding(stmt, "STO202", message, hint)
                return
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
            and hit(node.func.value)
        ):
            yield ctx.finding(node, "STO202", message, hint)


# ----------------------------------------------------------------------
# STO203: LIFO restore discipline
# ----------------------------------------------------------------------
def _check_sto203(ctx: FileContext, scope: ast.AST) -> Iterator[Finding]:
    statements = _scope_statements(scope)
    #: receiver -> stack of live token names (oldest first)
    stacks: Dict[str, List[str]] = {}
    invalidated: Dict[Tuple[str, str], int] = {}
    for stmt in statements:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr == "snapshot"
            and not stmt.value.args
        ):
            receiver = dotted_name(stmt.value.func.value)
            if receiver is None:
                continue
            token = stmt.targets[0].id
            stack = stacks.setdefault(receiver, [])
            if token in stack:
                stack.remove(token)
            stack.append(token)
            invalidated.pop((receiver, token), None)
            continue
        for node in ast.walk(stmt):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "restore"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Name)
            ):
                continue
            receiver = dotted_name(node.func.value)
            if receiver is None or receiver not in stacks:
                continue
            token = node.args[0].id
            stack = stacks[receiver]
            key = (receiver, token)
            if key in invalidated:
                yield ctx.finding(
                    node, "STO203",
                    f"restore of {token!r} after an earlier restore of an "
                    f"older snapshot already discarded it (line "
                    f"{invalidated[key]}): restores follow LIFO stack "
                    "discipline",
                    hint="restore tokens newest-first, or re-snapshot "
                         "after rolling back",
                )
                continue
            if token not in stack:
                continue  # token from a branch/loop we did not model
            while stack and stack[-1] != token:
                younger = stack.pop()
                invalidated[(receiver, younger)] = node.lineno
            # the restored token itself stays live (pristine record)
    return


# ----------------------------------------------------------------------
# STO204: payload mutation after origination
# ----------------------------------------------------------------------
_PAYLOAD_ATTR = "payload"

_STO204_MESSAGE = (
    "payload mutated after origination: the fingerprint pipeline "
    "canonicalizes repr(payload) once at send time and caches the "
    "identity tag, so in-place changes desynchronize the cached tag "
    "from the live value"
)
_STO204_HINT = (
    "build the final (immutable) payload before originating the "
    "message; derive changed messages with dataclasses.replace"
)


def _is_payload_attr(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and node.attr == _PAYLOAD_ATTR


def _payload_binding_names(stmt: ast.stmt) -> List[str]:
    """Names bound from ``<expr>.payload`` (plain, annotated, or
    tuple-unpacked -- unpacking aliases the payload's elements)."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target, value = stmt.targets[0], stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        target, value = stmt.target, stmt.value
    else:
        return []
    if not _is_payload_attr(value):
        return []
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        return [e.id for e in target.elts if isinstance(e, ast.Name)]
    return []


def _check_sto204(ctx: FileContext, scope: ast.AST) -> Iterator[Finding]:
    #: name -> binding line for names aliasing a payload (or an element
    #: of one); re-binding from anything else evicts, like STO202.
    tainted: Dict[str, int] = {}
    #: compound statements nest in _scope_statements, so every node
    #: flags at most once
    seen: set = set()

    def aliases_payload(node: ast.AST) -> bool:
        if _is_payload_attr(node):
            return True
        return isinstance(node, ast.Name) and node.id in tainted

    def flag(node: ast.AST) -> Iterator[Finding]:
        if id(node) not in seen:
            seen.add(id(node))
            yield ctx.finding(node, "STO204", _STO204_MESSAGE, _STO204_HINT)

    for stmt in _scope_statements(scope):
        bound = _payload_binding_names(stmt)
        if bound:
            for name in bound:
                tainted[name] = stmt.lineno
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    tainted.pop(target.id, None)
        if isinstance(stmt, ast.AugAssign):
            target = stmt.target
            base = target.value if isinstance(
                target, (ast.Subscript, ast.Attribute)
            ) else target
            if aliases_payload(base) or _is_payload_attr(target):
                yield from flag(stmt)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript) and aliases_payload(
                    target.value
                ):
                    yield from flag(stmt)
                elif (
                    _is_payload_attr(target)
                    # origination code owns self: __init__-style
                    # "self.payload = ..." is the origination itself
                    and not (
                        isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    )
                ):
                    yield from flag(stmt)
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
                and aliases_payload(node.func.value)
            ):
                yield from flag(node)
