"""repro lint: the static half of the determinism contract.

``run_lint(paths)`` walks the given files/directories, runs the D-rules
(:mod:`repro.lint.drules`) and S-rules (:mod:`repro.lint.srules`) over
each, applies inline ``# repro-lint: disable=...`` pragmas and the
committed baseline, and returns a :class:`LintResult`.  The runtime
half of the same contract is the StateStore sanitizer
(``REPRO_SANITIZE=1``; see :mod:`repro.core.statestore`).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional

from repro.lint import suppress as _suppress
from repro.lint.engine import (
    Finding,
    check_file,
    check_scenario_file,
    iter_python_files,
    iter_scenario_files,
)

#: Every rule id with its one-line contract (mirrored in the README's
#: "Determinism contract" section; the lint tests assert the mirror).
RULES: Dict[str, str] = {
    "DET101": "no unseeded RNG: module-level random.* or bare Random()",
    "DET102": "no wall-clock reads (time.time/datetime.now) in replayed "
              "logic; perf_counter is allowed for wall-duration reporting",
    "DET103": "no ambient entropy: uuid1/uuid4, os.urandom, secrets.*",
    "DET104": "no id() in replay-critical modules (per-run addresses)",
    "DET105": "no insertion-ordered dict iteration feeding an "
              "order-sensitive sink in core/, routing/, simnet/",
    "DET106": "no iterating sets without sorted() (hash order)",
    "STO201": "no storing mutable literals into StateStore namespaces",
    "STO202": "no in-place mutation of values read from a namespace",
    "STO203": "no restoring a snapshot token an earlier restore of an "
              "older token already discarded (LIFO stack discipline)",
    "STO204": "no mutating a message payload after origination (the "
              "fingerprint pipeline caches repr(payload) at send time)",
    "CHS301": "every in-tree chaos scenario file (YAML/JSON with a "
              "`schema: chaos/...` header) must validate and compile",
}

DEFAULT_BASELINE = "lint-baseline.json"


@dataclasses.dataclass
class LintResult:
    active: List[Finding]
    pragma_suppressed: List[Finding]
    baselined: List[Finding]
    stale_baseline: List[Dict[str, object]]
    checked_files: int

    @property
    def clean(self) -> bool:
        return not self.active

    @property
    def strict_clean(self) -> bool:
        return not self.active and not self.stale_baseline


def run_lint(
    paths: List[str],
    root: Optional[str] = None,
    baseline_path: Optional[str] = None,
) -> LintResult:
    root = os.path.abspath(root or os.getcwd())
    all_active: List[Finding] = []
    all_pragma: List[Finding] = []
    checked = 0
    for path, relpath in iter_python_files(paths, root):
        checked += 1
        findings = check_file(path, relpath)
        if not findings:
            continue
        with open(path, "r", encoding="utf-8") as fh:
            disabled = _suppress.pragma_lines(fh.read().splitlines())
        active, suppressed = _suppress.apply_pragmas(findings, disabled)
        all_active.extend(active)
        all_pragma.extend(suppressed)
    for path, relpath in iter_scenario_files(paths, root):
        findings = check_scenario_file(path, relpath)
        if findings is None:
            continue  # YAML/JSON without a chaos header is not ours
        checked += 1
        if not findings:
            continue
        with open(path, "r", encoding="utf-8") as fh:
            disabled = _suppress.pragma_lines(fh.read().splitlines())
        active, suppressed = _suppress.apply_pragmas(findings, disabled)
        all_active.extend(active)
        all_pragma.extend(suppressed)
    entries: List[Dict[str, object]] = []
    if baseline_path:
        entries = _suppress.load_baseline(baseline_path)
    active, baselined, stale = _suppress.apply_baseline(all_active, entries)
    active.sort()
    return LintResult(
        active=active,
        pragma_suppressed=all_pragma,
        baselined=baselined,
        stale_baseline=stale,
        checked_files=checked,
    )


__all__ = [
    "Finding",
    "LintResult",
    "RULES",
    "DEFAULT_BASELINE",
    "run_lint",
]
