"""CLI glue for ``repro lint``.

Exit status: 0 clean; 1 active findings (or, under ``--strict``, stale
baseline entries); 2 usage errors.  ``--write-baseline`` records the
current active findings as the new baseline and exits 0 -- the
adoption path for turning the gate on before every hazard is fixed.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.lint import DEFAULT_BASELINE, run_lint
from repro.lint import suppress as _suppress
from repro.lint.report import format_json, format_text


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings as the baseline and exit 0",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail on stale baseline entries",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable JSON report",
    )


def main(args: argparse.Namespace) -> int:
    paths: List[str] = args.paths or ["src/repro"]
    root = os.getcwd()
    baseline: Optional[str] = args.baseline
    if baseline is None and os.path.exists(os.path.join(root, DEFAULT_BASELINE)):
        baseline = os.path.join(root, DEFAULT_BASELINE)
    for raw in paths:
        target = raw if os.path.isabs(raw) else os.path.join(root, raw)
        if not os.path.exists(target):
            print(f"repro lint: no such path: {raw}", file=sys.stderr)
            return 2

    result = run_lint(paths, root=root, baseline_path=baseline)

    if args.write_baseline:
        target = baseline or os.path.join(root, DEFAULT_BASELINE)
        _suppress.write_baseline(target, result.active)
        print(
            f"wrote {len(result.active)} entr"
            f"{'y' if len(result.active) == 1 else 'ies'} to {target}"
        )
        return 0

    formatter = format_json if args.as_json else format_text
    print(
        formatter(
            result.active,
            len(result.pragma_suppressed),
            len(result.baselined),
            result.stale_baseline,
            result.checked_files,
        )
    )
    if result.active:
        return 1
    if args.strict and result.stale_baseline:
        return 1
    return 0
