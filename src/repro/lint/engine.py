"""Rule engine: file discovery, per-file AST context, shared analyses.

Each rule module exposes ``check(ctx) -> Iterator[Finding]`` over a
:class:`FileContext`.  The context carries the parsed tree plus the two
analyses several rules share:

* a child->parent node map (``ctx.parents``), so rules can ask how an
  expression's value is consumed (e.g. "is this comprehension's result
  fed straight into ``set()``?");
* the set of *namespace receivers* (``ctx.ns_receivers``): dotted names
  bound from ``<store>.namespace(...)`` or ``Namespace(...)`` anywhere
  in the module.  StateStore namespaces iterate in sorted key order by
  construction, so iterating one is ordered even though it quacks like
  a dict -- the D-rules must not flag it, and the S-rules key off it.

Criticality: modules under ``core/``, ``routing/`` or ``simnet/`` are
replay/fingerprint-critical -- the ordering rules (DET104/DET105) only
apply there.  The path test is segment-based so the fixture corpus
(``tests/lint_fixtures/core/...``) inherits criticality from its layout.
"""

from __future__ import annotations

import ast
import dataclasses
import os
from pathlib import PurePath
from typing import Dict, Iterator, List, Optional, Set, Tuple

#: Path segments that mark a module replay/fingerprint-critical.
CRITICAL_PARTS = frozenset({"core", "routing", "simnet"})


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One lint hit, sortable into deterministic report order."""

    path: str  # posix-style, relative to the lint invocation root
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""

    def key(self) -> Tuple[str, str, int]:
        """Identity used by baseline matching (column-insensitive so a
        reformat does not churn the baseline)."""
        return (self.path, self.rule, self.line)


class FileContext:
    """Everything a rule needs to know about one source file."""

    def __init__(self, path: str, relpath: str, source: str):
        self.path = path
        self.relpath = relpath.replace(os.sep, "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=self.relpath)
        self.critical = bool(CRITICAL_PARTS & set(PurePath(self.relpath).parts))
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        self._ns_receivers: Optional[Set[str]] = None

    # ------------------------------------------------------------------
    # shared analyses (lazy; several rules want them)
    # ------------------------------------------------------------------
    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    @property
    def ns_receivers(self) -> Set[str]:
        """Dotted names (``rib``, ``self._timers``) bound from
        ``*.namespace(...)`` or ``Namespace(...)`` in this module."""
        if self._ns_receivers is None:
            self._ns_receivers = _collect_ns_receivers(self.tree)
        return self._ns_receivers

    def finding(
        self, node: ast.AST, rule: str, message: str, hint: str = ""
    ) -> Finding:
        return Finding(
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
            hint=hint,
        )


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def _ns_constructor(value: ast.AST) -> bool:
    """Does this expression build/fetch a StateStore namespace?"""
    if isinstance(value, ast.IfExp):
        return _ns_constructor(value.body) or _ns_constructor(value.orelse)
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute):
        return func.attr in ("namespace", "Namespace")
    if isinstance(func, ast.Name):
        return func.id == "Namespace"
    return False


def _collect_ns_receivers(tree: ast.AST) -> Set[str]:
    receivers: Set[str] = set()
    for node in ast.walk(tree):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            value = node.value
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value = node.value
            targets = [node.target]
        else:
            continue
        if not _ns_constructor(value):
            continue
        for target in targets:
            name = dotted_name(target)
            if name is not None:
                receivers.add(name)
    return receivers


# ----------------------------------------------------------------------
# file discovery
# ----------------------------------------------------------------------
#: Extensions that may hold chaos scenario documents (CHS301).
SCENARIO_SUFFIXES = (".yaml", ".yml", ".json")


def _iter_files(
    paths: List[str], root: str, suffixes: Tuple[str, ...]
) -> Iterator[Tuple[str, str]]:
    """Yield ``(abspath, relpath)`` for every file under ``paths`` whose
    name ends with one of ``suffixes``, sorted for deterministic report
    order."""
    seen: Set[str] = set()
    collected: List[Tuple[str, str]] = []
    for raw in paths:
        target = raw if os.path.isabs(raw) else os.path.join(root, raw)
        if os.path.isfile(target):
            candidates = [target] if target.endswith(suffixes) else []
        else:
            candidates = []
            for dirpath, dirnames, filenames in os.walk(target):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for fn in sorted(filenames):
                    if fn.endswith(suffixes):
                        candidates.append(os.path.join(dirpath, fn))
        for path in candidates:
            path = os.path.abspath(path)
            if path in seen:
                continue
            seen.add(path)
            collected.append((path, os.path.relpath(path, root)))
    collected.sort(key=lambda pair: pair[1])
    yield from collected


def iter_python_files(paths: List[str], root: str) -> Iterator[Tuple[str, str]]:
    """Yield ``(abspath, relpath)`` for every .py under ``paths``,
    sorted for deterministic report order."""
    yield from _iter_files(paths, root, (".py",))


def iter_scenario_files(
    paths: List[str], root: str
) -> Iterator[Tuple[str, str]]:
    """Yield ``(abspath, relpath)`` for every YAML/JSON file under
    ``paths``, sorted.  Whether a given file actually *is* a chaos
    scenario is decided later by sniffing its ``schema:`` header."""
    yield from _iter_files(paths, root, SCENARIO_SUFFIXES)


def check_file(path: str, relpath: str) -> List[Finding]:
    """Parse one file and run every rule over it."""
    from repro.lint import drules, srules

    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    try:
        ctx = FileContext(path, relpath, source)
    except SyntaxError as exc:
        return [
            Finding(
                path=relpath.replace(os.sep, "/"),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule="LNT000",
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error; no other rules ran",
            )
        ]
    findings: List[Finding] = []
    findings.extend(drules.check(ctx))
    findings.extend(srules.check(ctx))
    findings.sort()
    return findings


def check_scenario_file(path: str, relpath: str) -> Optional[List[Finding]]:
    """Validate one chaos scenario document (rule CHS301).

    Returns ``None`` when the file is not a chaos scenario at all (no
    ``schema: chaos/...`` header) so ambient YAML/JSON -- CI configs,
    baselines -- is not dragged under the schema.  A scenario that fails
    to parse or validate yields one finding per issue, anchored at the
    offending line/column."""
    from repro import chaos

    if not chaos.sniff_scenario_file(path):
        return None
    findings = [
        Finding(
            path=relpath.replace(os.sep, "/"),
            line=issue.line,
            col=issue.col,
            rule="CHS301",
            message=issue.message,
            hint="fix the document against docs/scenario-schema.md; "
            "`repro chaos validate <file>` reproduces this locally",
        )
        for issue in chaos.validate_file(path)
    ]
    findings.sort()
    return findings
