"""repro: a full reproduction of *DEFINED: Deterministic Execution for
Interactive Control-Plane Debugging* (Lin, Jalaparti, Caesar, Van der
Merwe, 2013).

Public surface:

* :mod:`repro.simnet` -- deterministic discrete-event network simulator
  (the testbed substrate);
* :mod:`repro.core` -- DEFINED itself: the DEFINED-RB production shim
  (speculative deterministic delivery with rollback) and the DEFINED-LS
  lockstep debugging coordinator with interactive stepping;
* :mod:`repro.routing` -- control-plane daemons (OSPF, BGP, RIP),
  including the two historical bugs the paper's case studies reproduce;
* :mod:`repro.topology` -- Rocketfuel-style / BRITE-style topologies and
  Tier-1-like event traces;
* :mod:`repro.baselines` -- DDOS-style stop-and-wait and comprehensive-
  logging comparison points;
* :mod:`repro.harness` -- experiment drivers used by the benchmark suite;
* :mod:`repro.analysis` -- CDFs, series and report rendering.

Quickstart::

    from repro.harness import run_production, run_ls_replay
    from repro.topology import rocketfuel_topology
    from repro.topology.traces import compressed_trace

    graph = rocketfuel_topology("ebone")
    trace = compressed_trace(graph, n_events=6)
    prod = run_production(graph, trace, mode="defined", seed=7)
    replay = run_ls_replay(graph, prod.recording)
    assert replay.fingerprint == prod.fingerprint   # Theorem 1
"""

__version__ = "1.0.0"

from repro import analysis, baselines, core, routing, simnet, topology  # noqa: F401
from repro.harness import (  # noqa: F401
    ProductionResult,
    ReplayResult,
    run_ls_replay,
    run_production,
)

__all__ = [
    "ProductionResult",
    "ReplayResult",
    "analysis",
    "baselines",
    "core",
    "harness",
    "routing",
    "simnet",
    "topology",
    "run_ls_replay",
    "run_production",
]
