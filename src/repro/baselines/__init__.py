"""Comparison points from the paper's related work.

* :mod:`repro.baselines.ddos` -- a DDOS-style (ASPLOS'13) *stop-and-wait*
  deterministic delivery stack: same deterministic order as DEFINED-RB,
  achieved by blocking instead of speculating.  Used to quantify why the
  paper chose speculative execution (Section 6, "Deterministic
  execution").
* :mod:`repro.baselines.logging_replay` -- the record-everything school
  (Friday, OFRewind): comprehensive per-node logging for volume
  comparison, and the *naive partial replay* that motivates the paper --
  replaying only external events without masking internal nondeterminism
  fails to reproduce ordering bugs.
"""

from repro.baselines.ddos import DdosStack
from repro.baselines.logging_replay import (
    ComprehensiveLog,
    LoggingStack,
    log_volume_comparison,
)

__all__ = [
    "ComprehensiveLog",
    "DdosStack",
    "LoggingStack",
    "log_volume_comparison",
]
