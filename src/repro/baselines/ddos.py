"""A DDOS-style stop-and-wait deterministic delivery stack.

DDOS (Hunt et al., ASPLOS 2013) achieves deterministic distributed
execution by *blocking*: when the application asks for the next message,
the runtime holds the read until it is sure no earlier message (in the
deterministic order) can still arrive.  No rollbacks, no checkpoints --
but every delivery waits out the worst-case skew, which is exactly why
the paper argues blocking "can slow down software that requires constant
communications, such as control-plane software" and builds DEFINED-RB on
speculation instead.

This stack delivers events in the *same* deterministic key order as
:class:`~repro.core.shim.DefinedShim` (group, d_i, n_i, s_i), but releases
each event only after a conservative hold: one maximum network propagation
time after arrival.  By then every message that could sort before it has
arrived, so in-order release is safe and the execution is deterministic
across seeds -- at the price of per-hop latency, which the ablation bench
(`benchmarks/test_ablations.py`) quantifies against DEFINED-RB.

Timers and annotations work as in the shim (virtual time from beacons,
origination/inheritance rules), so daemons run unmodified.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Set, Tuple

from repro.core.history import HistoryEntry
from repro.core.ordering import OptimizedOrdering, OrderingFunction
from repro.simnet.events import ExternalEvent
from repro.simnet.messages import Annotation, Message
from repro.simnet.node import Node, Stack


class DdosStack(Stack):
    """Stop-and-wait deterministic delivery (no speculation)."""

    def __init__(
        self,
        node: Node,
        ordering: Optional[OrderingFunction] = None,
        hold_us: Optional[int] = None,
        chain_bound: int = 64,
        hop_cost_us: int = 140,
    ) -> None:
        super().__init__(node)
        self.ordering = ordering if ordering is not None else OptimizedOrdering()
        self._hold_us = hold_us
        self.chain_bound = chain_bound
        self.hop_cost_us = hop_cost_us
        self.vt = 0
        self._origin_seq = 0
        self._sub_seq = 0
        self._ext_seq = 0
        self._timer_seq = 0
        self._timers = {}
        # heap of (key, ready_us, tie, entry)
        self._pending: List[Tuple[tuple, int, int, HistoryEntry]] = []
        self._tie = 0
        self._last_key: Optional[tuple] = None
        self._current_entry: Optional[HistoryEntry] = None
        self.late_deliveries = 0
        self._started = False
        self._prestart: List[Message] = []
        self._booted_once = False
        #: Set by the harness to ``lambda: beacons.group`` so a rebooting
        #: stack can rejoin at the network's *current* group instead of
        #: virtual time 0 (mirrors the DEFINED shim's rejoin protocol).
        self.group_provider = None
        #: Smallest group whose traffic this incarnation can observe, and
        #: the sim time it booted: groups that closed before boot are
        #: releasable immediately (their messages were dropped while the
        #: node was down and can never arrive).
        self._min_group = 0
        self._boot_at_us = 0

    def hold_us(self) -> int:
        """Slack after a group's closing beacon before its messages are
        deemed complete: worst-case propagation plus a chain allowance
        (a causal chain tagged group *g* can keep extending shortly after
        beacon *g+1*, until the chain bound reassigns children)."""
        if self._hold_us is None:
            self._hold_us = self.node.network.max_propagation_us() + 100_000
        return self._hold_us

    # ------------------------------------------------------------------
    # app-facing API (annotation rules identical to the shim)
    # ------------------------------------------------------------------
    def send(self, dst, protocol, payload, parent=None, size_bytes=64) -> None:
        network = self.node.network
        link_avg = (
            network.avg_link_delay_us(self.node.node_id, dst) + self.hop_cost_us
        )
        if parent is not None and parent.annotation is not None:
            pa = parent.annotation
            self._sub_seq += 1
            # DDOS semantics: every communication step advances virtual
            # time.  A group-g entry is only *released* once group g has
            # closed, so its children must belong to the next group --
            # inheriting the group (as the speculative shim does) would
            # create messages for an already-closed group.  This is also
            # precisely why blocking determinism is slow for control
            # planes: a k-hop causal chain costs k beacon intervals.
            annotation = pa.extended(
                link_delay_us=link_avg,
                sub=self._sub_seq,
                over_chain_bound=True,
                sender=self.node.node_id,
            )
        else:
            self._origin_seq += 1
            group = (
                self._current_entry.group
                if self._current_entry is not None
                else self.vt
            )
            annotation = Annotation(
                origin=self.node.node_id,
                seq=self._origin_seq,
                delay_us=link_avg,
                group=group,
                sender=self.node.node_id,
            )
        network.transmit(
            Message(
                src=self.node.node_id,
                dst=dst,
                protocol=protocol,
                payload=payload,
                annotation=annotation,
                size_bytes=size_bytes,
            )
        )

    def set_timer(self, delay_units: int, key: str) -> None:
        base = (
            self._current_entry.group if self._current_entry is not None else self.vt
        )
        self._timers[key] = (base + max(1, delay_units), self._timer_seq)
        self._timer_seq += 1

    def cancel_timer(self, key: str) -> None:
        self._timers.pop(key, None)

    def time_units(self) -> int:
        return self.vt

    # ------------------------------------------------------------------
    # node-facing API
    # ------------------------------------------------------------------
    def start(self) -> None:
        reboot = self._booted_once
        self._booted_once = True
        self.vt = 0
        self._timers = {}
        self._pending = []
        self._last_key = None
        self._beacon_at = {0: 0}
        self._min_group = 0
        self._boot_at_us = 0
        if reboot:
            # Rejoin at the current group (beacon-service time is shared
            # deterministic state), not at virtual time 0: a time-0 reboot
            # would re-arm startup timers for long-closed groups and tag
            # originations with keys sorting below everything already
            # released network-wide.
            if self.group_provider is not None:
                self.vt = self.group_provider()
            self._min_group = self.vt
            self._boot_at_us = self.sim.now
            self._beacon_at = {self.vt: self.sim.now}
        if self.daemon is not None:
            self.daemon.on_start()
        self._started = True
        buffered, self._prestart = self._prestart, []
        for msg in buffered:
            self.on_wire(msg)

    def on_wire(self, msg: Message) -> None:
        if not self._started:
            self._prestart.append(msg)
            return
        if msg.protocol == "_beacon":
            if msg.payload > self.vt:
                self.vt = msg.payload
                self._beacon_at[msg.payload] = self.sim.now
                self._enqueue_due_timers()
                self._drain()
            return
        if msg.is_control:
            return
        if msg.annotation is None:
            raise ValueError("unannotated message reached a DDOS node")
        entry = HistoryEntry(
            kind="msg",
            key=self.ordering.key(msg.annotation),
            msg=msg,
            group=msg.annotation.group,
        )
        self._push(entry)

    def on_external(self, event: ExternalEvent) -> None:
        seq = self._ext_seq
        self._ext_seq += 1
        entry = HistoryEntry(
            kind="ext",
            key=self.ordering.external_key(self.vt, self.node.node_id, seq),
            event=event,
            group=self.vt,
            seq=seq,
        )
        self._push(entry)

    # ------------------------------------------------------------------
    # blocking release machinery
    # ------------------------------------------------------------------
    def _enqueue_due_timers(self) -> None:
        due = sorted(
            (expiry, seq, key)
            for key, (expiry, seq) in self._timers.items()
            if expiry <= self.vt
        )
        for expiry, seq, key in due:
            del self._timers[key]
            entry = HistoryEntry(
                kind="timer",
                key=self.ordering.timer_key(expiry, self.node.node_id, seq),
                group=expiry,
                seq=seq,
                timer_key=key,
            )
            self._push(entry)

    def _push(self, entry: HistoryEntry) -> None:
        heapq.heappush(self._pending, (entry.key, self._tie, entry))
        self._tie += 1
        self._drain()

    def _schedule_drain(self, delay_us: int) -> None:
        self.sim.schedule(delay_us, self._drain, label=f"ddos-drain:{self.node.node_id}")

    def _safe_at(self, entry: HistoryEntry) -> Optional[int]:
        """Earliest time the head entry may be released.

        A group-*g* message is safe once group *g* has *closed*: the
        beacon opening *g+1* has been observed and a hold has elapsed, so
        no group-*g* message (with a possibly smaller key) is in flight.
        Timers and external events carry the group's smallest keys, so
        they only need the *previous* group closed.  ``None`` means the
        closing beacon has not even arrived yet.
        """
        close_group = entry.group if entry.kind == "msg" else entry.group - 1
        if close_group < self._min_group:
            # The group closed before this incarnation booted; anything
            # tagged with it that could still reach us already has (the
            # network dropped traffic to the node while it was down).
            return self._boot_at_us
        opened = self._beacon_at.get(close_group + 1)
        if opened is None:
            return None
        return opened + self.hold_us()

    def _drain(self) -> None:
        """Release, in key order, every head entry whose group has closed."""
        while self._pending:
            key, _tie, entry = self._pending[0]
            safe_at = self._safe_at(entry)
            if safe_at is None:
                return  # wait for the closing beacon; _drain reruns then
            if safe_at > self.sim.now:
                # nothing behind the head may jump the queue: that wait
                # is the stop-and-wait cost the ablation measures
                self._schedule_drain(safe_at - self.sim.now)
                return
            heapq.heappop(self._pending)
            if self._last_key is not None and key <= self._last_key:
                # the hold was not conservative enough for this arrival;
                # deliver anyway (dropping would break the protocol) and
                # count the ordering miss -- experiments assert zero
                self.late_deliveries += 1
            else:
                self._last_key = key
            self._deliver(entry)

    def _deliver(self, entry: HistoryEntry) -> None:
        self.log_delivery(entry.tag())
        self.node.stats.deliveries += 1
        self._current_entry = entry
        try:
            if self.daemon is not None:
                if entry.kind == "msg":
                    self.daemon.on_message(entry.msg)
                elif entry.kind == "ext":
                    self.daemon.on_external(entry.event)
                else:
                    self.daemon.on_timer(entry.timer_key)
        finally:
            self._current_entry = None
