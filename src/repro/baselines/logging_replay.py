"""The record-everything school (Friday / OFRewind) as a baseline.

The paper's motivation (Section 1): comprehensive recording gives
system-wide reproducibility, but logging *every* event at *every* node is
infeasible at production scale, so operators fall back to partial
recordings -- which then cannot reproduce nondeterministic bugs.

Two artifacts quantify that motivation here:

* :class:`LoggingStack` -- an uninstrumented stack that additionally
  writes a comprehensive log (every delivery, timer fire and external
  event, with payloads and timestamps).  Its byte count, compared to the
  DEFINED partial recording of the same run, is the log-volume ablation.
* naive partial replay -- re-running the external schedule on a fresh
  vanilla network.  Without DEFINED's internal determinism, the replay's
  internal orderings are fresh random draws, so order-dependent outcomes
  (the XORP MED bug) reproduce only by luck.  The case-study benches
  demonstrate this directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.simnet.events import ExternalEvent
from repro.simnet.messages import Message
from repro.simnet.node import Node, VanillaStack

#: Fixed per-record framing overhead (timestamp, node id, type tag) --
#: roughly what a binary log format like OFRewind's datapath records pays.
RECORD_OVERHEAD_BYTES = 24


@dataclass
class ComprehensiveLog:
    """An everything-log for one run (all nodes pooled)."""

    records: int = 0
    bytes: int = 0
    per_node_bytes: Dict[str, int] = field(default_factory=dict)

    def add(self, node: str, size_bytes: int) -> None:
        self.records += 1
        total = RECORD_OVERHEAD_BYTES + size_bytes
        self.bytes += total
        self.per_node_bytes[node] = self.per_node_bytes.get(node, 0) + total


class LoggingStack(VanillaStack):
    """Vanilla stack + comprehensive recording of every internal event."""

    def __init__(self, node: Node, log: ComprehensiveLog, **kwargs) -> None:
        super().__init__(node, **kwargs)
        self.comprehensive_log = log

    def on_wire(self, msg: Message) -> None:
        if not msg.is_control:
            self.comprehensive_log.add(self.node.node_id, msg.size_bytes)
        super().on_wire(msg)

    def on_external(self, event: ExternalEvent) -> None:
        self.comprehensive_log.add(
            self.node.node_id, 16 + len(repr(event.target)) + len(repr(event.data))
        )
        super().on_external(event)

    def _fire_timer(self, key: str) -> None:
        self.comprehensive_log.add(self.node.node_id, 8 + len(key))
        super()._fire_timer(key)


def log_volume_comparison(
    comprehensive: ComprehensiveLog, partial_bytes: int
) -> List[Tuple[str, float]]:
    """Rows for the log-volume ablation table.

    Returns (label, bytes) pairs plus the reduction factor, ready for the
    report renderer.
    """
    ratio = comprehensive.bytes / max(1, partial_bytes)
    return [
        ("comprehensive (Friday/OFRewind-style)", float(comprehensive.bytes)),
        ("partial (DEFINED external events only)", float(partial_bytes)),
        ("reduction factor", ratio),
    ]
