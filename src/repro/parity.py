"""Cross-interpreter bundle-hash parity (the CI ``parity`` job).

Theorem 1 makes a claim the artifact layer can enforce mechanically: an
execution is a function of the workload, not of the machine running it.
Run bundles operationalize that -- the content address hashes only the
canonically-serialized semantic section, with environment metadata kept
outside -- so the *same grid run under different interpreters must
produce byte-identical bundle hashes*.

This module runs a small fixed grid (production + Theorem-1 replay per
cell, with the super-beacon 300 ms jitter regime included, since that is
where the chain-delay model earns its keep) and emits one
``scenario seed role sha256`` line per bundle.  CI runs it once per
python version and diffs the outputs; any split is a determinism
regression with a named cell attached.

Usage: ``python -m repro.parity [--out hashes.txt]``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

#: The parity grid: (scenario, seed, delivery-jitter override).  Small
#: on purpose -- parity needs witnesses, not coverage -- but it must
#: include a super-beacon-jitter cell (the closed Theorem-1 hole).
PARITY_GRID: Tuple[Tuple[str, int, Optional[int]], ...] = (
    ("flap-storm@20", 1, 300_000),
    ("crash-restart", 1, None),
    ("partition", 2, None),
)


def bundle_hashes(
    grid: Sequence[Tuple[str, int, Optional[int]]] = PARITY_GRID,
) -> List[str]:
    """Run the grid; one ``scenario seed role sha256`` line per bundle."""
    from repro.artifact import RunBundle
    from repro.harness import run_ls_replay, run_production
    from repro.sweep import get_scenario

    lines: List[str] = []
    for name, seed, jitter_us in grid:
        scenario = get_scenario(name)
        graph = scenario.topology(seed)
        schedule = scenario.schedule(graph, seed)
        context = {"scenario": name, "seed": seed, "jitter_us": jitter_us}
        production = run_production(
            graph,
            schedule,
            mode="defined",
            seed=seed,
            jitter_us=jitter_us if jitter_us is not None else scenario.jitter_us,
            ordering=scenario.ordering,
            measure_convergence=False,
            settle_us=scenario.settle_us,
            tail_us=scenario.tail_us,
        )
        prod_bundle = RunBundle.from_production(production, context=context)
        lines.append(f"{name} seed={seed} production {prod_bundle.sha256}")
        replay = run_ls_replay(
            graph, production.recording, ordering=scenario.ordering
        )
        replay_bundle = RunBundle.from_replay(replay, context=context)
        lines.append(f"{name} seed={seed} replay {replay_bundle.sha256}")
    return lines


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.parity",
        description="emit content-addressed bundle hashes for the fixed "
        "parity grid (CI diffs these across interpreters)",
    )
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write the hash lines to this file")
    args = parser.parse_args(argv)
    text = "\n".join(bundle_hashes()) + "\n"
    sys.stdout.write(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
