"""Window-envelope benchmarks: mapping throughput and the transport the
grids ride.

Envelope grids are larger than ordinary sweeps (they add a window axis
on top of scenario x jitter x seed), so they are exactly the workload
the shared-memory result ring exists for.  Two measurements:

* the real per-cell cost of mapping a small envelope (simulation +
  headroom capture, replay checks off);
* ring vs. per-future transport wall clock on an envelope-shaped grid
  with stubbed (free) cells -- isolating the result path, same
  methodology as the sweep transport bench -- plus the bit-for-bit
  equivalence of the two transports' headroom payloads.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from _bench import FULL, emit

import repro.sweep as sweep_mod
from repro.analysis.report import render_table
from repro.core.history import WindowHeadroomStats
from repro.envelope import EnvelopeRunner
from repro.sweep import CellResult

#: Mapping cells exhaust their windows on purpose.
pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.core.shim.HistoryWindowWarning"
)


def _small_runner(**overrides) -> EnvelopeRunner:
    kwargs = dict(
        scenarios=["latency-jitter"],
        jitters_us=(0, 300_000),
        windows_us=(100_000, 1_000_000),
        seeds=(1,),
    )
    kwargs.update(overrides)
    return EnvelopeRunner(**kwargs)


def test_envelope_mapping_throughput(benchmark):
    """Real cells: one serial mapping pass over a 4-cell diamond grid
    (two jitters x two windows), replay checks off."""

    def map_once():
        return _small_runner().map()

    cells = benchmark.pedantic(map_once, rounds=3, iterations=1)
    assert len(cells) == 4
    assert all(c.error is None for c in cells)
    late = sum(c.headroom.late_count for c in cells if c.headroom)
    emit(render_table(
        "envelope mapping throughput (diamond, 4 cells)",
        ["metric", "value"],
        [
            ["grid cells", len(cells)],
            ["cells with deficits",
             sum(1 for c in cells if c.headroom and not c.headroom.clean)],
            ["total late deliveries", late],
        ],
    ))
    # the undersized-window x heavy-jitter corner must actually measure
    # something, or the bench is timing an empty envelope
    assert late > 0


def _fast_envelope_cell(cell) -> CellResult:
    """Transport-bench stub: free cells with a synthetic headroom payload
    so the ring carries the full record, not a degenerate one."""
    deficit = max(0, 500_000 - (cell.window_us or 0)) if cell.jitter_us else 0
    return CellResult(
        scenario=cell.scenario, seed=cell.seed, mode=cell.mode,
        repeat=cell.repeat, jitter_seed=cell.jitter_seed,
        window_us=cell.window_us, jitter_us=cell.jitter_us,
        fingerprint=f"fp|{cell.scenario}|{cell.seed}|{cell.window_us}",
        deliveries=100,
        headroom=WindowHeadroomStats(
            window_us=cell.window_us or 0,
            late_count=1 if deficit else 0,
            max_deficit_us=deficit,
            p50_deficit_us=deficit,
            p90_deficit_us=deficit,
            p99_deficit_us=deficit,
        ),
        wall_seconds=0.0,
    )


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="transport bench stubs run_cell via fork inheritance",
)
def test_envelope_grid_ring_vs_futures_transport(monkeypatch):
    """Ring vs. per-future result transport on an envelope-shaped grid:
    identical cell payloads (headroom included), comparable wall clock.
    """
    monkeypatch.setattr(sweep_mod, "run_cell", _fast_envelope_cell)
    seeds = tuple(range(125 if not FULL else 250))
    runner_kwargs = dict(
        scenarios=["flap-storm"],
        jitters_us=(0, 300_000),
        windows_us=(250_000, 500_000),
        seeds=seeds,
        workers=2,
    )

    def one_pass(transport):
        runner = _small_runner(transport=transport, **runner_kwargs)
        start = time.perf_counter()
        cells = runner.map()
        return cells, time.perf_counter() - start

    shm_cells, shm_wall = one_pass("shm")
    fut_cells, fut_wall = one_pass("futures")
    grid_cells = len(seeds) * 4
    assert len(shm_cells) == len(fut_cells) == grid_cells

    def payload(cells):
        return [
            (c.scenario, c.seed, c.window_us, c.jitter_us, c.fingerprint,
             c.headroom)
            for c in cells
        ]

    assert payload(shm_cells) == payload(fut_cells), (
        "transports must be interchangeable, headroom payload included"
    )
    emit(render_table(
        "envelope transport: ring vs futures",
        ["metric", "value"],
        [
            ["grid cells", grid_cells],
            ["shm ring wall (s)", shm_wall],
            ["per-future wall (s)", fut_wall],
            ["ratio (futures/shm)", fut_wall / max(shm_wall, 1e-9)],
        ],
    ))
    # both transports move free cells; neither may be pathologically
    # slower than the other on a grid this size
    assert shm_wall < 30 and fut_wall < 30
