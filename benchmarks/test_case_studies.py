"""Section 4 case studies as benchmarks: the end-to-end debugging stories,
plus direct checks of the paper's two theorems."""

from _bench import emit

from repro.analysis.report import render_table
from repro.core.fingerprint import first_divergence
from repro.harness import run_ls_replay, run_production
from repro.scenarios import (
    BGP_CORRECT_BEST,
    bgp_daemon_factory,
    bgp_topology,
    quagga_rip_scenario,
    rip_daemon_factory,
    rip_topology,
    xorp_bgp_scenario,
)
from repro.topology import rocketfuel_topology
from repro.topology.traces import compressed_trace


def test_xorp_bgp_ordering_bug(benchmark):
    def run():
        vanilla = [
            xorp_bgp_scenario(mode="vanilla", decision="buggy", seed=s).best_at_r3
            for s in range(8)
        ]
        defined = [
            xorp_bgp_scenario(mode="defined", decision="buggy", seed=s).best_at_r3
            for s in (1, 2)
        ]
        prod = xorp_bgp_scenario(mode="defined", decision="buggy", seed=1)
        replay = run_ls_replay(
            bgp_topology(), prod.result.recording,
            daemon_factory=bgp_daemon_factory("buggy"),
        )
        patched = run_ls_replay(
            bgp_topology(), prod.result.recording,
            daemon_factory=bgp_daemon_factory("correct"),
        )
        return {
            "vanilla_outcomes": sorted(set(vanilla)),
            "defined_outcomes": sorted(set(defined)),
            "replay_exact": replay.fingerprint == prod.result.fingerprint,
            "patched_best": patched.network.nodes["R3"].daemon.best_path_id(
                "10.0.0.0/8"
            ),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_table(
        "Case study: XORP 0.4 BGP MED ordering bug (Figure 4)",
        ["check", "result"],
        [
            ["vanilla outcomes across seeds", ", ".join(result["vanilla_outcomes"])],
            ["DEFINED-RB outcomes across seeds", ", ".join(result["defined_outcomes"])],
            ["DEFINED-LS replay exact", result["replay_exact"]],
            ["patched daemon picks", result["patched_best"]],
        ],
    ))
    assert result["vanilla_outcomes"] == ["p2", "p3"]  # nondeterministic
    assert len(result["defined_outcomes"]) == 1        # deterministic
    assert result["replay_exact"]                      # Theorem 1
    assert result["patched_best"] == BGP_CORRECT_BEST  # patch validated


def test_quagga_rip_timer_bug(benchmark):
    def run():
        vanilla = {
            quagga_rip_scenario(mode="vanilla", matching="buggy", config="race",
                                seed=s).route_via
            for s in range(12)
        }
        defined = {
            quagga_rip_scenario(mode="defined", matching="buggy", config="blackhole",
                                seed=s).route_via
            for s in (1, 2)
        }
        prod = quagga_rip_scenario(
            mode="defined", matching="buggy", config="blackhole", seed=1
        )
        replay = run_ls_replay(
            rip_topology(), prod.result.recording,
            daemon_factory=rip_daemon_factory("buggy", 8),
        )
        patched = run_ls_replay(
            rip_topology(), prod.result.recording,
            daemon_factory=rip_daemon_factory("correct", 8),
        )
        return {
            "vanilla_outcomes": sorted(str(v) for v in vanilla),
            "defined_outcomes": sorted(str(v) for v in defined),
            "replay_exact": replay.fingerprint == prod.result.fingerprint,
            "patched_route": patched.network.nodes["R1"].daemon.route_via("dst"),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_table(
        "Case study: Quagga 0.96.5 RIP timer bug (Figure 5)",
        ["check", "result"],
        [
            ["vanilla race outcomes across seeds", ", ".join(result["vanilla_outcomes"])],
            ["DEFINED-RB outcomes across seeds", ", ".join(result["defined_outcomes"])],
            ["DEFINED-LS replay exact", result["replay_exact"]],
            ["patched daemon routes via", result["patched_route"]],
        ],
    ))
    assert len(result["vanilla_outcomes"]) > 1      # timing-dependent
    assert result["defined_outcomes"] == ["R2"]     # deterministic black hole
    assert result["replay_exact"]                   # Theorem 1
    assert result["patched_route"] == "R3"          # patch validated


def test_theorem1_reproducibility(benchmark):
    """Theorem 1 at Rocketfuel scale, with the recording round-tripped
    through its file format."""
    graph = rocketfuel_topology("ebone")
    trace = compressed_trace(graph, n_events=4, gap_us=8_000_000, start_us=4_097_000)

    def run():
        prod = run_production(graph, trace, mode="defined", seed=1)
        from repro.core.recorder import Recording

        recording = Recording.from_json(prod.recording.to_json())
        replay = run_ls_replay(graph, recording)
        return prod, replay

    prod, replay = benchmark.pedantic(run, rounds=1, iterations=1)
    divergence = first_divergence(prod.logs, replay.logs)
    emit(render_table(
        "Theorem 1 (Reproducibility) on Ebone",
        ["check", "result"],
        [
            ["production fingerprint", prod.fingerprint[:16] + "..."],
            ["replay fingerprint", replay.fingerprint[:16] + "..."],
            ["identical executions", divergence is None],
            ["events recorded", len(prod.recording.events)],
            ["recording bytes", prod.recording.size_bytes()],
            ["late deliveries", prod.late_deliveries],
        ],
    ))
    assert divergence is None, f"diverged: {divergence}"


def test_theorem2_termination(benchmark):
    """Theorem 2: under adversarial jitter the instrumented network keeps
    making progress (every rollback cascade settles)."""
    graph = rocketfuel_topology("ebone")
    trace = compressed_trace(graph, n_events=4, gap_us=8_000_000, start_us=4_097_000)

    def run():
        return run_production(graph, trace, mode="defined", seed=9, jitter_us=1_500)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    deliveries = sum(
        s.deliveries for s in result.network.run_stats.per_node.values()
    )
    emit(render_table(
        "Theorem 2 (Termination) on Ebone, jitter 1.5 ms",
        ["check", "result"],
        [
            ["rollbacks", result.rollbacks],
            ["deliveries", deliveries],
            ["unconverged events", result.unconverged_events],
            ["late deliveries", result.late_deliveries],
        ],
    ))
    assert result.unconverged_events == 0
    assert deliveries > 0
