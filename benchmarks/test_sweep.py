"""Scenario-sweep benchmarks: grid throughput and parallel speedup.

The sweep subsystem exists to make "run every scenario under every mode
and check the fingerprints" cheap.  These benches measure the two things
that matter for that: how fast a grid drains serially, and what the
process-pool sharding buys on the available cores (on a single-core CI
runner the speedup hovers around 1x; the printed table records whatever
this machine delivered).

``REPRO_BENCH_FULL=1`` widens the grid from a smoke-sized 2-seed sweep
to the full builtin catalogue x 5 seeds.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import tracemalloc

import pytest

from _bench import FULL, emit

from repro.analysis.report import render_table
from repro.sweep import CellResult, SweepRunner

SEEDS = (1, 2, 3, 4, 5) if FULL else (1, 2)
SCENARIOS = None if FULL else [
    "latency-jitter", "xorp-bgp-med", "quagga-rip-blackhole",
    # one composed and one boundary-jittered scenario, so the bench grid
    # exercises the dynamic-resolution path end to end
    "latency-jitter+ddos-overload", "latency-jitter~j1us",
]
PARALLEL_WORKERS = min(4, max(2, (os.cpu_count() or 1)))


@pytest.fixture(scope="module")
def serial_report():
    return SweepRunner(scenarios=SCENARIOS, seeds=SEEDS, workers=1).run()


@pytest.fixture(scope="module")
def parallel_report():
    return SweepRunner(
        scenarios=SCENARIOS, seeds=SEEDS, workers=PARALLEL_WORKERS
    ).run()


def test_sweep_serial_throughput(benchmark, serial_report):
    """Time one serial pass over a single-seed grid (the per-cell cost)."""

    def run_once():
        return SweepRunner(scenarios=SCENARIOS, seeds=(1,), workers=1).run()

    report = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert report.ok(), report.render()
    cells = len(report.cells)
    emit(render_table(
        "sweep serial throughput",
        ["metric", "value"],
        [
            ["cells per pass", cells],
            ["wall seconds per pass", report.wall_seconds],
            ["cells per second", cells / max(report.wall_seconds, 1e-9)],
        ],
    ))


def test_sweep_parallel_speedup(serial_report, parallel_report):
    """Serial vs process-pool wall clock on the same grid, plus the
    bit-for-bit equivalence of their aggregate reports."""
    assert serial_report.ok(), serial_report.render()
    assert parallel_report.ok(), parallel_report.render()
    assert (
        serial_report.fingerprint_index() == parallel_report.fingerprint_index()
    ), "parallel sweep diverged from serial"
    speedup = serial_report.wall_seconds / max(parallel_report.wall_seconds, 1e-9)
    emit(render_table(
        "sweep parallel speedup",
        ["metric", "value"],
        [
            ["grid cells", len(serial_report.cells)],
            ["serial wall (s)", serial_report.wall_seconds],
            [f"parallel wall (s) ({PARALLEL_WORKERS} workers)",
             parallel_report.wall_seconds],
            ["speedup (x)", speedup],
            ["cpu cores", os.cpu_count() or 1],
        ],
    ))
    # on a multi-core box the pool must not be pathologically slower;
    # even on one core the overhead should stay within ~4x for this grid
    assert speedup > 0.25


def test_fuzz_grid_throughput(benchmark):
    """Time one boundary-jitter fuzz pass (snap + jitter + Theorem-1
    verification per cell) on a smoke-sized grid."""
    from repro.sweep import FuzzRunner

    jitters = (0, 1, 2, 5) if FULL else (0, 1)

    def run_once():
        return FuzzRunner(
            scenarios=["latency-jitter"], seeds=(1,), jitters_us=jitters
        ).run()

    report = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert report.ok(), report.render()
    emit(render_table(
        "boundary-jitter fuzz throughput",
        ["metric", "value"],
        [
            ["grid cells", len(report.cells)],
            ["wall seconds per pass", report.wall_seconds],
            ["cells per second", len(report.cells) / max(report.wall_seconds, 1e-9)],
        ],
    ))


def _fast_cell(cell) -> CellResult:
    """Transport-bench stub: the memory comparison measures the *result
    path*, not the simulations, so cells must be free."""
    return CellResult(
        scenario=cell.scenario, seed=cell.seed, mode=cell.mode,
        repeat=cell.repeat, jitter_seed=cell.jitter_seed,
        fingerprint=f"fp|{cell.scenario}|{cell.seed}|{cell.mode}",
        replay_fingerprint=(
            f"fp|{cell.scenario}|{cell.seed}|{cell.mode}"
            if cell.mode == "defined" else None
        ),
        invariant_ok=cell.mode == "defined" or None,
        deliveries=100, wall_seconds=0.0,
    )


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="transport bench stubs run_cell via fork inheritance",
)
def test_streaming_vs_futures_parent_memory(monkeypatch):
    """Parent-side result-transport peak on a 500+ cell grid.

    The per-future path accumulates one pickled ``CellResult`` +
    ``Future`` + executor work item per cell in the parent; the
    shared-memory path streams fixed-width records through a bounded
    ring that the parent folds on the fly.  "Peak memory" here is the
    parent's Python-heap peak (``tracemalloc``) across the result path
    and aggregation -- the process-RSS equivalent is not measurable
    in-process without the allocator noise of the simulator itself, so
    this is the documented proxy.  Acceptance: the streamed path's peak
    is >= 1.5x lower.
    """
    import repro.sweep as sweep_mod

    monkeypatch.setattr(sweep_mod, "run_cell", _fast_cell)
    seeds = tuple(range(250 if not FULL else 500))
    kwargs = dict(
        scenarios=["flap-storm"], seeds=seeds,
        modes=("vanilla", "defined"), workers=2,
    )
    grid_cells = len(SweepRunner(**kwargs).grid())
    assert grid_cells >= 500

    def measure(fn):
        gc.collect()
        tracemalloc.start()
        try:
            value = fn()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return value, peak

    def futures_pass():
        # the pre-streaming consumption model: run and retain the report
        report = SweepRunner(transport="futures", **kwargs).run()
        assert len(report.cells) == grid_cells
        return report.ok()

    def streamed_pass():
        # the streaming consumption model: fold, never retain
        count, fingerprints = 0, set()
        for result in SweepRunner(transport="shm", **kwargs).stream():
            count += 1
            fingerprints.add(result.fingerprint)
            assert result.error is None
        assert count == grid_cells
        return len(fingerprints)

    _, futures_peak = measure(futures_pass)
    _, streamed_peak = measure(streamed_pass)
    ratio = futures_peak / max(streamed_peak, 1)
    emit(render_table(
        "result transport: parent peak memory (tracemalloc)",
        ["metric", "value"],
        [
            ["grid cells", grid_cells],
            ["per-future peak (bytes)", futures_peak],
            ["shm-streamed peak (bytes)", streamed_peak],
            ["improvement (x)", ratio],
        ],
    ))
    assert ratio >= 1.5, (
        f"streamed transport peak {streamed_peak} not >= 1.5x below "
        f"per-future peak {futures_peak}"
    )


def test_streaming_transport_equivalent_on_real_grid(serial_report):
    """The streamed transport must be a pure transport change: identical
    fingerprints, verdicts and cell sets as the serial baseline on a
    real (simulated) grid."""
    streamed = SweepRunner(
        scenarios=SCENARIOS, seeds=SEEDS, workers=PARALLEL_WORKERS,
        transport="shm",
    ).run()
    assert streamed.ok(), streamed.render()
    assert streamed.fingerprint_index() == serial_report.fingerprint_index()


def test_sweep_theorem1_holds_across_grid(serial_report):
    """Every DEFINED cell of the bench grid reproduced bit-for-bit."""
    defined = [c for c in serial_report.cells if c.mode == "defined"]
    assert defined
    assert all(c.invariant_ok for c in defined)
    emit(render_table(
        "Theorem-1 grid check",
        ["scenario", "defined cells", "reproduced"],
        [
            [name,
             sum(1 for c in defined if c.scenario == name),
             sum(1 for c in defined if c.scenario == name and c.invariant_ok)]
            for name in sorted({c.scenario for c in defined})
        ],
    ))
