"""Fingerprint-pipeline benchmarks: cached interned tags vs repr rebuild.

PR 8's claim is that event identity is computed once: the payload repr
is canonicalized and interned at origination, the full identity tag is
cached on the history entry, and the per-node delivery logs fold into
rolling digests.  These benches measure the per-delivery tag + digest
cost over a settled flap-storm@40 history and pin the acceptance bar:
the cached path must be at least 2x faster per delivery than rebuilding
``repr(payload)`` on every ``tag()`` call (in practice ~3-4x; the bar
leaves room for slow CI hosts).  Both paths must agree on the
fingerprint bit-for-bit -- the differential grid
(tests/test_fingerprint_differential.py) pins the same equality across
whole cells.

``repro bench --json`` records the same numbers machine-readably under
the ``fingerprint`` key.
"""

from _bench import emit

from repro.bench import fingerprint_bench


def test_fingerprint_tag_cache_speedup_at_least_2x():
    """The acceptance bar: >=2x per-delivery, measured back to back in
    one process so host speed cancels out."""
    result = fingerprint_bench(scenario="flap-storm@40", seed=1, repeats=20)
    emit(
        f"fingerprint on flap-storm@40 ({result['deliveries']} deliveries): "
        f"cached {result['cached']['fingerprint_us']:.3f} us/delivery, "
        f"rebuild {result['rebuild']['fingerprint_us']:.3f} us/delivery, "
        f"speedup {result['speedup']:.1f}x"
    )
    assert result["fingerprints_match"], (
        "cached and rebuild passes disagree on the fingerprint"
    )
    assert result["speedup"] >= 2.0, (
        f"cached tags only {result['speedup']:.1f}x faster than repr rebuild"
    )
