"""Importable configuration and helpers for the benchmark suite.

These used to live in ``benchmarks/conftest.py``, but ``conftest`` is an
ambiguous import name once both ``tests/`` and ``benchmarks/`` are
collected in one pytest run (each directory's conftest competes for the
same top-level module slot).  Benchmarks import shared knobs from here
with ``from _bench import ...``; the conftest keeps only fixtures.

Scale: the defaults reproduce every figure's *shape* in minutes.  Set
``REPRO_BENCH_FULL=1`` for paper-scale workloads (the full Tier-1-style
651-event trace, BRITE sweeps to 80 nodes); expect a long run.
"""

from __future__ import annotations

import os

from repro.simnet.engine import SECOND

FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

#: Workload sizes (events on the Rocketfuel topology, BRITE sweep sizes).
N_EVENTS = 100 if FULL else 4
SWEEP_SIZES = (20, 40, 60, 80) if FULL else (20, 40)
EVENT_RATES = (2, 4, 6, 8, 10) if FULL else (2, 6, 10)
EVENT_GAP_US = 8 * SECOND


def emit(text: str) -> None:
    """Print a figure block with spacing that survives pytest capture."""
    print("\n" + text + "\n")
