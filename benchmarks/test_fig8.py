"""Figure 8: scalability over network size and event rate (BRITE graphs).

(a) control packets per node per event vs size: the optimized ordering
    (OO) stays within a couple of packets of unmodified XORP; random
    ordering (RO) pays much more;
(b) convergence time vs size: OO comparable to XORP, RO worse;
(c) DEFINED-LS step response time vs size: grows slowly, < 0.8 s at 80;
(d) convergence time vs event rate: grows slowly with events/second.
"""

import pytest

from _bench import EVENT_RATES, SWEEP_SIZES, emit

from repro.analysis.metrics import mean
from repro.analysis.report import render_series
from repro.harness import measure_burst_convergence, run_ls_replay, run_production
from repro.simnet.engine import SECOND
from repro.topology import waxman
from repro.topology.traces import compressed_trace


def sweep_workload(graph):
    return compressed_trace(graph, n_events=4, gap_us=8 * SECOND, start_us=4_097_000)


@pytest.fixture(scope="module")
def size_sweep():
    """One production run per (size, mode/ordering) point."""
    results = {}
    for n in SWEEP_SIZES:
        graph = waxman(n, seed=3)
        trace = sweep_workload(graph)
        results[(n, "XORP")] = run_production(graph, trace, mode="vanilla", seed=1)
        results[(n, "OO")] = run_production(
            graph, trace, mode="defined", seed=1, ordering="OO"
        )
        results[(n, "RO")] = run_production(
            graph, trace, mode="defined", seed=1, ordering="RO"
        )
        results[(n, "LS")] = run_ls_replay(
            graph, results[(n, "OO")].recording
        )
    return results


def test_fig8a_control_vs_size(benchmark, size_sweep):
    def build():
        series = {"DEFINED-RB(RO)": [], "DEFINED-RB(OO)": [], "XORP": []}
        for n in SWEEP_SIZES:
            series["XORP"].append(mean(size_sweep[(n, "XORP")].packets_per_node_per_event))
            series["DEFINED-RB(OO)"].append(
                mean(size_sweep[(n, "OO")].packets_per_node_per_event)
            )
            series["DEFINED-RB(RO)"].append(
                mean(size_sweep[(n, "RO")].packets_per_node_per_event)
            )
        return series

    series = benchmark(build)
    emit(render_series(
        "Figure 8a: control packets per node per event vs network size",
        "nodes", list(SWEEP_SIZES), series,
    ))
    for i, n in enumerate(SWEEP_SIZES):
        xorp, oo, ro = series["XORP"][i], series["DEFINED-RB(OO)"][i], series["DEFINED-RB(RO)"][i]
        # paper: OO adds at most ~2 packets per node; RO costs clearly more
        assert oo - xorp <= 4.0, f"OO overhead too high at n={n}"
        assert ro > oo, f"RO should cost more than OO at n={n}"


def test_fig8b_convergence_vs_size(benchmark, size_sweep):
    def build():
        series = {"DEFINED-RB(RO)": [], "DEFINED-RB(OO)": [], "XORP": []}
        for n in SWEEP_SIZES:
            for label, key in (
                ("XORP", "XORP"), ("DEFINED-RB(OO)", "OO"), ("DEFINED-RB(RO)", "RO")
            ):
                series[label].append(
                    mean(size_sweep[(n, key)].convergence_times_us) / 1e6
                )
        return series

    series = benchmark(build)
    emit(render_series(
        "Figure 8b: convergence time (s) vs network size",
        "nodes", list(SWEEP_SIZES), series,
    ))
    for i, n in enumerate(SWEEP_SIZES):
        xorp, oo = series["XORP"][i], series["DEFINED-RB(OO)"][i]
        ro = series["DEFINED-RB(RO)"][i]
        # paper: OO average comparable to XORP; RO worse than OO
        assert oo <= xorp + 1.0
        assert ro >= oo


def test_fig8c_ls_response_vs_size(benchmark, size_sweep):
    def build():
        return {
            "DEFINED-LS": [
                mean(size_sweep[(n, "LS")].step_times_us) / 1e6 for n in SWEEP_SIZES
            ]
        }

    series = benchmark(build)
    emit(render_series(
        "Figure 8c: DEFINED-LS step response time (s) vs network size",
        "nodes", list(SWEEP_SIZES), series,
    ))
    values = series["DEFINED-LS"]
    # paper: grows slowly with size and stays below ~0.8 s at 80 nodes
    assert all(v < 0.8 for v in values)
    growth = values[-1] / values[0]
    size_growth = SWEEP_SIZES[-1] / SWEEP_SIZES[0]
    assert growth < size_growth, "step time must grow sublinearly in size"


def test_fig8d_event_rate(benchmark):
    graph = waxman(30, seed=3)

    def build():
        return {
            "DEFINED-RB": [
                measure_burst_convergence(
                    graph, events_per_second=rate, n_events=8,
                    mode="defined", seed=1,
                ) / 1e6
                for rate in EVENT_RATES
            ]
        }

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(render_series(
        "Figure 8d: convergence time (s) vs event rate",
        "events/s", list(EVENT_RATES), series,
    ))
    values = series["DEFINED-RB"]
    # paper: a gentle upward trend; ~2 s at 10 events/s
    assert values[-1] < 8.0
    assert values[-1] >= values[0] * 0.5  # no pathological blow-up or cliff
