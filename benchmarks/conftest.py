"""Shared fixtures for the figure-regeneration benchmarks.

Every figure and table of the paper's evaluation has one bench below
(DESIGN.md carries the experiment index).  The expensive simulations run
once per session in fixtures; the ``benchmark`` fixture then times the
figure-generation path, and every test *prints* the regenerated
rows/series so the output can be compared against the paper (captured in
EXPERIMENTS.md).

Workload knobs and plain helpers live in :mod:`_bench` (importable by
name without colliding with ``tests/conftest.py``).
"""

from __future__ import annotations

import pytest

from _bench import EVENT_GAP_US, N_EVENTS

from repro.harness import run_ls_replay, run_production
from repro.topology import rocketfuel_topology
from repro.topology.traces import compressed_trace


@pytest.fixture(scope="session")
def sprintlink():
    return rocketfuel_topology("sprintlink")


@pytest.fixture(scope="session")
def tier1_trace(sprintlink):
    """The Tier-1-style workload mapped onto Sprintlink (time-compressed)."""
    return compressed_trace(
        sprintlink, n_events=N_EVENTS, gap_us=EVENT_GAP_US, start_us=4_097_000
    )


@pytest.fixture(scope="session")
def sprintlink_runs(sprintlink, tier1_trace):
    """The paired production runs behind Figure 6: unmodified XORP vs
    DEFINED-RB, same workload, plus the DEFINED-LS replay."""
    vanilla = run_production(sprintlink, tier1_trace, mode="vanilla", seed=1)
    defined = run_production(sprintlink, tier1_trace, mode="defined", seed=1)
    replay = run_ls_replay(sprintlink, defined.recording)
    assert replay.fingerprint == defined.fingerprint, "Theorem 1 violated"
    return {"vanilla": vanilla, "defined": defined, "replay": replay}
