"""Shared fixtures for the figure-regeneration benchmarks.

Every figure and table of the paper's evaluation has one bench below
(DESIGN.md carries the experiment index).  The expensive simulations run
once per session in fixtures; the ``benchmark`` fixture then times the
figure-generation path, and every test *prints* the regenerated
rows/series so the output can be compared against the paper (captured in
EXPERIMENTS.md).

Scale: the defaults reproduce every figure's *shape* in minutes.  Set
``REPRO_BENCH_FULL=1`` for paper-scale workloads (the full Tier-1-style
651-event trace, BRITE sweeps to 80 nodes); expect a long run.
"""

from __future__ import annotations

import os

import pytest

from repro.harness import run_ls_replay, run_production
from repro.simnet.engine import SECOND
from repro.topology import rocketfuel_topology
from repro.topology.traces import compressed_trace

FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

#: Workload sizes (events on the Rocketfuel topology, BRITE sweep sizes).
N_EVENTS = 100 if FULL else 4
SWEEP_SIZES = (20, 40, 60, 80) if FULL else (20, 40)
EVENT_RATES = (2, 4, 6, 8, 10) if FULL else (2, 6, 10)
EVENT_GAP_US = 8 * SECOND


def emit(text: str) -> None:
    """Print a figure block with spacing that survives pytest capture."""
    print("\n" + text + "\n")


@pytest.fixture(scope="session")
def sprintlink():
    return rocketfuel_topology("sprintlink")


@pytest.fixture(scope="session")
def tier1_trace(sprintlink):
    """The Tier-1-style workload mapped onto Sprintlink (time-compressed)."""
    return compressed_trace(
        sprintlink, n_events=N_EVENTS, gap_us=EVENT_GAP_US, start_us=4_097_000
    )


@pytest.fixture(scope="session")
def sprintlink_runs(sprintlink, tier1_trace):
    """The paired production runs behind Figure 6: unmodified XORP vs
    DEFINED-RB, same workload, plus the DEFINED-LS replay."""
    vanilla = run_production(sprintlink, tier1_trace, mode="vanilla", seed=1)
    defined = run_production(sprintlink, tier1_trace, mode="defined", seed=1)
    replay = run_ls_replay(sprintlink, defined.recording)
    assert replay.fingerprint == defined.fingerprint, "Theorem 1 violated"
    return {"vanilla": vanilla, "defined": defined, "replay": replay}
