"""Checkpoint-mechanism benchmarks: COW store vs deepcopy fallback.

The tentpole claim of the snapshot store is that ``_take_checkpoint`` on
the per-delivery hot path costs O(dirty-since-last-snapshot) instead of
a full state copy.  These benches measure it where it matters -- a
settled flap-storm@40 DEFINED-RB network with populated LSDBs, pending
acks and timer tables -- and pin the acceptance bar: the COW path must
be at least 5x faster than the deepcopy path (in practice it is 30-100x;
the bar leaves room for slow CI hosts).

``repro bench --json`` records the same numbers machine-readably
(BENCH_5.json is the committed baseline).
"""

import statistics
import time

import pytest

from _bench import emit

from repro.bench import _settled_defined_network


def _busiest_shim(net):
    return max(
        (node.stack for node in net.nodes.values()),
        key=lambda stack: len(stack.delivery_log),
    )


@pytest.fixture(scope="module")
def settled_networks():
    """One settled flap-storm@40 network per snapshot mechanism."""
    nets = {}
    for snapshots in ("cow", "deepcopy"):
        net, beacons = _settled_defined_network("flap-storm@40", 1, snapshots)
        nets[snapshots] = (net, beacons)
    yield nets
    for net, beacons in nets.values():
        beacons.stop()


def test_checkpoint_cow(benchmark, settled_networks):
    shim = _busiest_shim(settled_networks["cow"][0])
    benchmark(shim._take_checkpoint)


def test_checkpoint_deepcopy(benchmark, settled_networks):
    shim = _busiest_shim(settled_networks["deepcopy"][0])
    benchmark(shim._take_checkpoint)


def test_checkpoint_speedup_at_least_5x(settled_networks):
    """The acceptance bar: >=5x on flap-storm@40, measured back to back
    in one process so host speed cancels out."""
    medians = {}
    for snapshots in ("cow", "deepcopy"):
        shim = _busiest_shim(settled_networks[snapshots][0])
        samples = []
        for _ in range(300):
            t0 = time.perf_counter_ns()
            shim._take_checkpoint()
            samples.append(time.perf_counter_ns() - t0)
        medians[snapshots] = statistics.median(samples)
    speedup = medians["deepcopy"] / medians["cow"]
    emit(
        f"_take_checkpoint on flap-storm@40: "
        f"cow {medians['cow'] / 1000:.2f} us, "
        f"deepcopy {medians['deepcopy'] / 1000:.2f} us, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"COW checkpoint only {speedup:.1f}x faster than deepcopy"
    )


def test_rollback_restore_faster_under_cow():
    """End-to-end: a rollback-heavy production cell gets measurably
    faster wall-clock when checkpoints stop deep-copying."""
    from repro.bench import run_bench

    result = run_bench(scenario="flap-storm", seed=1)
    emit(
        f"flap-storm end-to-end: cow {result['cow']['wall_s']}s vs "
        f"deepcopy {result['deepcopy']['wall_s']}s "
        f"({result['speedup']}x), {result['cow']['rollbacks']} rollbacks"
    )
    assert result["fingerprints_match"]
    assert result["cow"]["rollbacks"] > 0, "workload produced no rollbacks"
    assert result["cow"]["wall_s"] < result["deepcopy"]["wall_s"]
