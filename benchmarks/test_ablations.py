"""Ablations beyond the paper's figures, quantifying the design choices
DESIGN.md calls out.

* speculation vs blocking: DEFINED-RB against the DDOS-style stop-and-wait
  baseline (why Section 2.2 chose speculative execution);
* partial vs comprehensive recording: the log-volume motivation of
  Section 1 (Friday / OFRewind);
* beacon interval: Section 5.3's remedy for high event rates ("decrease
  its beacon intervals to reduce the number of rollbacks");
* chain-length bound: the Section 2.2 mechanism that keeps causal chains
  from straddling groups.
"""

import pytest

from _bench import emit

from repro.analysis.metrics import mean
from repro.analysis.report import render_series, render_table
from repro.baselines.logging_replay import log_volume_comparison
from repro.core.fingerprint import first_divergence
from repro.harness import build_ospf_network, run_production
from repro.simnet.engine import SECOND
from repro.topology import rocketfuel_topology
from repro.topology.traces import compressed_trace


@pytest.fixture(scope="module")
def ebone():
    return rocketfuel_topology("ebone")


@pytest.fixture(scope="module")
def workload(ebone):
    return compressed_trace(ebone, n_events=4, gap_us=8 * SECOND, start_us=4_097_000)


def test_speculation_vs_blocking(benchmark, ebone, workload):
    """DEFINED-RB's bet: optimistic delivery plus rare rollbacks beats
    paying worst-case skew on every delivery."""

    def run():
        defined = run_production(ebone, workload, mode="defined", seed=1)
        ddos = run_production(ebone, workload, mode="ddos", seed=1)
        # both must be deterministic...
        defined2 = run_production(ebone, workload, mode="defined", seed=2)
        ddos2 = run_production(ebone, workload, mode="ddos", seed=2)
        assert first_divergence(defined.logs, defined2.logs) is None
        assert first_divergence(ddos.logs, ddos2.logs) is None
        return defined, ddos

    defined, ddos = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["mean convergence (s)",
         mean(defined.convergence_times_us) / 1e6,
         mean(ddos.convergence_times_us) / 1e6],
        ["max convergence (s)",
         max(defined.convergence_times_us) / 1e6,
         max(ddos.convergence_times_us) / 1e6],
        ["rollbacks", defined.rollbacks, ddos.rollbacks],
    ]
    emit(render_table(
        "Ablation: speculation (DEFINED-RB) vs blocking (DDOS-style)",
        ["metric", "DEFINED-RB", "stop-and-wait"],
        rows,
    ))
    assert mean(ddos.convergence_times_us) > mean(defined.convergence_times_us)


def test_partial_vs_comprehensive_recording(benchmark, ebone, workload):
    """The motivating numbers: what Friday/OFRewind-style recording costs
    versus DEFINED's external-events-only log, for identical workloads."""

    def run():
        logged = run_production(ebone, workload, mode="logging", seed=1)
        defined = run_production(ebone, workload, mode="defined", seed=1)
        return logged.comprehensive_log, defined.recording

    comprehensive, recording = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = log_volume_comparison(comprehensive, recording.size_bytes())
    emit(render_table(
        "Ablation: recording volume, comprehensive vs partial",
        ["log", "bytes / factor"],
        rows,
    ))
    assert rows[2][1] > 20  # at least 20x reduction


def test_beacon_interval_vs_rollbacks(benchmark, ebone, workload):
    """Section 5.3: shorter beacon intervals (finer groups) reduce
    rollbacks under load -- at the cost of more beacon traffic."""
    intervals_ms = (125, 250, 500)

    def run():
        rollbacks = []
        for interval_ms in intervals_ms:
            from repro.topology import to_network
            from repro.core.groups import BeaconService

            net, recorder, beacons, _ = build_ospf_network(
                ebone, mode="defined", seed=1
            )
            beacons.interval_us = interval_ms * 1000
            beacons.start()
            net.start()
            for event in workload.sorted():
                net.run(until_us=event.time_us)
                net.apply_event(event)
            net.run(until_us=net.sim.now + 4 * SECOND)
            beacons.stop()
            net.run(until_us=net.sim.now + SECOND)
            rollbacks.append(net.run_stats.total_rollbacks())
        return rollbacks

    rollbacks = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_series(
        "Ablation: beacon interval vs rollbacks",
        "interval (ms)", list(intervals_ms), {"rollbacks": rollbacks},
    ))
    # longer intervals group more concurrent traffic together and must
    # not *reduce* rollbacks; the paper's remedy direction must hold
    assert rollbacks[0] <= rollbacks[-1] * 1.5


def test_xorp_default_delay_masks_overhead(benchmark, ebone, workload):
    """Section 5.2's aside: with XORP's default 1 s propagation delay
    (the retransmit-timer-induced wait between receiving and forwarding
    an LSA), convergence is delay-dominated and DEFINED-RB's overhead is
    statistically invisible; removing the delay exposes the tail.  We
    reproduce both configurations."""
    from repro.analysis.metrics import mean as _mean
    from repro.harness import ospf_daemon_factory

    def run_config(forward_delay_units):
        factory = ospf_daemon_factory(ebone, forward_delay_units=forward_delay_units)
        xorp = run_production(
            ebone, workload, mode="vanilla", seed=1, daemon_factory=factory
        )
        defined = run_production(
            ebone, workload, mode="defined", seed=1, daemon_factory=factory
        )
        return (
            _mean(xorp.convergence_times_us) / 1e6,
            _mean(defined.convergence_times_us) / 1e6,
        )

    def run_all():
        return {
            "default (1 s fwd delay)": run_config(4),
            "delay removed": run_config(0),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(render_table(
        "Ablation: XORP's 1 s forwarding delay masks DEFINED's overhead",
        ["configuration", "XORP conv (s)", "DEFINED-RB conv (s)"],
        [[name, x, d] for name, (x, d) in results.items()],
    ))
    default_x, default_d = results["default (1 s fwd delay)"]
    removed_x, removed_d = results["delay removed"]
    # with the delay, both are dominated by it (no significant difference)
    assert default_x > 10 * removed_x
    assert abs(default_d - default_x) / default_x < 0.5
    # without the delay, both converge fast; DEFINED may show a small tail
    assert removed_d < default_d


def test_chain_bound_effect(benchmark, ebone, workload):
    """The chain-length bound pushes long causal chains into the next
    group (Section 2.2); a tiny bound must still be deterministic."""

    from repro.core.shim import DefinedShim

    def run_with_bound(bound, seed):
        original = DefinedShim.__init__

        def patched(self, node, **kw):
            kw["chain_bound"] = bound
            original(self, node, **kw)

        DefinedShim.__init__ = patched
        try:
            return run_production(
                ebone, workload, mode="defined", seed=seed,
                measure_convergence=False,
            )
        finally:
            DefinedShim.__init__ = original

    def run_all():
        results = {}
        for bound in (3, 64):
            a = run_with_bound(bound, seed=1)
            b = run_with_bound(bound, seed=2)
            assert first_divergence(a.logs, b.logs) is None, (
                f"chain bound {bound} broke determinism"
            )
            results[bound] = a
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(render_table(
        "Ablation: causal chain-length bound",
        ["bound", "rollbacks", "late deliveries"],
        [[bound, run.rollbacks, run.late_deliveries]
         for bound, run in sorted(results.items())],
    ))
    for run in results.values():
        assert run.late_deliveries == 0
