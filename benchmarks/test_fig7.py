"""Figure 7: node-level microbenchmarks of DEFINED-RB's overheads.

(a) rollback overhead -- MI (memory intercept) vs FK (fork): MI median
    around 0.6 ms, FK an order of magnitude above;
(b) non-rollback (fast-path) overhead -- XORP < TM < PF < TF, all within
    about a millisecond;
(c) memory -- virtual memory grows linearly with live checkpoints, while
    physical memory stays within ~2% of the unmodified process.

The workload is a single instrumented node under a message storm with
enough jitter to trigger real rollbacks, exactly the setting of the
paper's single-node experiments.
"""

import pytest

from _bench import emit

from repro.analysis.metrics import Cdf
from repro.analysis.report import ascii_cdf, render_table
from repro.core.checkpoint import DEFAULT_PROCESS_BYTES, baseline_processing_model
from repro.harness import run_production
from repro.simnet.engine import SECOND
from repro.simnet.events import EventSchedule, ExternalEvent
from repro.topology import TopologyGraph


def storm_graph():
    """One observed node with three busy neighbors."""
    return TopologyGraph(
        name="micro",
        nodes=["hub", "n1", "n2", "n3"],
        edges=[("hub", "n1", 1_500), ("hub", "n2", 2_100), ("hub", "n3", 2_800),
               ("n1", "n2", 1_900), ("n2", "n3", 2_400)],
    )


def storm_schedule():
    schedule = EventSchedule()
    t = 4 * SECOND + 53_000
    for i in range(6):
        kind = "link_down" if i % 2 == 0 else "link_up"
        schedule.add(ExternalEvent(time_us=t, kind=kind, target=("n1", "n2")))
        t += 1_300_000
    return schedule


def run_storm(strategy: str, seed: int = 1):
    return run_production(
        storm_graph(),
        storm_schedule(),
        mode="defined",
        seed=seed,
        jitter_us=2_000,  # aggressive jitter: we *want* rollbacks here
        strategy=strategy,
        measure_convergence=False,
        tail_us=4 * SECOND,
    )


@pytest.fixture(scope="module")
def storm_runs():
    return {name: run_storm(name) for name in ("MI", "FK", "TF", "PF", "TM")}


def test_fig7a_rollback_overhead(benchmark, storm_runs):
    def build():
        cdfs = {}
        for name in ("MI", "FK"):
            samples = storm_runs[name].rollback_samples()
            assert samples, f"{name} run produced no rollbacks"
            cdfs[f"DEFINED-RB({name})"] = Cdf.of([s / 1000.0 for s in samples])
        return cdfs

    cdfs = benchmark(build)
    emit(ascii_cdf("Figure 7a: rollback overhead (ms)", cdfs, unit="ms"))
    mi = cdfs["DEFINED-RB(MI)"]
    fk = cdfs["DEFINED-RB(FK)"]
    # paper: MI brings the median down to ~0.6 ms; FK costs milliseconds
    assert 0.2 < mi.median() < 2.0
    assert fk.median() > 4 * mi.median()


def test_fig7b_nonrollback_overhead(benchmark, storm_runs):
    def build():
        import random

        rng = random.Random(7)
        cdfs = {
            "XORP": Cdf.of(
                [baseline_processing_model(rng) / 1000.0 for _ in range(3_000)]
            )
        }
        for name in ("TM", "PF", "TF"):
            samples = storm_runs[name].processing_samples()
            cdfs[f"DEFINED-RB({name})"] = Cdf.of([s / 1000.0 for s in samples])
        return cdfs

    cdfs = benchmark(build)
    emit(ascii_cdf("Figure 7b: non-rollback processing overhead (ms)", cdfs, unit="ms"))
    xorp = cdfs["XORP"].median()
    tm = cdfs["DEFINED-RB(TM)"].median()
    pf = cdfs["DEFINED-RB(PF)"].median()
    tf = cdfs["DEFINED-RB(TF)"].median()
    # paper ordering: XORP < TM < PF < TF, everything under ~1 ms
    assert xorp < tm < pf < tf
    assert tf < 1.5


def test_fig7c_memory(benchmark, storm_runs):
    def build():
        run = storm_runs["MI"]
        mb = 1024 * 1024
        virtual, physical = [], []
        for stats in run.network.run_stats.per_node.values():
            virtual.extend(v / mb for v in stats.virtual_memory_samples)
            physical.extend(p / mb for p in stats.physical_memory_samples)
        return {
            "XORP": Cdf.of([DEFAULT_PROCESS_BYTES / mb] * 16),
            "DEFINED-RB(PM)": Cdf.of(physical),
            "DEFINED-RB(VM)": Cdf.of(virtual),
        }

    cdfs = benchmark(build)
    emit(ascii_cdf("Figure 7c: memory footprint (MB)", cdfs, unit="MB"))
    base = cdfs["XORP"].median()
    pm = cdfs["DEFINED-RB(PM)"]
    vm = cdfs["DEFINED-RB(VM)"]
    # paper: VM grows linearly with forked processes; PM inflation < 2%
    assert vm.max() > 2 * base
    assert pm.max() < base * 1.02
    emit(render_table(
        "Figure 7c check: physical-memory inflation",
        ["metric", "value"],
        [
            ["baseline process (MB)", base],
            ["peak PM (MB)", pm.max()],
            ["inflation", f"{(pm.max() / base - 1) * 100:.3f}%"],
            ["peak VM (MB)", vm.max()],
        ],
    ))
