"""Figure 6: network-level results, Sprintlink topology with a Tier-1-style
OSPF event trace.

(a) control packets per node per event: DEFINED-RB tracks unmodified
    XORP, with a small heavy tail (<~1% of nodes pay rollback traffic);
(b) per-event convergence time: close between the two, DEFINED-RB has the
    longer tail (the paper removes XORP's 1 s retransmit delay to make
    this visible -- our daemons default to the delay-removed config);
(c) DEFINED-LS per-step response time: interactive, below a second.
"""

from _bench import emit

from repro.analysis.metrics import Cdf
from repro.analysis.report import ascii_cdf, render_table


def test_fig6a_control_overhead(benchmark, sprintlink_runs):
    def build():
        return {
            "XORP": Cdf.of(sprintlink_runs["vanilla"].packets_per_node_per_event),
            "DEFINED-RB": Cdf.of(sprintlink_runs["defined"].packets_per_node_per_event),
        }

    cdfs = benchmark(build)
    emit(ascii_cdf("Figure 6a: control packets per node per event", cdfs, unit="pkts"))
    xorp, defined = cdfs["XORP"], cdfs["DEFINED-RB"]
    # shape: medians close; DEFINED only adds a small tail of rollback
    # control packets at a few nodes
    assert abs(defined.median() - xorp.median()) <= max(4.0, 0.5 * xorp.median())
    heavy = defined.tail_beyond(xorp.max())
    assert heavy < 0.1, f"too many nodes with extra control traffic: {heavy:.1%}"
    assert sprintlink_runs["defined"].late_deliveries == 0


def test_fig6b_convergence(benchmark, sprintlink_runs):
    def build():
        return {
            "XORP": Cdf.of(
                [t / 1e6 for t in sprintlink_runs["vanilla"].convergence_times_us]
            ),
            "DEFINED-RB": Cdf.of(
                [t / 1e6 for t in sprintlink_runs["defined"].convergence_times_us]
            ),
        }

    cdfs = benchmark(build)
    emit(ascii_cdf("Figure 6b: convergence time (s)", cdfs, unit="s"))
    xorp, defined = cdfs["XORP"], cdfs["DEFINED-RB"]
    assert sprintlink_runs["vanilla"].unconverged_events == 0
    assert sprintlink_runs["defined"].unconverged_events == 0
    # shape: medians comparable (no statistically dramatic difference);
    # DEFINED-RB may show a longer tail from rollbacks
    assert defined.median() <= xorp.median() + 0.5
    assert defined.max() <= xorp.max() + 5.0


def test_fig6c_ls_response(benchmark, sprintlink_runs):
    def build():
        return Cdf.of([t / 1e6 for t in sprintlink_runs["replay"].step_times_us])

    cdf = benchmark(build)
    emit(ascii_cdf("Figure 6c: DEFINED-LS step response time (s)",
                   {"DEFINED-LS": cdf}, unit="s"))
    # paper: every step completes in under a second
    assert cdf.max() < 1.0
    emit(render_table(
        "Figure 6c summary",
        ["metric", "seconds"],
        [["median step", cdf.median()], ["p99 step", cdf.quantile(0.99)],
         ["max step", cdf.max()]],
    ))
