"""Property and unit tests for the ordering functions."""

from hypothesis import given, strategies as st

import pytest

from repro.core.ordering import (
    OptimizedOrdering,
    RandomOrdering,
    make_ordering,
)
from repro.simnet.messages import Annotation

annotations = st.builds(
    Annotation,
    origin=st.sampled_from(["w", "x", "y", "z"]),
    seq=st.integers(min_value=1, max_value=50),
    delay_us=st.integers(min_value=1, max_value=100_000),
    group=st.integers(min_value=0, max_value=5),
    chain=st.integers(min_value=0, max_value=10),
    sub=st.integers(min_value=0, max_value=20),
)


@pytest.fixture(params=["OO", "RO"])
def ordering(request):
    return make_ordering(request.param)


class TestKeys:
    @given(annotations)
    def test_property_key_is_deterministic(self, a):
        for name in ("OO", "RO"):
            assert make_ordering(name).key(a) == make_ordering(name).key(a)

    @given(st.lists(annotations, min_size=2, max_size=30, unique=True))
    def test_property_sorting_is_permutation_invariant(self, anns):
        for name in ("OO", "RO"):
            fn = make_ordering(name)
            forward = sorted(anns, key=fn.key)
            backward = sorted(reversed(anns), key=fn.key)
            assert [fn.key(a) for a in forward] == [fn.key(a) for a in backward]

    @given(annotations, annotations)
    def test_property_group_dominates(self, a, b):
        for name in ("OO", "RO"):
            fn = make_ordering(name)
            if a.group < b.group:
                assert fn.key(a) < fn.key(b)

    def test_oo_orders_by_delay_within_group(self):
        fn = OptimizedOrdering()
        near = Annotation(origin="z", seq=9, delay_us=100, group=0)
        far = Annotation(origin="a", seq=1, delay_us=200, group=0)
        assert fn.key(near) < fn.key(far)

    @given(annotations, st.integers(min_value=1, max_value=1000), st.integers(1, 5))
    def test_property_causal_chains_sort_after_parents(self, parent, link, sub):
        """Both orderings must be causally consistent: a message caused by
        delivering `parent` sorts after `parent` (footnote 1)."""
        child = parent.extended(link_delay_us=link, sub=sub, over_chain_bound=False)
        for name in ("OO", "RO"):
            fn = make_ordering(name)
            assert fn.key(child) > fn.key(parent)

    def test_ro_differs_from_oo_within_group(self):
        anns = [
            Annotation(origin=o, seq=s, delay_us=d, group=0, chain=0)
            for o, s, d in [
                ("w", 1, 100), ("x", 2, 200), ("y", 3, 300),
                ("z", 4, 400), ("w", 5, 500), ("x", 6, 600),
            ]
        ]
        oo = [a.origin + str(a.seq) for a in sorted(anns, key=OptimizedOrdering().key)]
        ro = [a.origin + str(a.seq) for a in sorted(anns, key=RandomOrdering().key)]
        assert oo != ro

    def test_ro_salt_changes_permutation(self):
        anns = [
            Annotation(origin="w", seq=s, delay_us=1, group=0, chain=0, sub=s)
            for s in range(12)
        ]
        p0 = sorted(anns, key=RandomOrdering(salt=0).key)
        p1 = sorted(anns, key=RandomOrdering(salt=1).key)
        assert p0 != p1


class TestSpecialKeys:
    def test_timer_sorts_before_all_messages_of_its_group(self, ordering):
        timer = ordering.timer_key(group=3, node="n", seq=0)
        msg = ordering.key(Annotation(origin="a", seq=1, delay_us=1, group=3))
        prev = ordering.key(Annotation(origin="a", seq=1, delay_us=10**9, group=2))
        assert prev < timer < msg

    def test_external_sorts_after_timers_before_messages(self, ordering):
        timer = ordering.timer_key(group=3, node="n", seq=5)
        ext = ordering.external_key(group=3, node="n", seq=0)
        msg = ordering.key(Annotation(origin="a", seq=1, delay_us=1, group=3))
        assert timer < ext < msg

    def test_timer_keys_ordered_by_creation_seq(self, ordering):
        assert ordering.timer_key(1, "n", 0) < ordering.timer_key(1, "n", 1)

    def test_external_keys_ordered_by_node_then_seq(self, ordering):
        assert ordering.external_key(1, "a", 9) < ordering.external_key(1, "b", 0)


class TestSenderDisambiguation:
    """Regression: two distinct relays of one origination must never
    collide on an ordering key (they did before keys carried the sender,
    which silently dropped one of two same-key acknowledgements)."""

    def _twins(self):
        a = Annotation(origin="d", seq=2, delay_us=8_220, group=0, chain=2,
                       sub=9, sender="a")
        c = Annotation(origin="d", seq=2, delay_us=8_220, group=0, chain=2,
                       sub=9, sender="c")
        return a, c

    def test_oo_keys_differ_for_different_senders(self):
        a, c = self._twins()
        assert OptimizedOrdering().key(a) != OptimizedOrdering().key(c)

    def test_ro_keys_differ_for_different_senders(self):
        a, c = self._twins()
        assert RandomOrdering().key(a) != RandomOrdering().key(c)

    def test_sort_key_includes_sender(self):
        a, c = self._twins()
        assert a.sort_key() != c.sort_key()

    def test_extended_records_the_relaying_sender(self):
        parent = Annotation(origin="d", seq=2, delay_us=100, group=0, sender="d")
        child = parent.extended(link_delay_us=50, sub=1, over_chain_bound=False,
                                sender="b")
        assert child.sender == "b"
        assert child.origin == "d"


class TestFactory:
    def test_factory_names(self):
        assert make_ordering("oo").name == "OO"
        assert make_ordering("RO").name == "RO"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_ordering("XX")
