"""Tests for the scenario-sweep subsystem (:mod:`repro.sweep`)."""

import pytest

from _fixtures import square_graph

from repro.simnet.engine import SECOND
from repro.simnet.events import LINK_DOWN, LINK_UP, NODE_DOWN, NODE_UP
from repro.sweep import (
    Scenario,
    SweepCell,
    SweepRunner,
    crash_restart_schedule,
    ddos_overload_schedule,
    flap_storm_schedule,
    get_scenario,
    latency_jitter_scenario,
    partition_schedule,
    register,
    run_cell,
    scenario_names,
    unregister,
)


class TestRegistry:
    def test_builtin_catalogue(self):
        names = scenario_names()
        assert len(names) >= 5
        for expected in (
            "flap-storm", "crash-restart", "partition", "latency-jitter",
            "ddos-overload", "xorp-bgp-med", "quagga-rip-blackhole",
        ):
            assert expected in names

    def test_lookup_returns_descriptor(self):
        scenario = get_scenario("flap-storm")
        assert scenario.name == "flap-storm"
        assert "defined" in scenario.modes

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("heat-death")

    def test_duplicate_registration_rejected(self):
        clone = latency_jitter_scenario(name="dup-test")
        register(clone)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register(latency_jitter_scenario(name="dup-test"))
            # re-registering the *same* object is an idempotent no-op
            assert register(clone) is clone
        finally:
            unregister("dup-test")

    def test_runner_rejects_unknown_scenario(self):
        with pytest.raises(KeyError):
            SweepRunner(scenarios=["heat-death"])


class TestFaultGenerators:
    def test_flap_storm_is_seed_deterministic_and_heals(self, square):
        a = flap_storm_schedule(square, seed=7)
        b = flap_storm_schedule(square, seed=7)
        assert a.sorted() == b.sorted()
        assert flap_storm_schedule(square, seed=8).sorted() != a.sorted()
        downs = [e for e in a if e.kind == LINK_DOWN]
        ups = [e for e in a if e.kind == LINK_UP]
        assert len(downs) == len(ups) == 4
        # every flapped link comes back up
        assert sorted(e.target for e in downs) == sorted(e.target for e in ups)

    def test_crash_restart_pairs_down_with_up(self, square):
        schedule = crash_restart_schedule(square, seed=3, n_crashes=2)
        downs = [e for e in schedule if e.kind == NODE_DOWN]
        ups = [e for e in schedule if e.kind == NODE_UP]
        assert len(downs) == len(ups) == 2
        for down, up in zip(downs, ups):
            assert down.target == up.target
            assert up.time_us > down.time_us
        assert schedule.sorted() == crash_restart_schedule(
            square, seed=3, n_crashes=2
        ).sorted()

    def test_partition_cuts_and_heals_a_bipartition(self, square):
        schedule = partition_schedule(square, seed=5)
        downs = {e.target for e in schedule if e.kind == LINK_DOWN}
        ups = {e.target for e in schedule if e.kind == LINK_UP}
        assert downs == ups and downs
        # removing the downed links must disconnect the graph
        remaining = [
            (a, b, d) for a, b, d in square.edges if (a, b) not in downs
        ]
        from repro.topology import TopologyGraph

        cut = TopologyGraph(name="cut", nodes=square.nodes, edges=remaining)
        assert not cut.is_connected()
        assert schedule.sorted() == partition_schedule(square, seed=5).sorted()

    def test_ddos_overload_respects_rate(self, square):
        schedule = ddos_overload_schedule(
            square, seed=2, events_per_second=8, n_events=8
        )
        events = schedule.sorted()
        assert len(events) >= 8
        gaps = [
            b.time_us - a.time_us for a, b in zip(events, events[1:])
        ]
        assert all(gap == SECOND // 8 for gap in gaps)
        assert schedule.sorted() == ddos_overload_schedule(
            square, seed=2, events_per_second=8, n_events=8
        ).sorted()

    def test_generators_reject_degenerate_topologies(self):
        from repro.topology import TopologyGraph

        lonely = TopologyGraph(name="lonely", nodes=["x"], edges=[])
        with pytest.raises(ValueError):
            flap_storm_schedule(lonely, seed=1)
        with pytest.raises(ValueError):
            partition_schedule(lonely, seed=1)


class TestRunCell:
    def test_defined_cell_upholds_theorem1(self):
        result = run_cell(SweepCell("latency-jitter", seed=2, mode="defined"))
        assert result.error is None
        assert result.invariant_ok is True
        assert result.replay_fingerprint == result.fingerprint

    def test_same_cell_twice_is_bit_identical(self):
        cell = SweepCell("flap-storm", seed=4, mode="defined")
        a, b = run_cell(cell), run_cell(cell)
        assert a.error is None and b.error is None
        assert a.fingerprint == b.fingerprint
        assert a.replay_fingerprint == b.replay_fingerprint
        assert a.rollbacks == b.rollbacks

    def test_vanilla_cell_runs_without_invariant(self):
        result = run_cell(SweepCell("flap-storm", seed=4, mode="vanilla"))
        assert result.error is None
        assert result.invariant_ok is None
        assert result.deliveries > 0

    def test_errors_are_captured_not_raised(self):
        register(Scenario(
            name="broken-test",
            description="always explodes",
            topology=lambda seed: (_ for _ in ()).throw(RuntimeError("boom")),
            schedule=lambda graph, seed: None,
        ))
        try:
            result = run_cell(SweepCell("broken-test", seed=1, mode="vanilla"))
            assert result.error is not None and "boom" in result.error
            assert result.ok is False
        finally:
            unregister("broken-test")


class TestSweepRunner:
    def test_grid_covers_scenarios_seeds_and_modes(self):
        runner = SweepRunner(
            scenarios=["ddos-overload", "flap-storm"], seeds=(1, 2)
        )
        grid = runner.grid()
        # ddos-overload runs three modes, flap-storm two
        assert len(grid) == 2 * 3 + 2 * 2
        assert len(set(grid)) == len(grid)

    def test_serial_report_checks_out(self):
        report = SweepRunner(
            scenarios=["latency-jitter", "xorp-bgp-med"], seeds=(1, 2)
        ).run()
        assert report.ok(), report.render()
        assert not report.invariant_violations()
        # seed-invariance of DEFINED-RB on a fixed workload: one
        # fingerprint across seeds, while vanilla diverges
        assert report.distinct_fingerprints("xorp-bgp-med", "defined") == 1
        assert report.distinct_fingerprints("xorp-bgp-med", "vanilla") == 2

    def test_parallel_equals_serial(self):
        kwargs = dict(scenarios=["latency-jitter", "quagga-rip-blackhole"], seeds=(1, 2))
        serial = SweepRunner(workers=1, **kwargs).run()
        parallel = SweepRunner(workers=2, **kwargs).run()
        assert parallel.ok(), parallel.render()
        assert serial.fingerprint_index() == parallel.fingerprint_index()

    def test_repeats_probe_seed_invariance(self):
        report = SweepRunner(
            scenarios=["latency-jitter"], seeds=(1,), repeats=2
        ).run()
        # the repeats axis varies the *jitter* seed; deterministic modes
        # must still collapse to one fingerprint per (scenario, seed)
        assert report.invariance_splits() == []
        assert report.repeat_mismatches() == []  # legacy alias
        assert len(report.cells) == 4  # 2 modes x 2 repeats
        defined = [c for c in report.cells if c.mode == "defined"]
        assert {c.network_seed_label for c in defined} != {1}
        assert len({c.fingerprint for c in defined}) == 1

    def test_every_builtin_scenario_upholds_theorem1(self):
        report = SweepRunner(seeds=(1,)).run()
        assert report.ok(), report.render()
        defined = [c for c in report.cells if c.mode == "defined"]
        assert defined and all(c.invariant_ok for c in defined)

    def test_render_mentions_verdict(self):
        report = SweepRunner(scenarios=["xorp-bgp-med"], seeds=(1,)).run()
        text = report.render()
        assert "verdict: OK" in text
        assert "xorp-bgp-med" in text

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=0)
        with pytest.raises(ValueError):
            SweepRunner(repeats=0)
        with pytest.raises(ValueError):
            SweepRunner(transport="carrier-pigeon")

    def test_result_transports_agree(self):
        """The shared-memory streaming transport and the legacy
        per-future transport are interchangeable, cell for cell."""
        kwargs = dict(scenarios=["latency-jitter"], seeds=(1,), repeats=2)
        shm = SweepRunner(workers=2, transport="shm", **kwargs).run()
        futures = SweepRunner(workers=2, transport="futures", **kwargs).run()
        assert shm.ok(), shm.render()
        assert futures.ok(), futures.render()
        assert shm.fingerprint_index() == futures.fingerprint_index()


class TestCrashRestartDeterminism:
    """The reboot protocol: a restarted node rejoins at the current group."""

    @pytest.mark.parametrize("seed", [1, 2, 5])
    def test_restart_cell_reproduces(self, seed):
        result = run_cell(SweepCell("crash-restart", seed=seed, mode="defined"))
        assert result.error is None
        assert result.invariant_ok is True
        assert result.late_deliveries == 0

    @pytest.mark.parametrize("crash_offset_us", [500, 2_000, 4_000])
    def test_boundary_crash_with_flood_in_flight_reproduces(
        self, square, crash_offset_us
    ):
        """A crash just after a beacon boundary, while the previous
        group's flood is still in flight, must still satisfy Theorem 1:
        the crash protocol retracts back to the last *closed* group and
        retags the recorded death group to match."""
        from repro.core.fingerprint import first_divergence
        from repro.harness import run_ls_replay, run_production
        from repro.simnet.events import EventSchedule, ExternalEvent

        beacon_us = 4_250_000  # group 17 opens here (250 ms beacons)
        schedule = EventSchedule()
        schedule.add(ExternalEvent(
            time_us=beacon_us - 2_000, kind=LINK_DOWN, target=("b", "c")
        ))
        schedule.add(ExternalEvent(
            time_us=beacon_us + crash_offset_us, kind=NODE_DOWN, target="d"
        ))
        schedule.add(ExternalEvent(time_us=8_000_000, kind=NODE_UP, target="d"))
        schedule.add(ExternalEvent(
            time_us=9_000_000, kind=LINK_UP, target=("b", "c")
        ))
        prod = run_production(
            square, schedule, mode="defined", seed=1,
            measure_convergence=False, tail_us=3 * SECOND,
        )
        assert prod.late_deliveries == 0
        replay = run_ls_replay(square, prod.recording)
        assert first_divergence(prod.logs, replay.logs) is None
        assert replay.fingerprint == prod.fingerprint


class TestRuntimeRegisteredScenarioInWorkers:
    def test_custom_scenario_crosses_fork_boundary(self):
        """Caller-registered scenarios must work with workers > 1 on
        fork-capable platforms (elsewhere the runner refuses loudly)."""
        import multiprocessing

        try:
            multiprocessing.get_context("fork")
        except ValueError:
            pytest.skip("platform has no fork start method")
        register(latency_jitter_scenario(name="custom-parallel-test"))
        try:
            report = SweepRunner(
                scenarios=["custom-parallel-test"], seeds=(1,), workers=2
            ).run()
            assert report.ok(), report.render()
            assert not report.errors()
        finally:
            unregister("custom-parallel-test")
