"""Unit tests for external events and schedules."""

import pytest

from repro.simnet.events import (
    ANNOUNCE,
    LINK_DOWN,
    LINK_UP,
    NODE_DOWN,
    EventSchedule,
    ExternalEvent,
    ObservedEvent,
)


class TestExternalEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ExternalEvent(time_us=0, kind="meteor_strike", target="a")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ExternalEvent(time_us=-1, kind=LINK_DOWN, target=("a", "b"))

    def test_link_event_observed_at_both_endpoints(self):
        ev = ExternalEvent(time_us=0, kind=LINK_DOWN, target=("a", "b"))
        assert ev.endpoints() == ("a", "b")

    def test_node_event_observed_at_node(self):
        ev = ExternalEvent(time_us=0, kind=NODE_DOWN, target="r1")
        assert ev.endpoints() == ("r1",)

    def test_announce_observed_at_receiver(self):
        ev = ExternalEvent(time_us=0, kind=ANNOUNCE, target="r1", data={"x": 1})
        assert ev.endpoints() == ("r1",)

    def test_observed_event_describe(self):
        ev = ExternalEvent(time_us=5, kind=LINK_UP, target=("a", "b"))
        text = ObservedEvent(node="a", event=ev).describe()
        assert "link_up@a" in text


class TestEventSchedule:
    def test_sorted_by_time(self):
        schedule = EventSchedule()
        schedule.add(ExternalEvent(time_us=20, kind=NODE_DOWN, target="b"))
        schedule.add(ExternalEvent(time_us=10, kind=NODE_DOWN, target="a"))
        assert [e.time_us for e in schedule] == [10, 20]

    def test_stable_tiebreak_for_equal_times(self):
        schedule = EventSchedule()
        schedule.add(ExternalEvent(time_us=10, kind=NODE_DOWN, target="b"))
        schedule.add(ExternalEvent(time_us=10, kind=LINK_DOWN, target=("a", "b")))
        kinds = [e.kind for e in schedule]
        assert kinds == sorted(kinds)

    def test_len_and_extend(self):
        schedule = EventSchedule()
        schedule.extend(
            ExternalEvent(time_us=i, kind=NODE_DOWN, target="a") for i in range(3)
        )
        assert len(schedule) == 3

    def test_horizon(self):
        schedule = EventSchedule()
        assert schedule.horizon_us() == 0
        schedule.add(ExternalEvent(time_us=99, kind=NODE_DOWN, target="a"))
        assert schedule.horizon_us() == 99


class TestSortedCache:
    def test_repeated_sorted_reuses_the_ordering(self):
        schedule = EventSchedule()
        schedule.add(ExternalEvent(time_us=20, kind=NODE_DOWN, target="b"))
        schedule.add(ExternalEvent(time_us=10, kind=NODE_DOWN, target="a"))
        first = schedule.sorted()
        assert schedule._sorted_cache is not None
        assert schedule.sorted() == first

    def test_mutators_invalidate(self):
        schedule = EventSchedule()
        schedule.add(ExternalEvent(time_us=20, kind=NODE_DOWN, target="b"))
        assert [e.time_us for e in schedule.sorted()] == [20]
        schedule.add(ExternalEvent(time_us=10, kind=NODE_DOWN, target="a"))
        assert [e.time_us for e in schedule.sorted()] == [10, 20]
        schedule.extend(
            [ExternalEvent(time_us=5, kind=NODE_DOWN, target="c")]
        )
        assert [e.time_us for e in schedule.sorted()] == [5, 10, 20]

    def test_direct_events_append_is_caught_by_length_guard(self):
        schedule = EventSchedule()
        schedule.add(ExternalEvent(time_us=20, kind=NODE_DOWN, target="b"))
        schedule.sorted()
        schedule.events.append(ExternalEvent(time_us=10, kind=NODE_DOWN, target="a"))
        assert [e.time_us for e in schedule.sorted()] == [10, 20]

    def test_sorted_returns_an_unaliased_list(self):
        schedule = EventSchedule()
        schedule.add(ExternalEvent(time_us=20, kind=NODE_DOWN, target="b"))
        schedule.add(ExternalEvent(time_us=10, kind=NODE_DOWN, target="a"))
        view = schedule.sorted()
        view.reverse()  # a caller mangling its copy must not poison the cache
        assert [e.time_us for e in schedule.sorted()] == [10, 20]
