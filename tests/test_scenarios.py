"""End-to-end case-study tests (Section 4 of the paper).

These are the headline demonstrations: the two historical bugs are
nondeterministic under the vanilla stack, deterministic under DEFINED-RB,
and exactly reproducible in a DEFINED-LS debugging network.
"""

import pytest

from repro.harness import run_ls_replay
from repro.scenarios import (
    BGP_CORRECT_BEST,
    bgp_daemon_factory,
    bgp_topology,
    quagga_rip_scenario,
    rip_daemon_factory,
    rip_topology,
    xorp_bgp_scenario,
)

SEEDS = range(10)


class TestXorpBgpCaseStudy:
    def test_vanilla_buggy_outcome_is_order_dependent(self):
        outcomes = {
            xorp_bgp_scenario(mode="vanilla", decision="buggy", seed=s).best_at_r3
            for s in SEEDS
        }
        assert outcomes == {"p2", "p3"}

    def test_vanilla_correct_always_selects_p3(self):
        for seed in (0, 3, 7):
            outcome = xorp_bgp_scenario(mode="vanilla", decision="correct", seed=seed)
            assert outcome.best_at_r3 == BGP_CORRECT_BEST
            assert not outcome.bug_manifested

    def test_defined_makes_buggy_outcome_deterministic(self):
        outcomes = [
            xorp_bgp_scenario(mode="defined", decision="buggy", seed=s)
            for s in (1, 2, 3)
        ]
        fingerprints = {o.result.fingerprint for o in outcomes}
        bests = {o.best_at_r3 for o in outcomes}
        assert len(fingerprints) == 1
        assert len(bests) == 1

    def test_replay_reproduces_the_buggy_execution(self):
        prod = xorp_bgp_scenario(mode="defined", decision="buggy", seed=1)
        replay = run_ls_replay(
            bgp_topology(),
            prod.result.recording,
            daemon_factory=bgp_daemon_factory("buggy"),
        )
        assert replay.fingerprint == prod.result.fingerprint
        replay_best = replay.network.nodes["R3"].daemon.best_path_id("10.0.0.0/8")
        assert replay_best == prod.best_at_r3

    def test_patch_validated_in_debugging_network(self):
        """The case-study workflow: once the bug is understood, the fixed
        decision process is validated against the same recording."""
        prod = xorp_bgp_scenario(mode="defined", decision="buggy", seed=1)
        patched = run_ls_replay(
            bgp_topology(),
            prod.result.recording,
            daemon_factory=bgp_daemon_factory("correct"),
        )
        best = patched.network.nodes["R3"].daemon.best_path_id("10.0.0.0/8")
        assert best == BGP_CORRECT_BEST

    def test_correct_daemon_under_defined_still_correct(self):
        outcome = xorp_bgp_scenario(mode="defined", decision="correct", seed=4)
        assert outcome.best_at_r3 == BGP_CORRECT_BEST


class TestQuaggaRipCaseStudy:
    def test_vanilla_race_is_timing_dependent(self):
        outcomes = {
            quagga_rip_scenario(mode="vanilla", matching="buggy", config="race",
                                seed=s).route_via
            for s in range(16)
        }
        # the two scenarios of the paper: the dead route survives (black
        # hole) or the expiry won and the backup took over
        assert "R2" in outcomes
        assert len(outcomes) > 1

    def test_blackhole_config_is_permanent_under_buggy_matching(self):
        for seed in (0, 4, 9):
            outcome = quagga_rip_scenario(
                mode="vanilla", matching="buggy", config="blackhole", seed=seed
            )
            assert outcome.black_hole

    def test_correct_matching_always_fails_over(self):
        for seed in (0, 5):
            outcome = quagga_rip_scenario(
                mode="vanilla", matching="correct", config="blackhole", seed=seed
            )
            assert outcome.recovered

    def test_defined_makes_race_outcome_deterministic(self):
        outcomes = [
            quagga_rip_scenario(mode="defined", matching="buggy", config="race",
                                seed=s)
            for s in (1, 2, 3)
        ]
        assert len({o.route_via for o in outcomes}) == 1
        assert len({o.result.fingerprint for o in outcomes}) == 1

    def test_replay_reproduces_rip_execution(self):
        prod = quagga_rip_scenario(
            mode="defined", matching="buggy", config="blackhole", seed=1
        )
        replay = run_ls_replay(
            rip_topology(),
            prod.result.recording,
            daemon_factory=rip_daemon_factory("buggy", 8),
        )
        assert replay.fingerprint == prod.result.fingerprint
        assert replay.network.nodes["R1"].daemon.route_via("dst") == prod.route_via

    def test_observation_must_follow_death(self):
        with pytest.raises(ValueError):
            quagga_rip_scenario(observe_at_us=1)

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            quagga_rip_scenario(config="mystery")
