"""Run bundles, the first-divergence diff engine, and the Theorem-1
super-beacon-jitter regression.

The regression class pins the exact cell that exposed the lockstep
divergence: ``flap-storm@20`` / seed 1 / 300 ms delivery jitter -- a
jitter magnitude *above* the 250 ms beacon interval, the regime where
chain-delay estimates used to cross a whole group phase and the replay
silently parted ways with production at zero slack deficits.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.artifact import RunBundle, canonical_json
from repro.core.recorder import Recording
from repro.diff import diff_bundles, diff_logs, parse_tag, render_divergence
from repro.harness import run_ls_replay, run_production
from repro.sweep import SweepCell, get_scenario, run_cell

JITTER_US = 300_000  # > the 250 ms beacon interval
WINDOW_US = 5_000_000


@pytest.fixture(scope="module")
def storm_production():
    """One flap-storm@20 production run in the super-beacon regime."""
    scenario = get_scenario("flap-storm@20")
    graph = scenario.topology(1)
    schedule = scenario.schedule(graph, 1)
    result = run_production(
        graph,
        schedule,
        mode="defined",
        seed=1,
        jitter_us=JITTER_US,
        ordering=scenario.ordering,
        settle_us=scenario.settle_us,
        tail_us=scenario.tail_us,
        window_us=WINDOW_US,
    )
    return scenario, graph, result


class TestTheorem1SuperBeaconJitter:
    """The closed hole: delivery jitter above the beacon interval."""

    def test_flap_storm_replay_is_fingerprint_identical(self, storm_production):
        scenario, graph, result = storm_production
        assert result.headroom is not None and result.headroom.clean, (
            "the regression cell must not rely on late deliveries: "
            "divergence at *zero* deficits is what made the bug a bug"
        )
        replay = run_ls_replay(
            graph, result.recording, ordering=scenario.ordering
        )
        assert replay.fingerprint == result.fingerprint
        assert replay.logs == result.logs

    def test_run_cell_invariant_holds(self):
        cell = SweepCell(
            "flap-storm@20", seed=1, mode="defined",
            jitter_us=JITTER_US, window_us=WINDOW_US,
        )
        result = run_cell(cell)
        assert result.error is None
        assert result.invariant_ok is True
        assert result.headroom is not None and result.headroom.clean

    def test_envelope_verified_subsumes_invariant(self):
        from repro.envelope import EnvelopeRunner

        runner = EnvelopeRunner(
            scenarios=["flap-storm@20"],
            jitters_us=[JITTER_US],
            windows_us=[WINDOW_US],
            seeds=[1],
        )
        report = runner.run(suggest=True)
        assert report.ok()
        assert report.suggestion is not None
        assert report.suggestion.verified is True
        assert report.suggestion.invariant_clean is True

    def test_verified_suggestion_requires_clean_invariant(self):
        from repro.envelope import WindowSuggestion

        with pytest.raises(ValueError, match="invariant_clean"):
            WindowSuggestion(
                window_us=1_000, target_quantile=0.99, margin=0.25,
                verified=True, invariant_clean=False,
            )


class TestRunBundle:
    def test_round_trip_and_content_address(self, storm_production, tmp_path):
        _, _, result = storm_production
        bundle = RunBundle.from_production(
            result, context={"scenario": "flap-storm@20", "seed": 1}
        )
        path = bundle.save(str(tmp_path))
        assert path.endswith(f"production-{bundle.sha256[:12]}.run")
        loaded = RunBundle.load(path)
        assert loaded.sha256 == bundle.sha256
        assert loaded.fingerprint == result.fingerprint
        assert loaded.logs() == result.logs

    def test_env_metadata_is_outside_the_hash(self, storm_production):
        _, _, result = storm_production
        a = RunBundle.from_production(result)
        b = RunBundle.from_production(result)
        b.env = {"python": "9.99.9", "platform": "somewhere-else"}
        assert a.sha256 == b.sha256

    def test_embedded_recording_is_replayable(self, storm_production):
        scenario, graph, result = storm_production
        bundle = RunBundle.from_production(result)
        recording = bundle.recording()
        assert recording is not None
        assert recording.spill_bound_us == result.recording.spill_bound_us
        replay = run_ls_replay(graph, recording, ordering=scenario.ordering)
        assert replay.fingerprint == result.fingerprint

    def test_corruption_is_detected(self, storm_production, tmp_path):
        _, _, result = storm_production
        bundle = RunBundle.from_production(result, include_recording=False)
        path = bundle.save(str(tmp_path))
        doc = json.loads(open(path).read())
        doc["run"]["fingerprint"] = "0" * 64
        tampered = tmp_path / "tampered.run"
        tampered.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="corrupt"):
            RunBundle.load(str(tampered))

    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == \
            canonical_json(dict([("a", [1, 2]), ("b", 1)]))


class TestTagParsing:
    def test_message_tag_with_pipes_in_payload(self):
        tag = "m|ospf_lsa|n007|n007|10|0|11|265988|('lsa', 'a|b', 2)"
        parsed = parse_tag(tag)
        assert parsed.kind == "msg"
        assert parsed.group == 11
        assert parsed.identity == "n007:10:0"
        assert parsed.fields["payload"] == "('lsa', 'a|b', 2)"

    def test_external_tag(self):
        parsed = parse_tag("e|link_down|('n007', 'n014')|11|0")
        assert parsed.kind == "ext"
        assert parsed.group == 11
        assert parsed.identity == "link_down:0"

    def test_timer_tag_and_late_prefix(self):
        parsed = parse_tag("late:t|hello:n003|7")
        assert parsed.kind == "timer"
        assert parsed.late is True
        assert parsed.group == 7
        assert parsed.identity == "hello:n003"

    def test_junk_rejected(self):
        with pytest.raises(ValueError):
            parse_tag("x|whatever")


class TestDiffEngine:
    def test_identical_logs_have_no_divergence(self):
        logs = {"a": ("t|hello|1", "m|p|b|b|1|0|2|100|'x'")}
        assert diff_logs(logs, dict(logs)) is None

    def test_mis_grouped_flood_pinpoints_group_field(self):
        a = {"n1": ("t|hello|1", "m|ospf|n2|n2|1|0|2|100|('f',)")}
        b = {"n1": ("t|hello|1", "m|ospf|n2|n2|1|0|3|100|('f',)")}
        d = diff_logs(a, b)
        assert d is not None
        assert (d.node, d.step) == ("n1", 1)
        assert d.group == 2  # the smaller side: where the runs split
        assert d.identity == "n2:1:0"
        assert d.field == "group"

    def test_earliest_group_wins_across_nodes(self):
        # node "a" diverges at step 0 but in group 9; node "z" diverges
        # at step 1 in group 3 -- the group-3 split is the cause, the
        # group-9 one is fallout, regardless of node sort order
        a = {"a": ("t|x|9",), "z": ("t|y|1", "t|z|3")}
        b = {"a": ("t|x2|9",), "z": ("t|y|1", "t|z2|3")}
        d = diff_logs(a, b)
        assert d.node == "z" and d.step == 1 and d.group == 3

    def test_prefix_end_divergence(self):
        a = {"n1": ("t|hello|1", "t|hello|2")}
        b = {"n1": ("t|hello|1",)}
        d = diff_logs(a, b)
        assert d.field == "<end>"
        assert d.b_tag is None
        assert d.group == 2

    def test_kind_mismatch(self):
        a = {"n1": ("t|hello|2",)}
        b = {"n1": ("e|link_down|('a', 'b')|2|0",)}
        d = diff_logs(a, b)
        assert d.field == "<kind>"
        assert d.group == 2


class TestDiffCorpus:
    """An injected mis-grouped flood must be pinpointed at its exact
    first step, deterministically."""

    @pytest.fixture(scope="class")
    def divergent_pair(self, storm_production):
        scenario, graph, result = storm_production
        rec = result.recording
        # inject the defect: mis-group the first daemon-observed event
        # (shift its group by one), the exact shape of the chain-delay
        # bug -- traffic attributed to the wrong group phase
        idx = next(
            i for i, ev in enumerate(rec.events) if ev.node != "__net__"
        )
        events = list(rec.events)
        events[idx] = replace(events[idx], group=events[idx].group + 1)
        bad = Recording(
            events=events, drops=rec.drops,
            horizon_group=rec.horizon_group, hop_cost_us=rec.hop_cost_us,
            delay_estimates=rec.delay_estimates,
            spill_bound_us=rec.spill_bound_us,
        )
        replay = run_ls_replay(graph, bad, ordering=scenario.ordering)
        return (
            RunBundle.from_production(result, include_recording=False),
            RunBundle.from_replay(replay),
            events[idx].group - 1,
        )

    def test_diff_halts_at_single_first_divergence(self, divergent_pair):
        prod, rep, injected_group = divergent_pair
        assert prod.fingerprint != rep.fingerprint
        d = diff_bundles(prod, rep)
        assert d is not None
        # the verdict carries the full location: node, step, group,
        # identity and the first differing field
        assert d.node and d.step >= 0
        assert d.group is not None and d.group >= injected_group
        assert d.identity is not None
        assert d.field not in ("<identical>",)
        # and it is stable: same inputs, same verdict
        assert diff_bundles(prod, rep) == d
        text = render_divergence(d)
        assert d.node in text and "first divergence" in text

    def test_diff_cli_round_trip(self, divergent_pair, tmp_path, capsys):
        from repro.cli import main

        prod, rep, _ = divergent_pair
        pa = prod.save(str(tmp_path))
        pb = rep.save(str(tmp_path))
        assert main(["diff", pa, pb]) == 1
        out = capsys.readouterr().out
        assert "first divergence" in out
        assert main(["diff", pa, pa]) == 0
        out = capsys.readouterr().out
        assert "identical" in out


class TestParityGrid:
    def test_hash_lines_are_stable_and_well_formed(self):
        from repro.parity import bundle_hashes

        grid = (("crash-restart", 1, None),)
        first = bundle_hashes(grid)
        assert len(first) == 2  # production + replay
        for line in first:
            name, seed, role, digest = line.split()
            assert name == "crash-restart"
            assert seed == "seed=1"
            assert role in ("production", "replay")
            assert len(digest) == 64 and int(digest, 16) >= 0
        # same grid, same process, byte-identical lines -- the in-process
        # half of what the CI parity job asserts across interpreters
        assert bundle_hashes(grid) == first


class TestDivergenceArchiving:
    @pytest.mark.filterwarnings("ignore::repro.core.shim.HistoryWindowWarning")
    def test_divergent_cell_writes_replayable_bundles(self, tmp_path):
        # an undersized window forfeits determinism by construction:
        # the replay check fails, and the cell must leave both sides
        # behind as bundles
        cell = SweepCell(
            "flap-storm@20", seed=1, mode="defined", jitter_us=JITTER_US,
            window_us=400_000, check_invariant=True,
            artifact_dir=str(tmp_path),
        )
        result = run_cell(cell)
        assert result.error is None
        assert result.invariant_ok is False
        names = sorted(p.name for p in tmp_path.iterdir())
        assert len(names) == 2
        assert any(n.startswith("production-") for n in names)
        assert any(n.startswith("replay-") for n in names)
        bundles = [RunBundle.load(str(tmp_path / n)) for n in names]
        prod = next(b for b in bundles if b.role == "production")
        rep = next(b for b in bundles if b.role == "replay")
        assert prod.recording() is not None  # replayable
        assert prod.run["context"]["scenario"] == "flap-storm@20"
        d = diff_bundles(prod, rep)
        assert d is not None and d.node

    def test_clean_cell_writes_nothing(self, tmp_path):
        cell = SweepCell(
            "flap-storm@20", seed=1, mode="defined", jitter_us=JITTER_US,
            window_us=WINDOW_US, check_invariant=True,
            artifact_dir=str(tmp_path),
        )
        result = run_cell(cell)
        assert result.invariant_ok is True
        assert list(tmp_path.iterdir()) == []
