"""Importable shared helpers for the test suite.

These used to live in ``tests/conftest.py``, but ``conftest`` is a
terrible import name: pytest imports every conftest it collects under
the *same* top-level module name, so with both ``tests/`` and
``benchmarks/`` present, ``from conftest import ...`` resolved to
whichever directory pytest touched first and broke collection.  Plain
helpers therefore live here (a uniquely named module next to the tests
that use it); ``tests/conftest.py`` keeps only pytest fixtures.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.simnet.engine import SECOND
from repro.simnet.events import EventSchedule, ExternalEvent
from repro.simnet.messages import Message
from repro.topology import TopologyGraph


class FakeStack:
    """A stack stub for daemon unit tests: records sends and timers.

    Implements the app-facing half of the Stack interface; the node-facing
    half is replaced by direct calls from tests.
    """

    def __init__(self, node_id: str = "n0", neighbors: Optional[List[str]] = None):
        self.node_id = node_id
        self._neighbors = neighbors or []
        self.sent: List[Tuple[str, str, Any, Optional[Message]]] = []
        self.timers: Dict[str, int] = {}
        self.cancelled: List[str] = []
        self.now_units = 0

    def send(self, dst, protocol, payload, parent=None, size_bytes=64):
        self.sent.append((dst, protocol, payload, parent))

    def set_timer(self, delay_units, key):
        self.timers[key] = self.now_units + max(1, delay_units)

    def cancel_timer(self, key):
        self.timers.pop(key, None)
        self.cancelled.append(key)

    def time_units(self):
        return self.now_units

    def neighbors(self):
        return list(self._neighbors)

    # --- test conveniences -------------------------------------------
    def sent_protocols(self) -> List[str]:
        return [p for _dst, p, _pl, _par in self.sent]

    def clear(self):
        self.sent.clear()
        self.cancelled.clear()


def square_graph() -> TopologyGraph:
    """Four nodes in a cycle with one chord -- the smallest graph with
    alternate paths, used all over the determinism tests."""
    return TopologyGraph(
        name="square",
        nodes=["a", "b", "c", "d"],
        edges=[
            ("a", "b", 2_000),
            ("b", "c", 3_000),
            ("c", "d", 2_500),
            ("a", "d", 4_000),
            ("b", "d", 3_500),
        ],
    )


def line_graph(n: int = 3, delay_us: int = 2_000) -> TopologyGraph:
    nodes = [f"n{i}" for i in range(n)]
    edges = [(nodes[i], nodes[i + 1], delay_us) for i in range(n - 1)]
    return TopologyGraph(name=f"line{n}", nodes=nodes, edges=edges)


def flap_schedule(
    link: Tuple[str, str],
    down_us: int = 4 * SECOND + 97_000,
    up_us: int = 12 * SECOND + 113_000,
) -> EventSchedule:
    """One link flap at deliberately off-beacon-boundary times."""
    schedule = EventSchedule()
    schedule.add(ExternalEvent(time_us=down_us, kind="link_down", target=link))
    schedule.add(ExternalEvent(time_us=up_us, kind="link_up", target=link))
    return schedule


def scenario_resolution_digest(names: List[str], seed: int = 1) -> Dict[str, Tuple]:
    """Resolve scenario names and digest their concrete environments.

    Runs in worker processes (any multiprocessing start method: this
    module is importable by name) to prove that dynamic ``name@N`` /
    ``a+b`` / ``~jNus`` resolution is a pure function of the builtin
    catalogue -- the digests must match the parent's exactly.
    """
    import hashlib

    from repro.sweep import get_scenario

    out: Dict[str, Tuple] = {}
    for name in names:
        scenario = get_scenario(name)
        graph = scenario.topology(seed)
        schedule = scenario.schedule(graph, seed)
        events = "\n".join(
            f"{e.time_us}|{e.kind}|{e.target!r}" for e in schedule.sorted()
        )
        topo = "\n".join(f"{a}|{b}|{d}" for a, b, d in sorted(graph.edges))
        out[name] = (
            scenario.name,
            graph.node_count(),
            hashlib.sha256(topo.encode()).hexdigest(),
            hashlib.sha256(events.encode()).hexdigest(),
        )
    return out
