"""Unit tests for the SPF (Dijkstra) implementation, cross-checked
against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing.spf import dijkstra, expected_distances


def simple_adjacency():
    return {
        "a": {"b": 1, "c": 4},
        "b": {"a": 1, "c": 1, "d": 5},
        "c": {"a": 4, "b": 1, "d": 1},
        "d": {"b": 5, "c": 1},
    }


class TestDijkstra:
    def test_distances(self):
        dist, _ = dijkstra(simple_adjacency(), "a")
        assert dist == {"a": 0, "b": 1, "c": 2, "d": 3}

    def test_first_hops_follow_shortest_paths(self):
        _, first = dijkstra(simple_adjacency(), "a")
        assert first["a"] is None
        assert first["b"] == "b"
        assert first["c"] == "b"
        assert first["d"] == "b"

    def test_unreachable_nodes_absent(self):
        adjacency = {"a": {"b": 1}, "b": {"a": 1}, "z": {}}
        dist, _ = dijkstra(adjacency, "a")
        assert "z" not in dist

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            dijkstra({"a": {"b": -1}, "b": {"a": -1}}, "a")

    def test_deterministic_tie_break_by_first_hop(self):
        # two equal-cost paths a-b-d and a-c-d: first hop must be 'b'
        adjacency = {
            "a": {"b": 1, "c": 1},
            "b": {"a": 1, "d": 1},
            "c": {"a": 1, "d": 1},
            "d": {"b": 1, "c": 1},
        }
        _, first = dijkstra(adjacency, "a")
        assert first["d"] == "b"

    @settings(max_examples=40)
    @given(st.integers(min_value=2, max_value=12), st.integers(0, 1000))
    def test_property_distances_match_networkx(self, n, seed):
        import random

        rng = random.Random(seed)
        graph = nx.gnm_random_graph(n, min(n * 2, n * (n - 1) // 2), seed=seed)
        adjacency = {str(v): {} for v in graph.nodes}
        for u, v in graph.edges:
            w = rng.randint(1, 10)
            adjacency[str(u)][str(v)] = w
            adjacency[str(v)][str(u)] = w
        dist, _ = dijkstra(adjacency, "0")
        if not adjacency.get("0"):
            assert dist == {"0": 0}
            return
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(adjacency)
        for u in adjacency:
            for v, w in adjacency[u].items():
                nx_graph.add_edge(u, v, weight=w)
        expected = nx.single_source_dijkstra_path_length(nx_graph, "0")
        assert dist == {k: int(v) for k, v in expected.items()}

    def test_determinism_repeated_runs(self):
        a = dijkstra(simple_adjacency(), "a")
        b = dijkstra(simple_adjacency(), "a")
        assert a == b


class TestExpectedDistances:
    def test_respects_link_state(self):
        links = {("a", "b"): True, ("b", "c"): False}
        dist = expected_distances(links, ["a", "b", "c"], "a")
        assert dist == {"a": 0, "b": 1}

    def test_custom_cost(self):
        links = {("a", "b"): True}
        assert expected_distances(links, ["a", "b"], "a", cost=7)["b"] == 7
