"""Unit tests for the statistics containers."""

from repro.simnet.stats import NodeStats, RunStats


class TestNodeStats:
    def test_total_packets(self):
        stats = NodeStats(node="a")
        stats.data_packets_sent = 3
        stats.data_packets_received = 4
        stats.control_packets_sent = 2
        stats.control_packets_received = 1
        assert stats.total_packets() == 10
        assert stats.total_packets(include_control=False) == 7

    def test_record_rollback_accumulates(self):
        stats = NodeStats(node="a")
        stats.record_rollback(500, depth=3)
        stats.record_rollback(700, depth=1)
        assert stats.rollbacks == 2
        assert stats.messages_rolled_back == 4
        assert stats.rollback_samples_us == [500, 700]

    def test_record_processing_and_memory(self):
        stats = NodeStats(node="a")
        stats.record_processing(120)
        stats.record_memory(10, 5)
        assert stats.processing_samples_us == [120]
        assert stats.virtual_memory_samples == [10]
        assert stats.physical_memory_samples == [5]


class TestRunStats:
    def test_node_accessor_creates_lazily(self):
        run = RunStats()
        run.node("x").data_packets_sent += 1
        assert run.node("x").data_packets_sent == 1
        assert set(run.per_node) == {"x"}

    def test_packets_per_node(self):
        run = RunStats()
        run.node("a").data_packets_sent = 2
        run.node("b").control_packets_received = 3
        assert sorted(run.packets_per_node()) == [2, 3]
        assert sorted(run.packets_per_node(include_control=False)) == [0, 2]

    def test_aggregations(self):
        run = RunStats()
        run.node("a").record_rollback(100, 1)
        run.node("b").record_rollback(200, 2)
        run.node("a").record_processing(10)
        run.node("b").record_processing(20)
        assert run.total_rollbacks() == 2
        assert sorted(run.all_rollback_samples()) == [100, 200]
        assert sorted(run.all_processing_samples()) == [10, 20]

    def test_control_packet_totals(self):
        run = RunStats()
        run.node("a").control_packets_sent = 4
        run.node("b").control_packets_received = 6
        assert run.total_control_packets() == 10
