"""Unit tests for metrics and report rendering."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.metrics import Cdf, dominates, mean, median, percentile
from repro.analysis.report import ascii_cdf, render_series, render_table

samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=100,
)


class TestScalars:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2
        assert mean([]) == 0.0

    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2
        assert median([1, 2, 3, 4]) == 2.5

    def test_percentile_bounds(self):
        assert percentile([5, 10], 0) == 5
        assert percentile([5, 10], 100) == 10
        assert percentile([5, 10], 50) == 7.5

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(samples, st.floats(min_value=0, max_value=100))
    def test_property_percentile_within_range(self, xs, q):
        p = percentile(xs, q)
        assert min(xs) <= p <= max(xs)

    @given(samples)
    def test_property_percentiles_monotone(self, xs):
        ps = [percentile(xs, q) for q in (0, 25, 50, 75, 100)]
        assert ps == sorted(ps)


class TestCdf:
    def test_requires_samples(self):
        with pytest.raises(ValueError):
            Cdf.of([])

    def test_at_fraction(self):
        cdf = Cdf.of([1, 2, 3, 4])
        assert cdf.at(0) == 0.0
        assert cdf.at(2) == 0.5
        assert cdf.at(10) == 1.0

    def test_quantiles(self):
        cdf = Cdf.of(range(101))
        assert cdf.quantile(0.5) == 50
        assert cdf.median() == 50

    def test_points_are_monotone(self):
        cdf = Cdf.of([5, 1, 9, 3, 7])
        pts = cdf.points(n=8)
        xs = [x for x, _ in pts]
        ys = [y for _, y in pts]
        assert xs == sorted(xs) and ys == sorted(ys)
        with pytest.raises(ValueError):
            cdf.points(n=1)

    def test_tail_beyond(self):
        cdf = Cdf.of([1, 2, 3, 4])
        assert cdf.tail_beyond(3) == pytest.approx(0.25)

    def test_summary_mentions_stats(self):
        text = Cdf.of([1, 2, 3]).summary()
        assert "p50=2" in text and "n=3" in text

    @given(samples)
    def test_property_at_is_a_cdf(self, xs):
        cdf = Cdf.of(xs)
        probes = sorted([min(xs) - 1, max(xs) + 1] + xs[:10])
        values = [cdf.at(p) for p in probes]
        assert values == sorted(values)
        assert values[0] == 0.0 or min(xs) - 1 >= min(xs)
        assert values[-1] == 1.0

    def test_dominates(self):
        fast = Cdf.of([1, 2, 3])
        slow = Cdf.of([10, 20, 30])
        assert dominates(fast, slow)
        assert not dominates(slow, fast)


class TestRendering:
    def test_table_alignment_and_content(self):
        text = render_table("T", ["col", "value"], [["a", 1.5], ["bb", 2]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[2] and "a" in text and "1.5" in text

    def test_series_layout(self):
        text = render_series(
            "S", "n", [10, 20], {"OO": [1.0, 2.0], "RO": [3.0, 4.0]}
        )
        assert "OO" in text and "RO" in text
        assert text.splitlines()[-1].startswith("20")

    def test_ascii_cdf_contains_markers_and_summaries(self):
        art = ascii_cdf("Fig", {"x": Cdf.of([1, 2, 3]), "y": Cdf.of([2, 4, 8])})
        assert "Fig" in art
        assert "[*] x" in art and "[o] y" in art
        assert "p50" in art

    def test_ascii_cdf_handles_constant_distribution(self):
        art = ascii_cdf("Fig", {"x": Cdf.of([5, 5, 5])})
        assert "p50=5" in art
