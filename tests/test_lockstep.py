"""Behavioural tests for the DEFINED-LS lockstep coordinator and stack."""

import pytest

from _fixtures import flap_schedule, square_graph

from repro.core.lockstep import LockstepCoordinator
from repro.core.ordering import make_ordering
from repro.harness import ospf_daemon_factory, run_production
from repro.topology import to_network


@pytest.fixture(scope="module")
def production():
    """One production run shared by the read-only lockstep tests."""
    square = square_graph()
    flap = flap_schedule(("b", "c"))
    return square, run_production(square, flap, mode="defined", seed=3)


def make_coordinator(square, recording, seed=77, loss=0.0):
    net = to_network(square, seed=seed, jitter_us=300, loss=loss)
    coordinator = LockstepCoordinator(net, recording, ordering=make_ordering("OO"))
    coordinator.attach(ospf_daemon_factory(square))
    coordinator.start()
    return coordinator


class TestPhaseMachinery:
    def test_cycle_counting_and_group_progression(self, production):
        square, prod = production
        coordinator = make_coordinator(square, prod.recording)
        assert coordinator.current_group == -1
        coordinator.advance_cycle()
        assert coordinator.current_group == 0
        coordinator.run_group()
        assert not coordinator.in_group
        assert coordinator.current_group == 0

    def test_groups_quiesce_with_zero_zero_cycle(self, production):
        square, prod = production
        coordinator = make_coordinator(square, prod.recording)
        sent, processed = coordinator.advance_cycle()
        assert processed > 0  # boot group has traffic
        while coordinator.in_group:
            sent, processed = coordinator.advance_cycle()
        assert (sent, processed) == (0, 0)

    def test_step_times_recorded(self, production):
        square, prod = production
        coordinator = make_coordinator(square, prod.recording)
        for _ in range(5):
            coordinator.advance_cycle()
        times = coordinator.network.run_stats.step_times_us
        assert len(times) == 5
        assert all(t > 0 for t in times)

    def test_finished_after_horizon(self, production):
        square, prod = production
        coordinator = make_coordinator(square, prod.recording)
        coordinator.run_all()
        assert coordinator.finished
        assert coordinator.current_group == prod.recording.horizon_group

    def test_advance_after_finished_is_noop(self, production):
        square, prod = production
        coordinator = make_coordinator(square, prod.recording)
        coordinator.run_all()
        assert coordinator.advance_cycle() == (0, 0)

    def test_barrier_traffic_counted_as_control(self, production):
        square, prod = production
        coordinator = make_coordinator(square, prod.recording)
        coordinator.advance_cycle()
        stats = coordinator.network.run_stats
        assert stats.total_control_packets() > 0


class TestTopologyReplay:
    def test_logical_link_state_follows_recording(self, production):
        square, prod = production
        coordinator = make_coordinator(square, prod.recording)
        down_group = next(
            e.group for e in prod.recording.events if e.kind == "link_down"
        )
        up_group = next(
            e.group for e in prod.recording.events if e.kind == "link_up"
        )
        while coordinator.current_group < down_group:
            coordinator.advance_cycle()
        stack = coordinator.stacks["b"]
        assert frozenset(("b", "c")) in stack.logical_down_links
        assert "c" not in stack.neighbors()
        while coordinator.current_group < up_group and not coordinator.finished:
            coordinator.advance_cycle()
        assert frozenset(("b", "c")) not in stack.logical_down_links

    def test_physical_links_stay_up(self, production):
        """Topology replay is logical; the debugging lab's wires stay on."""
        square, prod = production
        coordinator = make_coordinator(square, prod.recording)
        coordinator.run_all()
        for link in coordinator.network.links.values():
            assert link.up


class TestGroupLocalReexecution:
    def test_rebase_checkpoint_preserves_modification(self, production):
        square, prod = production
        coordinator = make_coordinator(square, prod.recording)
        coordinator.advance_cycle()
        stack = coordinator.stacks["a"]
        daemon = coordinator.network.nodes["a"].daemon
        daemon.hello_count = 999
        stack.rebase_checkpoint()
        coordinator.run_group()
        # a re-execution within the group must not wipe the modification
        assert daemon.hello_count >= 999

    def test_pending_inputs_sorted(self, production):
        square, prod = production
        coordinator = make_coordinator(square, prod.recording)
        coordinator.advance_cycle()
        for stack in coordinator.stacks.values():
            entries = stack.pending_inputs()
            keys = [e.key for e in entries]
            assert keys == sorted(keys)


class TestErrorHandling:
    def test_empty_network_rejected(self, production):
        _square, prod = production
        from repro.simnet.network import Network

        with pytest.raises(ValueError):
            LockstepCoordinator(Network(), prod.recording)

    def test_live_external_events_rejected(self, production):
        square, prod = production
        coordinator = make_coordinator(square, prod.recording)
        from repro.simnet.events import ExternalEvent

        with pytest.raises(RuntimeError, match="no live external events"):
            coordinator.stacks["a"].on_external(
                ExternalEvent(time_us=0, kind="link_down", target=("a", "b"))
            )
