"""Tests for the command-line interface."""

import pytest

from repro.cli import load_topology, main


class TestLoadTopology:
    def test_rocketfuel_names(self):
        assert load_topology("ebone", 0, 0).node_count() == 25

    def test_synthetic_generators(self):
        assert load_topology("waxman", 20, 1).node_count() == 20
        assert load_topology("ba", 20, 1).node_count() == 20

    def test_unknown_rejected(self):
        with pytest.raises(SystemExit):
            load_topology("arpanet", 10, 0)


class TestCommands:
    def test_production_vanilla(self, capsys):
        rc = main([
            "production", "--topology", "waxman", "--size", "10",
            "--events", "2", "--mode", "vanilla", "--seed", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "production run (vanilla)" in out
        assert "mean convergence" in out

    def test_production_defined_writes_recording(self, tmp_path, capsys):
        path = str(tmp_path / "run.recording.json")
        rc = main([
            "production", "--topology", "waxman", "--size", "10",
            "--events", "2", "--mode", "defined", "--seed", "1",
            "--recording-out", path,
        ])
        assert rc == 0
        assert "recording written" in capsys.readouterr().out

        rc = main([
            "replay", "--topology", "waxman", "--size", "10",
            "--recording", path,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lockstep replay" in out

    def test_recording_out_requires_defined(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "production", "--topology", "waxman", "--size", "10",
                "--events", "2", "--mode", "vanilla",
                "--recording-out", str(tmp_path / "x.json"),
            ])

    def test_casestudy_bgp(self, capsys):
        rc = main(["casestudy", "bgp"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "XORP" in out and "best path" in out

    def test_sweep_list(self, capsys):
        rc = main(["sweep", "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "flap-storm" in out and "xorp-bgp-med" in out
        # the composed and jittered builtins are first-class citizens
        assert "flap-storm+partition" in out
        assert "crash-restart+ddos-overload" in out
        assert "flap-storm~j1us" in out

    def test_sweep_small_grid(self, capsys):
        rc = main([
            "sweep", "--scenarios", "xorp-bgp-med,latency-jitter",
            "--seeds", "1,2", "--workers", "1", "--verbose",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out
        assert "theorem1" in out

    def test_sweep_list_includes_size_variants(self, capsys):
        rc = main(["sweep", "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "flap-storm@40" in out and "partition@80" in out

    def test_sweep_repeats_with_report_out(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "grid.json"
        rc = main([
            "sweep", "--scenarios", "latency-jitter", "--modes", "defined",
            "--seeds", "1", "--repeats", "3",
            "--report-out", str(report_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "x 3 jitter-seed repeat(s)" in out
        assert "verdict: OK" in out
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True
        assert payload["repeats"] == 3
        assert payload["invariance_splits"] == []

    def test_sweep_sizes_flag_rescales_selection(self, capsys):
        rc = main([
            "sweep", "--scenarios", "latency-jitter", "--sizes", "12",
            "--modes", "defined", "--seeds", "1", "--verbose",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "latency-jitter@12/defined" in out
        assert "verdict: OK" in out

    def test_scale_sweep_still_works(self, capsys):
        rc = main(["scale", "--sizes", "12", "--events", "2"])
        assert rc == 0
        assert "convergence time" in capsys.readouterr().out

    def test_sweep_compose_with_boundary_jitter(self, capsys):
        # --compose alone (no --scenarios) sweeps only the compositions;
        # --boundary-jitter-us wraps them in the fuzzer variant
        rc = main([
            "sweep", "--compose", "latency-jitter+ddos-overload",
            "--boundary-jitter-us", "1", "--seeds", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "latency-jitter+ddos-overload~j1us" in out
        assert "verdict: OK" in out

    def test_boundary_jitter_rewraps_and_dedupes_prejittered_names(self, capsys):
        # 'latency-jitter' and the registered 'latency-jitter~j1us' must
        # collapse to ONE grid entry at the requested magnitude, not run
        # twice (nor keep a stale 1us magnitude)
        rc = main([
            "sweep", "--scenarios", "latency-jitter,latency-jitter~j1us",
            "--boundary-jitter-us", "2", "--seeds", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sweeping 2 cells (1 scenario(s)" in out
        assert "latency-jitter~j2us" in out

    def test_explicit_scenarios_all_keeps_catalogue_alongside_compose(self):
        from repro.cli import build_parser
        from repro.sweep import scenario_names

        # regression: an explicit --scenarios all must not be silently
        # narrowed to just the compositions
        args = build_parser().parse_args([
            "sweep", "--scenarios", "all",
            "--compose", "flap_storm+partition,latency-jitter+ddos-overload",
            "--seeds", "1",
        ])
        # exercise only the name-selection logic via a dry --list-less
        # parse; the grid itself is covered by the sweep tests
        assert args.scenarios == "all" and args.compose

        import repro.cli as cli_mod

        captured = {}

        class FakeRunner:
            def __init__(self, scenarios=None, **kwargs):
                captured["names"] = scenarios
                raise SystemExit(0)

        import repro.sweep as sweep_mod
        original = sweep_mod.SweepRunner
        sweep_mod.SweepRunner = FakeRunner
        try:
            with pytest.raises(SystemExit):
                cli_mod.cmd_sweep(args)
        finally:
            sweep_mod.SweepRunner = original
        # "all" covers the whole unsized catalogue; @N size variants are
        # an explicit opt-in (an 80-node cell runs for minutes)
        assert set(scenario_names(include_sized=False)) <= set(captured["names"])
        assert not [n for n in captured["names"] if "@" in n]
        assert "latency-jitter+ddos-overload" in captured["names"]
        # 'flap-storm+partition' is both registered and a compose spec
        # (given in its underscore spelling, even): it must appear
        # exactly once, canonically, not run its cells twice
        assert captured["names"].count("flap-storm+partition") == 1
        assert "flap_storm+partition" not in captured["names"]

    def test_sweep_compose_rejects_unknown_component(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--compose", "latency-jitter+heat-death",
                  "--seeds", "1"])

    def test_fuzz_small_grid_writes_report(self, tmp_path, capsys):
        report_path = tmp_path / "fuzz.json"
        rc = main([
            "fuzz", "--scenarios", "latency-jitter", "--seeds", "1",
            "--jitters-us", "0,1", "--report-out", str(report_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "boundary-jitter fuzz" in out
        assert "verdict: OK" in out

        import json

        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True
        assert payload["base_scenarios"] == ["latency-jitter"]
        assert payload["minimized"] is None

    def test_fuzz_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["fuzz", "--scenarios", "heat-death", "--seeds", "1"])
