"""Tests for the command-line interface."""

import pytest

from repro.cli import load_topology, main


class TestLoadTopology:
    def test_rocketfuel_names(self):
        assert load_topology("ebone", 0, 0).node_count() == 25

    def test_synthetic_generators(self):
        assert load_topology("waxman", 20, 1).node_count() == 20
        assert load_topology("ba", 20, 1).node_count() == 20

    def test_unknown_rejected(self):
        with pytest.raises(SystemExit):
            load_topology("arpanet", 10, 0)


class TestCommands:
    def test_production_vanilla(self, capsys):
        rc = main([
            "production", "--topology", "waxman", "--size", "10",
            "--events", "2", "--mode", "vanilla", "--seed", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "production run (vanilla)" in out
        assert "mean convergence" in out

    def test_production_defined_writes_recording(self, tmp_path, capsys):
        path = str(tmp_path / "run.recording.json")
        rc = main([
            "production", "--topology", "waxman", "--size", "10",
            "--events", "2", "--mode", "defined", "--seed", "1",
            "--recording-out", path,
        ])
        assert rc == 0
        assert "recording written" in capsys.readouterr().out

        rc = main([
            "replay", "--topology", "waxman", "--size", "10",
            "--recording", path,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lockstep replay" in out

    def test_recording_out_requires_defined(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "production", "--topology", "waxman", "--size", "10",
                "--events", "2", "--mode", "vanilla",
                "--recording-out", str(tmp_path / "x.json"),
            ])

    def test_casestudy_bgp(self, capsys):
        rc = main(["casestudy", "bgp"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "XORP" in out and "best path" in out

    def test_sweep_list(self, capsys):
        rc = main(["sweep", "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "flap-storm" in out and "xorp-bgp-med" in out

    def test_sweep_small_grid(self, capsys):
        rc = main([
            "sweep", "--scenarios", "xorp-bgp-med,latency-jitter",
            "--seeds", "1,2", "--workers", "1", "--verbose",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out
        assert "theorem1" in out

    def test_scale_sweep_still_works(self, capsys):
        rc = main(["scale", "--sizes", "12", "--events", "2"])
        assert rc == 0
        assert "convergence time" in capsys.readouterr().out
