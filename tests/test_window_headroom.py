"""History-window headroom: slack exhaustion must be surfaced, loudly.

The DEFINED-RB shim guarantees ordering only within its sliding history
window (:meth:`DefinedShim.window_us`).  An arrival that sorts below an
already-pruned entry is delivered unordered and counted in
``late_deliveries`` -- previously *silently*.  These tests pin the new
behavior: every such delivery emits a structured
:class:`HistoryWindowWarning` naming the node and a lower bound on the
slack deficit, while correctly-sized windows stay warning-free.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.history import DeliveredHistory, HistoryEntry
from repro.core.ordering import OptimizedOrdering
from repro.core.shim import HistoryWindowWarning
from repro.harness import run_production
from repro.sweep import get_scenario


def _run(name: str, window_us, jitter_us, seed=1):
    scenario = get_scenario(name)
    graph = scenario.topology(seed)
    schedule = scenario.schedule(graph, seed)
    return run_production(
        graph, schedule, mode="defined", seed=seed, jitter_us=jitter_us,
        measure_convergence=False, settle_us=scenario.settle_us,
        tail_us=scenario.tail_us, window_us=window_us,
    )


class TestSlackExhaustionWarns:
    def test_undersized_window_emits_structured_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = _run("latency-jitter", window_us=100_000, jitter_us=300_000)
        assert result.late_deliveries > 0
        emitted = [
            w.message for w in caught
            if issubclass(w.category, HistoryWindowWarning)
        ]
        # warnings fire on the first late delivery per node and on each
        # deficit escalation -- bounded, never O(late_deliveries) spam
        assert emitted
        assert len(emitted) <= result.late_deliveries
        per_node_deficits: dict = {}
        for w in emitted:
            if w.deficit_us is not None:
                prior = per_node_deficits.get(w.node_id, -1)
                assert w.deficit_us > prior, "warnings must escalate"
                per_node_deficits[w.node_id] = w.deficit_us
        first = emitted[0]
        assert first.node_id in {"a", "b", "c", "d"}
        assert first.window_us == 100_000
        assert first.deficit_us is not None and first.deficit_us > 0
        assert "short by >=" in str(first)
        assert "raise window_us" in str(first)

    def test_pytest_warns_idiom_works(self):
        with pytest.warns(HistoryWindowWarning, match="window exhausted"):
            _run("latency-jitter", window_us=50_000, jitter_us=400_000)

    def test_default_window_holds_on_diamond_jitter_envelope(self):
        """The ROADMAP's measured envelope: up to 5ms of delivery jitter
        the default window keeps every arrival ordered -- no late
        deliveries, no warnings."""
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = _run("latency-jitter", window_us=None, jitter_us=5_000)
        assert result.late_deliveries == 0
        assert not [
            w for w in caught if issubclass(w.category, HistoryWindowWarning)
        ]


class TestPrunedBoundaryTracking:
    def test_history_records_pruned_delivery_time(self):
        ordering = OptimizedOrdering()
        history = DeliveredHistory()
        assert history.last_pruned_at_us is None
        for group, at_us in ((1, 100), (2, 200), (3, 300)):
            entry = HistoryEntry(
                kind="ext",
                key=ordering.external_key(group, "n0", group),
                group=group,
            )
            entry.delivered_at_us = at_us
            history.append(entry)
        assert history.prune_before_time(250) == 2
        assert history.last_pruned_at_us == 200
        assert history.last_pruned_key is not None
