"""History-window headroom: slack exhaustion must be surfaced, loudly.

The DEFINED-RB shim guarantees ordering only within its sliding history
window (:meth:`DefinedShim.window_us`).  An arrival that sorts below an
already-pruned entry is delivered unordered and counted in
``late_deliveries`` -- previously *silently*.  These tests pin the new
behavior: every such delivery emits a structured
:class:`HistoryWindowWarning` naming the node and a lower bound on the
slack deficit, while correctly-sized windows stay warning-free.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.history import DeliveredHistory, HistoryEntry
from repro.core.ordering import OptimizedOrdering
from repro.core.shim import HistoryWindowWarning
from repro.harness import run_production
from repro.sweep import get_scenario


def _run(name: str, window_us, jitter_us, seed=1):
    scenario = get_scenario(name)
    graph = scenario.topology(seed)
    schedule = scenario.schedule(graph, seed)
    return run_production(
        graph, schedule, mode="defined", seed=seed, jitter_us=jitter_us,
        measure_convergence=False, settle_us=scenario.settle_us,
        tail_us=scenario.tail_us, window_us=window_us,
    )


class TestSlackExhaustionWarns:
    def test_undersized_window_emits_structured_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = _run("latency-jitter", window_us=100_000, jitter_us=300_000)
        assert result.late_deliveries > 0
        emitted = [
            w.message for w in caught
            if issubclass(w.category, HistoryWindowWarning)
        ]
        # warnings fire on the first late delivery per node and on each
        # deficit escalation -- bounded, never O(late_deliveries) spam
        assert emitted
        assert len(emitted) <= result.late_deliveries
        per_node_deficits: dict = {}
        for w in emitted:
            if w.deficit_us is not None:
                prior = per_node_deficits.get(w.node_id, -1)
                assert w.deficit_us > prior, "warnings must escalate"
                per_node_deficits[w.node_id] = w.deficit_us
        first = emitted[0]
        assert first.node_id in {"a", "b", "c", "d"}
        assert first.window_us == 100_000
        assert first.deficit_us is not None and first.deficit_us > 0
        assert "short by >=" in str(first)
        assert "raise window_us" in str(first)

    def test_pytest_warns_idiom_works(self):
        with pytest.warns(HistoryWindowWarning, match="window exhausted"):
            _run("latency-jitter", window_us=50_000, jitter_us=400_000)

    def test_default_window_holds_on_diamond_jitter_envelope(self):
        """The ROADMAP's measured envelope: up to 5ms of delivery jitter
        the default window keeps every arrival ordered -- no late
        deliveries, no warnings."""
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = _run("latency-jitter", window_us=None, jitter_us=5_000)
        assert result.late_deliveries == 0
        assert not [
            w for w in caught if issubclass(w.category, HistoryWindowWarning)
        ]


class TestWarningThrottling:
    """The warning contract, pinned: one warning on the first late
    delivery, one more per deficit *escalation*, never one per event --
    while the structured stats record every single deficit."""

    def _shim(self):
        """A started two-node DEFINED net (no daemon); node a's shim."""
        from repro.core.shim import DefinedShim
        from repro.simnet.network import build_network

        net = build_network([("a", "b", 2_000)], seed=0, jitter_us=0)
        net.attach(lambda node: DefinedShim(node))
        net.start()
        return net.nodes["a"].stack

    def _late_entry(self, shim, seq):
        from repro.core.history import HistoryEntry
        from repro.simnet.events import ExternalEvent

        return HistoryEntry(
            kind="ext",
            key=shim.ordering.external_key(0, "a", seq),
            event=ExternalEvent(time_us=0, kind="link_down", target=("a", "b")),
            group=0,
            seq=seq,
        )

    def _arm_pruned_window(self, shim, pruned_at_us):
        """Make every group-0 arrival sort below the pruned boundary."""
        shim.history.last_pruned_key = shim.ordering.external_key(5, "a", 999)
        shim.history.last_pruned_at_us = pruned_at_us

    def test_repeated_same_deficit_warns_once(self):
        shim = self._shim()
        self._arm_pruned_window(shim, pruned_at_us=0)
        # sim.now stays put between admissions: identical deficits
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for seq in range(5):
                shim._admit(self._late_entry(shim, seq))
        emitted = [
            w.message for w in caught
            if issubclass(w.category, HistoryWindowWarning)
        ]
        assert shim.late_deliveries == 5
        assert len(emitted) == 1
        assert emitted[0].late_count == 1
        # ...but the distribution recorded all five
        assert shim.headroom_stats().late_count == 5

    def test_only_escalating_deficits_rewarn(self):
        shim = self._shim()
        sim = shim.sim
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            # deficit D1, repeated (one warning)
            self._arm_pruned_window(shim, pruned_at_us=0)
            shim._admit(self._late_entry(shim, 0))
            shim._admit(self._late_entry(shim, 1))
            # deficit shrinks (pruned boundary is *younger*): no re-warn
            self._arm_pruned_window(shim, pruned_at_us=sim.now)
            sim.run(until_us=sim.now + 10_000)
            shim._admit(self._late_entry(shim, 2))
            # deficit escalates past D1: exactly one more warning
            self._arm_pruned_window(shim, pruned_at_us=0)
            sim.run(until_us=sim.now + shim.window_us() + 1_000_000)
            shim._admit(self._late_entry(shim, 3))
        emitted = [
            w.message for w in caught
            if issubclass(w.category, HistoryWindowWarning)
        ]
        assert [w.late_count for w in emitted] == [1, 4]
        assert emitted[1].deficit_us > emitted[0].deficit_us

    def test_structured_stats_agree_with_warned_lower_bounds(self):
        """End to end on a real undersized run: the warned deficits must
        be a subset of the recorded distribution, the largest warned
        deficit must equal the recorded max, and the warned late counts
        must stay within the recorded total."""
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = _run("latency-jitter", window_us=100_000, jitter_us=300_000)
        emitted = [
            w.message for w in caught
            if issubclass(w.category, HistoryWindowWarning)
        ]
        assert emitted and result.headroom is not None
        stats = result.headroom
        assert stats.window_us == 100_000
        assert stats.late_count == result.late_deliveries > 0
        warned_deficits = [
            w.deficit_us for w in emitted if w.deficit_us is not None
        ]
        # warnings only fire on escalation, so the largest warned deficit
        # IS the distribution's max...
        assert max(warned_deficits) == stats.max_deficit_us
        # ...every warned bound sits inside the distribution's range...
        assert all(0 <= d <= stats.max_deficit_us for d in warned_deficits)
        # ...and far fewer warnings fired than deficits were recorded
        assert len(emitted) <= stats.late_count
        assert stats.p50_deficit_us <= stats.p90_deficit_us
        assert stats.p90_deficit_us <= stats.p99_deficit_us <= stats.max_deficit_us


class TestPrunedBoundaryTracking:
    def test_history_records_pruned_delivery_time(self):
        ordering = OptimizedOrdering()
        history = DeliveredHistory()
        assert history.last_pruned_at_us is None
        for group, at_us in ((1, 100), (2, 200), (3, 300)):
            entry = HistoryEntry(
                kind="ext",
                key=ordering.external_key(group, "n0", group),
                group=group,
            )
            entry.delivered_at_us = at_us
            history.append(entry)
        assert history.prune_before_time(250) == 2
        assert history.last_pruned_at_us == 200
        assert history.last_pruned_key is not None
